# Convenience targets; everything assumes the in-tree layout (src/ on path).

PY ?= python
export PYTHONPATH := src

.PHONY: test bench-gateway bench-all

test:
	$(PY) -m pytest -x -q

# Reproduce the Fig 11-shaped throughput-vs-replicas curve on the real
# gateway; writes benchmarks/results/gateway_scaling.txt.
bench-gateway:
	cd benchmarks && PYTHONPATH=../src $(PY) -m pytest bench_gateway_scaling.py -x -q -p no:cacheprovider

bench-all:
	cd benchmarks && PYTHONPATH=../src $(PY) -m pytest . -x -q -p no:cacheprovider
