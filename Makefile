# Convenience targets; everything assumes the in-tree layout (src/ on path).

PY ?= python
export PYTHONPATH := src

.PHONY: test test-fast soak chaos trace-demo bench-engine bench-procpool bench-gateway bench-slo bench-cost bench-cache bench-all

test:
	$(PY) -m pytest -x -q

# Everything except the slow soak/training integration tests — the fast CI
# job; `make soak` + `make chaos` cover the rest.
test-fast:
	$(PY) -m pytest -x -q -m "not slow"

# Sustained concurrent load against a proc-pool fleet: 8 clients x 200
# mixed-model requests over TCP, payload-checked responses, weight-digest
# and parent-RSS invariants (tests/test_soak.py).
soak:
	$(PY) -m pytest tests/test_soak.py -x -q -m slow

# Determinism gate: run the chaos suite twice with the same fault-plan seed,
# dumping every scenario's invariant report, then require the two report
# sets to be byte-identical.  CHAOS_SEED=n replays a specific schedule.
CHAOS_SEED ?= 0
chaos:
	rm -rf benchmarks/results/chaos/run1 benchmarks/results/chaos/run2
	CHAOS_SEED=$(CHAOS_SEED) CHAOS_REPORT_DIR=benchmarks/results/chaos/run1 \
		$(PY) -m pytest tests/test_chaos.py -x -q
	CHAOS_SEED=$(CHAOS_SEED) CHAOS_REPORT_DIR=benchmarks/results/chaos/run2 \
		$(PY) -m pytest tests/test_chaos.py -x -q
	diff -r benchmarks/results/chaos/run1 benchmarks/results/chaos/run2
	@echo "chaos determinism gate: reports identical across runs"

# Trace one batch of requests through gateway + fleet with per-layer
# profiling on; writes a Chrome trace (chrome://tracing / Perfetto) and the
# Prometheus-style metrics exposition into benchmarks/results/, and fails
# if span coverage or the exposition format regresses.
trace-demo:
	$(PY) -m repro.cli trace --backends 2 --batch 8 --requests 6 \
		--out benchmarks/results/trace_demo.json \
		--metrics-out benchmarks/results/trace_demo_metrics.prom --check

# Planned-vs-legacy execution sweep (batch size x path) into
# benchmarks/results/BENCH_engine.json, with the engine gates on: the
# planned path must be allocation-free in steady state (tracemalloc) and
# not slower than legacy at batch 1.
bench-engine:
	$(PY) benchmarks/bench_engine.py --check

# Proc-pool vs threaded serving throughput under concurrent load, into
# benchmarks/results/BENCH_procpool.json.  The 2x speedup gate enforces
# only on >= 4-core hosts; smaller hosts record honest numbers with
# gate_enforced=false.
bench-procpool:
	$(PY) benchmarks/bench_procpool.py --check

# Open-loop SLO sweep (fixed vs adaptive vs adaptive+shedding) through the
# gateway, into benchmarks/results/BENCH_slo.json.  The gate — adaptive
# must beat fixed attainment at >= 1 saturated load point, with every
# rejection typed — enforces only on >= 4-core hosts.
bench-slo:
	$(PY) benchmarks/bench_slo.py --check

# Per-request cost-attribution sweep (model x batch x execution mode) into
# benchmarks/results/BENCH_cost.json.  The gate requires stage shares
# (including the honest residual) to sum to 100% in every configuration,
# attribution coverage >= 95% (residual <= 5%), the metrics exposition to
# survive a render -> parse round trip, and at least one tail exemplar to
# resolve back to a full cost ledger.
bench-cost:
	$(PY) benchmarks/bench_cost_breakdown.py --check

# Cross-layer cache sweep (dup_frac x cache size) into
# benchmarks/results/BENCH_cache.json.  The gate requires every cached
# answer byte-identical to the cache-off baseline, exact hits at full
# budget, and a >= 2x hit-path speedup at dup_frac=0.5 (enforced only on
# >= 4-core hosts; recorded honestly either way).
bench-cache:
	$(PY) benchmarks/bench_cache.py --check

# Reproduce the Fig 11-shaped throughput-vs-replicas curve on the real
# gateway; writes benchmarks/results/gateway_scaling.txt.
bench-gateway:
	cd benchmarks && PYTHONPATH=../src $(PY) -m pytest bench_gateway_scaling.py -x -q -p no:cacheprovider

bench-all:
	cd benchmarks && PYTHONPATH=../src $(PY) -m pytest . -x -q -p no:cacheprovider
