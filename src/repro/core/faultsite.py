"""The fault-injection seam for :mod:`repro.faults`.

Production code never imports the chaos machinery; instead, the handful of
places where the serving stack touches the outside world (protocol
send/recv, connection accept, pool checkout, batch execution, health
probes) consult :data:`active` — a module global that is ``None`` unless a
:class:`repro.faults.FaultPlan` has been armed.  The per-call cost when
nothing is armed is a single attribute load and ``is not None`` test, so
the hooks are safe to leave in hot paths (``make bench-gateway`` measures
the same throughput with and without this module present).

This module is a dependency-free leaf so every layer (core, gateway,
faults) can import it without cycles.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["InjectedFault", "active", "install", "uninstall"]


class InjectedFault(ConnectionError):
    """A deliberately injected transport-level failure.

    Subclasses :class:`ConnectionError` so every existing handler that
    survives a real peer reset (client roundtrips, server connection loops,
    gateway retries) treats an injected fault exactly like the genuine
    article — the point of the exercise.
    """


#: The armed :class:`repro.faults.FaultInjector`, or ``None`` (production).
active = None  # type: Optional[object]


def install(injector) -> None:
    """Arm ``injector`` process-wide; refuses to stack plans."""
    global active
    if active is not None:
        raise RuntimeError("a fault plan is already armed; disarm it first")
    active = injector


def uninstall() -> None:
    """Disarm whatever is installed (idempotent)."""
    global active
    active = None
