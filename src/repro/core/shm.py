"""Shared-memory weight segments for multi-process serving.

Paper §3.1: DjiNN loads each model **once** and gives all workers
*read-only* access.  With thread workers that falls out of the address
space; with process workers (:mod:`repro.core.procpool`) it has to be
engineered: the parent packs every weight blob of a model into one
``multiprocessing.shared_memory`` segment, and each worker maps the
segment and rebinds a shape-only net's blobs to ``writeable=False``
ndarray views over it.  Physical pages are shared by the kernel, so N
workers cost one copy of the weights regardless of N.

The manifest entry for a model is plain JSON-able data::

    {"app": "imc", "segment": "psm_...", "kind": "net" | "graph",
     "spec": <NetSpec/GraphSpec dict>, "bytes": <segment payload size>,
     "blobs": [{"name", "shape", "offset", "nbytes"}, ...]}

Lifecycle rules (exercised by ``tests/test_procpool.py``):

* the *creator* unlinks a segment exactly once (``FileNotFoundError`` on
  a second unlink is swallowed, so teardown is idempotent);
* *attachers* only ever close — and a close after the buffer has been
  exported into live ndarrays would raise ``BufferError``, so close is
  best-effort and the name is always removed from the resource tracker
  (Python 3.11 re-registers attached segments, which would otherwise
  unlink them when the first worker exits).
"""

from __future__ import annotations

import hashlib
import threading
from multiprocessing import shared_memory
from typing import Any, Dict, List, Tuple

import numpy as np

__all__ = [
    "align64",
    "attach_segment",
    "close_segment",
    "unlink_segment",
    "export_net",
    "attach_net",
    "net_blobs",
    "weight_digest",
]

ALIGN = 64  # cache-line alignment for every blob start


def align64(n: int) -> int:
    return (int(n) + ALIGN - 1) & ~(ALIGN - 1)


_attach_lock = threading.Lock()


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment by name without taking ownership.

    On 3.11 ``SharedMemory(name=...)`` registers the segment with the
    resource tracker even when merely attaching — and under fork the
    tracker *process* is shared with the parent, so the attacher's
    registration (or a later unregister) would fight the creator's and
    either unlink memory the parent still owns or corrupt the tracker's
    cache.  Ownership here is explicit — only the creator unlinks — so
    registration is suppressed for the duration of the attach
    (``track=False`` avant la lettre; 3.13 grew the real flag).
    """
    from multiprocessing import resource_tracker

    with _attach_lock:
        original = resource_tracker.register

        def _register(rname, rtype):
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = _register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def close_segment(shm: shared_memory.SharedMemory) -> None:
    """Best-effort close: tolerates live exported views and double-close."""
    try:
        shm.close()
    except BufferError:
        # ndarray views over shm.buf are still alive; the mapping dies
        # with them (or with the process) — unlink does not need it gone.
        pass


def unlink_segment(shm: shared_memory.SharedMemory) -> None:
    """Unlink exactly once; a second call (or a race) is a no-op."""
    close_segment(shm)
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def net_blobs(net) -> List:
    """Weight blobs of a Net/GraphNet in deterministic layer order."""
    return [blob for layer in net.layers for blob in layer.params]


def export_net(app: str, net) -> Tuple[shared_memory.SharedMemory, Dict[str, Any]]:
    """Pack ``net``'s weights into a fresh segment; rebind blobs to it.

    After this returns the parent itself reads weights from the shm
    views (read-only), so the original heap copies are garbage and every
    process — parent included — maps each model exactly once.
    """
    if not net.materialized:
        raise ValueError(f"model {app!r}: cannot export an unmaterialized net")
    blobs = net_blobs(net)
    entries: List[Dict[str, Any]] = []
    total = 0
    for blob in blobs:
        data = np.asarray(blob.require_data(), dtype=np.float32)
        entries.append({
            "name": blob.name,
            "shape": list(data.shape),
            "offset": total,
            "nbytes": int(data.nbytes),
        })
        total += align64(data.nbytes)
    shm = shared_memory.SharedMemory(create=True, size=max(total, ALIGN))
    for blob, entry in zip(blobs, entries):
        view = np.ndarray(tuple(entry["shape"]), dtype=np.float32,
                          buffer=shm.buf, offset=entry["offset"])
        view[...] = np.asarray(blob.require_data(), dtype=np.float32)
        view.flags.writeable = False
        blob.data = view
    kind = "graph" if hasattr(net, "_specs") else "net"
    manifest_entry = {
        "app": app,
        "segment": shm.name,
        "kind": kind,
        "spec": net.spec.to_dict(),
        "bytes": total,
        "blobs": entries,
    }
    return shm, manifest_entry


def attach_net(entry: Dict[str, Any]):
    """Rebuild a net from a manifest entry with shm-backed weights.

    Returns ``(net, shm)``; the net's blobs are ``writeable=False`` views
    over the segment (a worker that tries to write a weight gets
    ``ValueError`` from numpy) and ``grad`` is dropped — serving processes
    never train.
    """
    if entry["kind"] == "graph":
        from ..nn.graph import GraphNet, GraphSpec

        net = GraphNet(GraphSpec.from_dict(entry["spec"]))
    else:
        from ..nn.netspec import NetSpec
        from ..nn.network import Net

        net = Net(NetSpec.from_dict(entry["spec"]))
    blobs = net_blobs(net)
    if len(blobs) != len(entry["blobs"]):
        raise ValueError(
            f"model {entry['app']!r}: manifest has {len(entry['blobs'])} blobs, "
            f"rebuilt net has {len(blobs)}")
    shm = attach_segment(entry["segment"])
    for blob, meta in zip(blobs, entry["blobs"]):
        if blob.name != meta["name"] or tuple(blob.shape) != tuple(meta["shape"]):
            raise ValueError(
                f"model {entry['app']!r}: blob mismatch — expected "
                f"{meta['name']}{tuple(meta['shape'])}, rebuilt "
                f"{blob.name}{tuple(blob.shape)}")
        view = np.ndarray(tuple(meta["shape"]), dtype=np.float32,
                          buffer=shm.buf, offset=meta["offset"])
        view.flags.writeable = False
        blob.data = view
        blob.grad = None
    net._materialized = True  # noqa: SLF001 — weights are bound, just not via materialize()
    return net, shm


def weight_digest(net) -> str:
    """SHA-256 over all weight bytes in layer order (soak-test invariant)."""
    digest = hashlib.sha256()
    for blob in net_blobs(net):
        digest.update(np.ascontiguousarray(blob.require_data()).tobytes())
    return digest.hexdigest()
