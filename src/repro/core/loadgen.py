"""Load generation against a live DjiNN service.

The paper stress-tests DjiNN with closed-loop client fleets; this module is
that harness for the Python service: N threads, each with its own
connection, issuing requests back-to-back (optionally with think time), and
a latency/throughput summary at the end.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from .client import DjinnClient

__all__ = ["LoadResult", "run_closed_loop_load"]


@dataclass(frozen=True)
class LoadResult:
    """Aggregate outcome of one load-generation run."""

    clients: int
    requests: int
    duration_s: float
    qps: float
    inputs_per_s: float
    mean_latency_s: float
    p99_latency_s: float
    errors: int


def run_closed_loop_load(
    host: str,
    port: int,
    model: str,
    make_input: Callable[[int], np.ndarray],
    clients: int = 4,
    requests_per_client: int = 50,
    think_time_s: float = 0.0,
) -> LoadResult:
    """Drive a live service closed-loop and summarize what it did.

    ``make_input(i)`` builds the i-th request's input batch; each client
    thread owns one TCP connection, as the paper's load generators did.
    """
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be positive")
    latencies: List[List[float]] = [[] for _ in range(clients)]
    inputs_sent = [0] * clients
    errors = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def worker(cid: int) -> None:
        with DjinnClient(host, port) as client:
            barrier.wait()  # start all clients together
            for i in range(requests_per_client):
                batch = make_input(cid * requests_per_client + i)
                start = time.monotonic()
                try:
                    client.infer(model, batch)
                except Exception:
                    errors[cid] += 1
                    continue
                latencies[cid].append(time.monotonic() - start)
                inputs_sent[cid] += len(batch)
                if think_time_s:
                    time.sleep(think_time_s)

    threads = [threading.Thread(target=worker, args=(c,), daemon=True)
               for c in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.monotonic()
    for t in threads:
        t.join()
    duration = time.monotonic() - start

    flat = np.asarray([lat for per in latencies for lat in per])
    total = int(flat.size)
    return LoadResult(
        clients=clients,
        requests=total,
        duration_s=duration,
        qps=total / duration if duration > 0 else 0.0,
        inputs_per_s=sum(inputs_sent) / duration if duration > 0 else 0.0,
        mean_latency_s=float(flat.mean()) if total else 0.0,
        p99_latency_s=float(np.percentile(flat, 99)) if total else 0.0,
        errors=sum(errors),
    )
