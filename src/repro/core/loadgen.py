"""Load generation against a live DjiNN service.

The paper stress-tests DjiNN with closed-loop client fleets; this module is
that harness for the Python service: N threads, each with its own
connection, issuing requests back-to-back (optionally with think time), and
a latency/throughput summary at the end.

Closed-loop generators self-throttle: when the service slows down, the
generator slows down with it, so overload never shows up in the numbers.
:func:`run_open_loop_load` fixes that for SLO measurement — arrivals follow
a seeded Poisson process at a configured offered rate, each request belongs
to a :class:`RequestClass` (deadline/priority/tenant stamped on the wire),
and latency is measured from the request's *scheduled arrival time*, so
queueing anywhere (including inside the generator when it falls behind)
counts against the service rather than silently vanishing.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from .client import DjinnClient, DjinnDeadlineError, DjinnOverloadedError
from .duplication import jitter_duplicate, plan_duplicates

__all__ = [
    "LoadResult",
    "RequestClass",
    "ClassResult",
    "OpenLoopResult",
    "run_closed_loop_load",
    "run_open_loop_load",
]


@dataclass(frozen=True)
class LoadResult:
    """Aggregate outcome of one load-generation run."""

    clients: int
    requests: int
    duration_s: float
    qps: float
    inputs_per_s: float
    mean_latency_s: float
    p99_latency_s: float
    errors: int


def run_closed_loop_load(
    host: str,
    port: int,
    model: str,
    make_input: Callable[[int], np.ndarray],
    clients: int = 4,
    requests_per_client: int = 50,
    think_time_s: float = 0.0,
) -> LoadResult:
    """Drive a live service closed-loop and summarize what it did.

    ``make_input(i)`` builds the i-th request's input batch; each client
    thread owns one TCP connection, as the paper's load generators did.
    """
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be positive")
    latencies: List[List[float]] = [[] for _ in range(clients)]
    inputs_sent = [0] * clients
    errors = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def worker(cid: int) -> None:
        with DjinnClient(host, port) as client:
            barrier.wait()  # start all clients together
            for i in range(requests_per_client):
                batch = make_input(cid * requests_per_client + i)
                start = time.monotonic()
                try:
                    client.infer(model, batch)
                except Exception:
                    errors[cid] += 1
                    continue
                latencies[cid].append(time.monotonic() - start)
                inputs_sent[cid] += len(batch)
                if think_time_s:
                    time.sleep(think_time_s)

    threads = [threading.Thread(target=worker, args=(c,), daemon=True)
               for c in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.monotonic()
    for t in threads:
        t.join()
    duration = time.monotonic() - start

    flat = np.asarray([lat for per in latencies for lat in per])
    total = int(flat.size)
    return LoadResult(
        clients=clients,
        requests=total,
        duration_s=duration,
        qps=total / duration if duration > 0 else 0.0,
        inputs_per_s=sum(inputs_sent) / duration if duration > 0 else 0.0,
        mean_latency_s=float(flat.mean()) if total else 0.0,
        p99_latency_s=float(np.percentile(flat, 99)) if total else 0.0,
        errors=sum(errors),
    )


# --------------------------------------------------------------- open loop
@dataclass(frozen=True)
class RequestClass:
    """One traffic class in an open-loop run.

    ``weight`` sets the class's share of arrivals; ``deadline_ms`` /
    ``priority`` / ``tenant`` are stamped on every request of the class
    (protocol v3).  A class with no deadline is SLO-attained whenever it
    completes.
    """

    name: str = "default"
    weight: float = 1.0
    deadline_ms: float = 0.0
    priority: int = 0
    tenant: str = ""

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"class weight must be > 0, got {self.weight}")
        if self.deadline_ms < 0:
            raise ValueError(
                f"deadline_ms must be >= 0, got {self.deadline_ms}")


@dataclass(frozen=True)
class ClassResult:
    """Per-class outcome of an open-loop run."""

    issued: int
    completed: int
    shed: int      # typed OVERLOADED rejections (admission/backpressure)
    expired: int   # typed DEADLINE_EXCEEDED rejections
    errors: int    # everything else (transport, service errors)
    attained: int  # completed within the class deadline
    mean_latency_s: float
    p95_latency_s: float
    p99_latency_s: float

    @property
    def attainment(self) -> float:
        """Fraction of issued requests that met the SLO."""
        return self.attained / self.issued if self.issued else 0.0


@dataclass(frozen=True)
class OpenLoopResult:
    """Aggregate outcome of one open-loop run (plus per-class breakdown)."""

    offered_qps: float
    duration_s: float
    issued: int
    completed: int
    shed: int
    expired: int
    errors: int
    attained: int
    mean_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    schedule_lag_p99_s: float
    per_class: Dict[str, ClassResult]

    @property
    def attainment(self) -> float:
        return self.attained / self.issued if self.issued else 0.0


def run_open_loop_load(
    host: str,
    port: int,
    model: str,
    make_input: Callable[[int], np.ndarray],
    qps: float,
    requests: int = 200,
    classes: Sequence[RequestClass] = (RequestClass(),),
    connections: int = 16,
    seed: int = 0,
    timeout_s: float = 30.0,
    dup_frac: float = 0.0,
    dup_jitter: float = 0.01,
) -> OpenLoopResult:
    """Drive a live service open-loop at a fixed offered rate.

    Arrivals are a Poisson process at ``qps`` (seeded, so a given
    ``(seed, requests, classes)`` always offers the same trace), each
    assigned a class by weight.  ``connections`` worker threads fire
    requests at their scheduled instants; when every connection is busy the
    next arrival waits its turn, but its latency clock keeps running — the
    scheduled arrival time is the measurement origin, so generator lag
    (``schedule_lag_p99_s``) and service queueing are both charged to the
    request, the way a real user would experience them.

    ``dup_frac`` makes that fraction of arrivals near-duplicates of
    earlier requests in the trace (seeded: request *i* reuses request
    *j*'s input plus ``dup_jitter``-scaled noise) — the repeated-query
    shape of production traffic, which caches and batch coalescing see
    very differently from fresh i.i.d. inputs.
    """
    if qps <= 0:
        raise ValueError(f"qps must be > 0, got {qps}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    if not 0.0 <= dup_frac <= 1.0:
        raise ValueError(f"dup_frac must be in [0, 1], got {dup_frac}")
    classes = tuple(classes)
    if not classes:
        raise ValueError("need at least one RequestClass")
    names = [cls.name for cls in classes]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate class names: {names}")

    rng = random.Random(seed)
    weights = [cls.weight for cls in classes]
    at = 0.0
    schedule: List[Tuple[float, int, RequestClass]] = []
    for i in range(requests):
        at += rng.expovariate(qps)
        schedule.append((at, i, rng.choices(classes, weights=weights)[0]))

    # duplicate plan, fixed up front so it is deterministic per seed and
    # needs no shared state between worker threads: request i that lands
    # in the plan replays request dup_of[i]'s input with seeded jitter
    dup_of = plan_duplicates(requests, dup_frac, seed)

    def input_for(i: int) -> np.ndarray:
        src = dup_of.get(i)
        if src is None:
            return make_input(i)
        return jitter_duplicate(make_input(src), i, seed, dup_jitter)

    lock = threading.Lock()
    cursor = [0]
    base = [0.0]
    lags: List[float] = []
    # per-class tallies: [issued, completed, shed, expired, errors, attained]
    tallies = {cls.name: [0, 0, 0, 0, 0, 0] for cls in classes}
    latencies: Dict[str, List[float]] = {cls.name: [] for cls in classes}
    barrier = threading.Barrier(connections + 1)

    def worker() -> None:
        with DjinnClient(host, port, timeout_s=timeout_s) as client:
            barrier.wait()
            while True:
                with lock:
                    idx = cursor[0]
                    if idx >= len(schedule):
                        return
                    cursor[0] += 1
                arrival, i, cls = schedule[idx]
                target = base[0] + arrival
                delay = target - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                lag = max(0.0, time.monotonic() - target)
                batch = input_for(i)
                tally = tallies[cls.name]
                try:
                    client.infer(model, batch,
                                 deadline_ms=cls.deadline_ms,
                                 priority=cls.priority, tenant=cls.tenant)
                except DjinnDeadlineError:
                    with lock:
                        tally[0] += 1
                        tally[3] += 1
                        lags.append(lag)
                    continue
                except DjinnOverloadedError:
                    with lock:
                        tally[0] += 1
                        tally[2] += 1
                        lags.append(lag)
                    continue
                except Exception:
                    with lock:
                        tally[0] += 1
                        tally[4] += 1
                        lags.append(lag)
                    continue
                latency = time.monotonic() - target
                with lock:
                    tally[0] += 1
                    tally[1] += 1
                    if not cls.deadline_ms or latency <= cls.deadline_ms / 1e3:
                        tally[5] += 1
                    latencies[cls.name].append(latency)
                    lags.append(lag)

    threads = [threading.Thread(target=worker, daemon=True,
                                name=f"openloop-{n}")
               for n in range(connections)]
    for t in threads:
        t.start()
    base[0] = time.monotonic()
    barrier.wait()
    for t in threads:
        t.join()
    duration = time.monotonic() - base[0]

    def summarize(name: str) -> ClassResult:
        issued, completed, shed, expired, errors, attained = tallies[name]
        lat = np.asarray(latencies[name])
        return ClassResult(
            issued=issued, completed=completed, shed=shed, expired=expired,
            errors=errors, attained=attained,
            mean_latency_s=float(lat.mean()) if lat.size else 0.0,
            p95_latency_s=float(np.percentile(lat, 95)) if lat.size else 0.0,
            p99_latency_s=float(np.percentile(lat, 99)) if lat.size else 0.0,
        )

    per_class = {cls.name: summarize(cls.name) for cls in classes}
    all_lat = np.asarray([v for per in latencies.values() for v in per])
    lag_arr = np.asarray(lags)
    return OpenLoopResult(
        offered_qps=qps,
        duration_s=duration,
        issued=sum(t[0] for t in tallies.values()),
        completed=sum(t[1] for t in tallies.values()),
        shed=sum(t[2] for t in tallies.values()),
        expired=sum(t[3] for t in tallies.values()),
        errors=sum(t[4] for t in tallies.values()),
        attained=sum(t[5] for t in tallies.values()),
        mean_latency_s=float(all_lat.mean()) if all_lat.size else 0.0,
        p95_latency_s=float(np.percentile(all_lat, 95)) if all_lat.size else 0.0,
        p99_latency_s=float(np.percentile(all_lat, 99)) if all_lat.size else 0.0,
        schedule_lag_p99_s=(float(np.percentile(lag_arr, 99))
                            if lag_arr.size else 0.0),
        per_class=per_class,
    )
