"""Process-based worker pool over shared-memory weights and slots.

Paper §3: the DjiNN server scales one model across many GPU SMs from a
single resident copy of the weights.  The CPU analogue is processes, not
threads — python layer glue serializes on the GIL, so a threaded replica
cannot use more than ~1 core outside BLAS.  :class:`ProcPoolExecutor`
gives one replica true core-level parallelism while keeping the paper's
"load once, share read-only" memory story:

* the parent exports every registry model into
  ``multiprocessing.shared_memory`` via :meth:`ModelRegistry.export_shm`
  and forks N workers; each worker attaches the manifest and binds
  ``writeable=False`` ndarray views — one physical copy of the weights
  per host, enforced by the MMU (a worker writing a weight gets
  ``ValueError`` from numpy before it could get anywhere near a page
  fault);
* requests travel through a shm **slot ring**: the parent copies payloads
  straight into a slot's input region, the worker runs an arena-backed
  :class:`~repro.nn.engine.ExecutionPlan` forward with
  :meth:`~repro.nn.engine.ExecutionPlan.run_into` targeting the slot's
  output region, and the parent hands the response out as a read-only
  view (:class:`PoolLease`) — no pickling, no sockets, no output copy in
  the parent;
* each worker owns *private* arena slabs (activations are written every
  forward) but maps the shared weights — exactly the paper's split of
  mutable scratch vs. immutable model state;
* a supervisor thread reaps dead workers, requeues the slot a dead worker
  was running (so a mid-batch crash loses nothing), and respawns a
  replacement with the same worker index;
* workers publish their :class:`~repro.obs.MetricsRegistry` dumps into
  seqlock'd shm regions; :meth:`worker_metric_dumps` feeds them to the
  existing :func:`repro.obs.merge_dumps` path, so fleet metrics include
  per-process counters for free;
* the :mod:`repro.core.faultsite` seam stays live inside workers: a
  :class:`~repro.faults.FaultPlan` handed to the pool is re-armed in each
  worker with a seed derived from the worker index, and the parent-side
  ``proc.dispatch`` site can deterministically mark a slot so the worker
  executing it dies (the ``worker_kill`` chaos scenario).

Slot header layout (little-endian, 64-byte aligned regions)::

    offset 0   u64  seq        monotone per-dispatch sequence number
    offset 8   u32  state      FREE/QUEUED/RUNNING/DONE/ERROR
    offset 12  u32  model      index into the sorted model table
    offset 16  u32  rows       batch rows in this slot
    offset 20  u32  flags      bit 0: kill-on-pickup (chaos); bit 1: raw
                               payload — the input region holds raw app
                               items and the worker preprocesses in-slot
    offset 24  u32  worker     index of the worker executing, else NO_WORKER
    offset 32  u16+bytes       error message (type-tagged, ERROR state only)
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import struct
import threading
import time
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.engine import ExecutionPlan, PlanError
from ..obs.metrics import MetricsRegistry, read_dump_region, write_dump_region
from . import faultsite, shm as shmseg
from .registry import ModelRegistry

__all__ = ["ProcPoolExecutor", "ProcPoolError", "PoolLease", "parse_workers"]


class ProcPoolError(RuntimeError):
    """Pool-level failure: no slots, closed pool, or an unmapped worker error."""


# ------------------------------------------------------------ slot protocol
HEADER_BYTES = 320          #: per-slot header (struct + error message region)
_HDR_FMT = "<QIIIII"        #: seq, state, model, rows, flags, worker
_ERR_OFF = 32               #: error message: u16 length + utf-8 bytes
_ERR_CAP = HEADER_BYTES - _ERR_OFF - 2

STATE_FREE, STATE_QUEUED, STATE_RUNNING, STATE_DONE, STATE_ERROR = range(5)
FLAG_KILL = 0x1
FLAG_RAW = 0x2
NO_WORKER = 0xFFFFFFFF
KILL_EXIT_CODE = 113        #: exit status of a chaos-killed worker

#: capacity of each worker's seqlock'd metrics-dump region
METRICS_REGION_BYTES = 64 * 1024

#: multiplier separating per-worker fault seeds; large enough that derived
#: streams never collide for realistic worker counts
_WORKER_SEED_STRIDE = 0x9E37


def _pack_header(buf, base: int, seq: int, state: int, model: int,
                 rows: int, flags: int, worker: int) -> None:
    struct.pack_into(_HDR_FMT, buf, base, seq, state, model, rows, flags, worker)


def _unpack_header(buf, base: int) -> Tuple[int, int, int, int, int, int]:
    return struct.unpack_from(_HDR_FMT, buf, base)


def _write_error(buf, base: int, message: str) -> None:
    raw = message.encode("utf-8", errors="replace")[:_ERR_CAP]
    struct.pack_into("<H", buf, base + _ERR_OFF, len(raw))
    buf[base + _ERR_OFF + 2:base + _ERR_OFF + 2 + len(raw)] = raw


def _read_error(buf, base: int) -> str:
    (length,) = struct.unpack_from("<H", buf, base + _ERR_OFF)
    raw = bytes(buf[base + _ERR_OFF + 2:base + _ERR_OFF + 2 + length])
    return raw.decode("utf-8", errors="replace")


def _rebuild_error(message: str) -> Exception:
    """Map a worker-side ``Type|text`` error back onto a parent exception.

    Request-shaped failures come back as the same exception types the
    threaded executor raises (so ``DjinnServer`` turns them into ERROR
    frames), injected faults come back as :class:`InjectedFault`
    (``ConnectionError`` — the connection dies, gateways retry), and
    anything else surfaces as :class:`ProcPoolError`.
    """
    kind, _, text = message.partition("|")
    if kind == "ValueError":
        return ValueError(text)
    if kind == "KeyError":
        return KeyError(text)
    if kind == "InjectedFault":
        return faultsite.InjectedFault(text)
    return ProcPoolError(f"worker error: {message}")


def parse_workers(spec) -> int:
    """Parse a ``--workers`` value: ``None``/""/0 -> 0, ``proc:N``/``N`` -> N."""
    if spec is None:
        return 0
    if isinstance(spec, int):
        count = spec
    else:
        text = str(spec).strip()
        if not text:
            return 0
        if text.startswith("proc:"):
            text = text[len("proc:"):]
        try:
            count = int(text)
        except ValueError:
            raise ValueError(
                f"invalid workers spec {spec!r}; expected 'proc:N' or an integer"
            ) from None
    if count < 0:
        raise ValueError(f"workers must be >= 0, got {count}")
    return count


class _ModelMeta:
    __slots__ = ("name", "in_shape", "out_shape", "in_sample", "out_sample",
                 "raw_shape", "raw_sample")

    def __init__(self, name: str, in_shape, out_shape):
        self.name = name
        self.in_shape = tuple(int(d) for d in in_shape)
        self.out_shape = tuple(int(d) for d in out_shape)
        self.in_sample = int(np.prod(self.in_shape, dtype=np.int64)) * 4
        self.out_sample = int(np.prod(self.out_shape, dtype=np.int64)) * 4
        # raw app-payload shape for in-worker preprocess (FLAG_RAW), or None
        from ..tonic.serve import raw_item_shape

        self.raw_shape = raw_item_shape(name, self.in_shape)
        self.raw_sample = (int(np.prod(self.raw_shape, dtype=np.int64)) * 4
                           if self.raw_shape is not None else 0)


class _Waiter:
    __slots__ = ("seq", "event")

    def __init__(self, seq: int):
        self.seq = seq
        self.event = threading.Event()


class PoolLease:
    """A served batch pinned in its response slot until released.

    :attr:`outputs` is a read-only ndarray view over the shm ring; call
    :meth:`release` (or use as a context manager) to hand the slot back.
    Mirrors :class:`repro.core.batching.ResultLease` so the server's
    serialize-from-the-lease path works unchanged.
    """

    __slots__ = ("_pool", "_slot", "_outputs", "_released")

    def __init__(self, pool: "ProcPoolExecutor", slot: int, outputs: np.ndarray):
        self._pool = pool
        self._slot = slot
        self._outputs = outputs
        self._released = False

    @property
    def outputs(self) -> np.ndarray:
        if self._released:
            raise RuntimeError("lease already released")
        return self._outputs

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._outputs = None
        self._pool._release_slot(self._slot)

    def __enter__(self) -> "PoolLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


# -------------------------------------------------------------- worker side
def _derive_worker_plan(plan_dict: dict, index: int):
    from ..faults.plan import FaultPlan

    base = FaultPlan.from_dict(plan_dict)
    return FaultPlan(
        rules=base.rules,
        seed=base.seed * _WORKER_SEED_STRIDE + index + 1,
        name=f"{base.name}/worker{index}",
    )


def _worker_main(index: int, manifest: dict, ring_name: str, layout: dict,
                 work_q, resp_q, plan_dict: Optional[dict]) -> None:
    """Worker process entry point: attach, then serve slots until sentinel."""
    try:
        # A forked worker inherits whatever injector the parent had armed;
        # that one belongs to the parent's ordinal space.  Replace it with a
        # worker-seeded derivation so chaos stays deterministic per worker.
        faultsite.active = None
        if plan_dict is not None:
            from ..faults.plan import FaultInjector

            faultsite.install(FaultInjector(_derive_worker_plan(plan_dict, index)))

        registry = ModelRegistry.attach_shm(manifest)
        ring = shmseg.attach_segment(ring_name)
        _worker_loop(index, registry, ring, layout, work_q, resp_q)
    except KeyboardInterrupt:
        pass
    except BaseException:  # pragma: no cover - init failures surface via respawn cap
        import traceback

        traceback.print_exc()
        os._exit(1)


def _worker_loop(index: int, registry: ModelRegistry, ring, layout: dict,
                 work_q, resp_q) -> None:
    buf = ring.buf
    models: List[dict] = layout["models"]
    max_batch: int = layout["max_batch"]
    nets = {meta["name"]: registry.get(meta["name"]) for meta in models}
    plans: Dict[str, Optional[ExecutionPlan]] = {}
    apps: Dict[str, object] = {}  # lazily built per model for FLAG_RAW slots
    metrics = MetricsRegistry()
    served = metrics.counter(
        "djinn_proc_requests_total", "Requests served by pool workers",
        labelnames=("model", "worker"))
    forward_s = metrics.histogram(
        "djinn_proc_forward_seconds", "In-worker forward latency",
        labelnames=("model", "worker"))
    region_off = layout["metrics_off"] + index * layout["metrics_size"]
    region = buf[region_off:region_off + layout["metrics_size"]]

    while True:
        slot = work_q.get()
        if slot is None:
            break
        base = layout["slots_off"] + slot * layout["stride"]
        seq, _state, model_idx, rows, flags, _ = _unpack_header(buf, base)
        # Claim before the kill check: the supervisor requeues RUNNING slots
        # owned by a dead worker, so marking first makes the injected crash
        # (and any real crash mid-forward) lose nothing.
        _pack_header(buf, base, seq, STATE_RUNNING, model_idx, rows, flags, index)
        if flags & FLAG_KILL:
            os._exit(KILL_EXIT_CODE)
        meta = models[model_idx]
        name = meta["name"]
        try:
            if faultsite.active is not None:
                faultsite.active.on_batch(name)
            if flags & FLAG_RAW:
                # the slot holds raw app items; run the app's batched
                # preprocess *in this worker process* (stage-1 parallelism
                # across the pool), then forward the preprocessed block
                raw_shape = tuple(meta["raw_shape"])
                x = np.ndarray((rows,) + raw_shape, dtype=np.float32,
                               buffer=buf, offset=base + layout["in_off"])
            else:
                x = np.ndarray((rows,) + tuple(meta["in_shape"]),
                               dtype=np.float32, buffer=buf,
                               offset=base + layout["in_off"])
            out = np.ndarray((rows,) + tuple(meta["out_shape"]), dtype=np.float32,
                             buffer=buf, offset=base + layout["out_off"])
            start = time.monotonic()
            if flags & FLAG_RAW:
                if name not in apps:
                    from ..tonic.serve import _default_app

                    apps[name] = _default_app(name, nets[name])
                app = apps[name]
                if app is None:
                    raise ValueError(f"no serving app for model {name!r}")
                x, _counts = app.preprocess_batch(
                    [x[i] for i in range(rows)])
                x = np.ascontiguousarray(x, dtype=np.float32)
            if name not in plans:
                net = nets[name]
                try:
                    plans[name] = ExecutionPlan(net, max_batch)
                except PlanError:
                    plans[name] = None  # un-plannable: legacy forward below
            plan = plans[name]
            if plan is not None:
                plan.run_into(x, out)
            else:
                np.copyto(out, nets[name].forward(x))
            elapsed = time.monotonic() - start
            served.labels(model=name, worker=str(index)).inc()
            forward_s.labels(model=name, worker=str(index)).observe(elapsed)
            try:
                write_dump_region(region, metrics.dump())
            except ValueError:
                pass  # dump outgrew the region; stale stats beat a dead worker
            _pack_header(buf, base, seq, STATE_DONE, model_idx, rows, 0, index)
        except Exception as exc:
            _write_error(buf, base, f"{type(exc).__name__}|{exc}")
            _pack_header(buf, base, seq, STATE_ERROR, model_idx, rows, 0, index)
        resp_q.put((slot, seq))


# -------------------------------------------------------------- parent side
class ProcPoolExecutor:
    """Drop-in executor running forwards in N shared-memory worker processes.

    The submit surface mirrors :class:`repro.core.BatchingExecutor`:
    :meth:`submit` (copying), :meth:`submit_lease` (copy-free view), plus
    :meth:`submit_parts` for a batching front-end that gathers several
    payloads into one slot.  All three are thread-safe.
    """

    #: how long a submitter waits for a free slot before giving up
    SLOT_TIMEOUT_S = 30.0
    #: end-to-end per-request deadline (covers a worker respawn mid-request)
    REQUEST_TIMEOUT_S = 60.0
    #: give up respawning after this many deaths per worker slot (a worker
    #: that cannot even initialize would otherwise fork-bomb the host)
    MAX_RESPAWNS_PER_WORKER = 5

    def __init__(self, registry: ModelRegistry, workers: int = 2, *,
                 max_batch: int = 16, slots: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer=None, clock=time.monotonic,
                 fault_plan=None, start_method: Optional[str] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        names = registry.names()
        if not names:
            raise ValueError("cannot start a proc pool over an empty registry")
        self.registry = registry
        self.workers = workers
        self.max_batch = max_batch
        self.clock = clock
        from ..obs.trace import get_tracer

        self.tracer = tracer if tracer is not None else get_tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._dispatch_total = self.metrics.counter(
            "djinn_proc_dispatch_total", "Batches dispatched to pool workers",
            labelnames=("model",))
        self._respawn_total = self.metrics.counter(
            "djinn_proc_worker_respawns_total",
            "Workers reaped and replaced after unexpected death")
        self._workers_gauge = self.metrics.gauge(
            "djinn_proc_workers", "Live pool worker processes")

        #: weights: exported once per registry, shared by every pool/worker
        self.manifest = registry.export_shm()
        self._models = [
            _ModelMeta(name, registry.get(name).input_shape,
                       registry.get(name).output_shape)
            for name in names
        ]
        self._model_index = {meta.name: i for i, meta in enumerate(self._models)}

        slot_count = slots if slots is not None else max(workers + 2, 4)
        # the input region must hold either a preprocessed batch or a raw
        # app-payload batch, whichever is larger for any model
        in_cap = shmseg.align64(
            max(max(m.in_sample, m.raw_sample) for m in self._models)
            * max_batch)
        out_cap = shmseg.align64(max(m.out_sample for m in self._models) * max_batch)
        self._in_off = HEADER_BYTES
        self._out_off = HEADER_BYTES + in_cap
        stride = HEADER_BYTES + in_cap + out_cap
        self._layout = {
            "slots": slot_count,
            "stride": stride,
            "slots_off": 0,
            "in_off": self._in_off,
            "out_off": self._out_off,
            "metrics_off": slot_count * stride,
            "metrics_size": METRICS_REGION_BYTES,
            "max_batch": max_batch,
            "models": [
                {"name": m.name, "in_shape": list(m.in_shape),
                 "out_shape": list(m.out_shape),
                 "raw_shape": (list(m.raw_shape)
                               if m.raw_shape is not None else None)}
                for m in self._models
            ],
        }
        ring_bytes = slot_count * stride + workers * METRICS_REGION_BYTES
        self._ring = shared_memory.SharedMemory(create=True, size=ring_bytes)

        self._lock = threading.Lock()
        self._seq = 0
        self._closed = False
        self._stopping = threading.Event()
        self._unlinked = False
        self._waiters: Dict[int, _Waiter] = {}
        self._free: "queue.Queue[int]" = queue.Queue()
        for slot in range(slot_count):
            self._free.put(slot)

        if start_method is None:
            start_method = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                            else "spawn")
        self._ctx = multiprocessing.get_context(start_method)
        self._work_q = self._ctx.Queue()
        self._resp_q = self._ctx.Queue()
        self._plan_dict = fault_plan.to_dict() if fault_plan is not None else None

        self._procs: List[multiprocessing.Process] = [
            self._spawn(i) for i in range(workers)
        ]
        self._workers_gauge.labels().set(workers)

        self._collector = threading.Thread(
            target=self._collect_loop, name="procpool-collector", daemon=True)
        self._collector.start()
        self._supervisor = threading.Thread(
            target=self._supervise_loop, name="procpool-supervisor", daemon=True)
        self._supervisor.start()

    # ----------------------------------------------------------- lifecycle
    def _spawn(self, index: int):
        proc = self._ctx.Process(
            target=_worker_main,
            args=(index, self.manifest, self._ring.name, self._layout,
                  self._work_q, self._resp_q, self._plan_dict),
            name=f"djinn-proc-{index}",
            daemon=True,
        )
        proc.start()
        return proc

    def close(self) -> None:
        """Stop workers and release the ring segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stopping.set()
        for _ in self._procs:
            self._work_q.put(None)
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        self._resp_q.put(None)
        self._collector.join(timeout=5.0)
        self._supervisor.join(timeout=5.0)
        # fail anything still waiting: submitters see a non-DONE state
        with self._lock:
            waiters = list(self._waiters.values())
            self._waiters.clear()
        for waiter in waiters:
            waiter.event.set()
        for q in (self._work_q, self._resp_q):
            q.close()
            q.cancel_join_thread()
        with self._lock:
            if not self._unlinked:
                self._unlinked = True
                shmseg.unlink_segment(self._ring)
        self._workers_gauge.labels().set(0)

    def __enter__(self) -> "ProcPoolExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- serving
    def submit(self, model: str, inputs: np.ndarray, *, trace=None) -> np.ndarray:
        """Serve one batch and return an owned copy of the outputs."""
        lease = self.submit_lease(model, inputs, trace=trace)
        try:
            return np.array(lease.outputs, copy=True)
        finally:
            lease.release()

    def submit_lease(self, model: str, inputs: np.ndarray, *, trace=None) -> PoolLease:
        """Serve one batch; the result stays pinned in its slot until released."""
        return self.submit_parts(model, [inputs], trace=trace)

    def submit_parts(self, model: str, parts: Sequence[np.ndarray], *,
                     trace=None, raw: bool = False) -> PoolLease:
        """Gather ``parts`` into one slot, dispatch, wait, lease the result.

        With ``raw=True`` the parts are *raw app payload items* (shape
        :meth:`raw_item_shape`, one DNN row each); the worker process runs
        the model's app ``preprocess_batch`` inside the slot before its
        forward, moving stage-1 work off the parent's executor thread.
        """
        if self._closed:
            raise ProcPoolError("pool is closed")
        index = self._model_index.get(model)
        if index is None:
            raise KeyError(
                f"model {model!r} not in pool; available: "
                f"{[m.name for m in self._models]}")
        meta = self._models[index]
        if raw and meta.raw_shape is None:
            raise ValueError(
                f"model {model!r} has no raw slot shape; raw dispatch is "
                f"only for slot-eligible app payloads")
        sample_shape = meta.raw_shape if raw else meta.in_shape
        arrays: List[np.ndarray] = []
        rows = 0
        for part in parts:
            arr = np.asarray(part, dtype=np.float32)
            if arr.ndim == len(sample_shape):
                arr = arr[None]
            if tuple(arr.shape[1:]) != sample_shape:
                raise ValueError(
                    f"model {model!r} expects sample shape {sample_shape}, "
                    f"got {tuple(arr.shape[1:])}")
            arrays.append(arr)
            rows += arr.shape[0]
        if rows < 1:
            raise ValueError("empty batch")
        if rows > self.max_batch:
            raise ValueError(
                f"batch of {rows} rows exceeds pool envelope {self.max_batch}")

        # the forward span starts here: slot acquisition and the copy into
        # the shm slot are the cost of issuing this batch to the executor
        start = self.clock()
        try:
            slot = self._free.get(timeout=self.SLOT_TIMEOUT_S)
        except queue.Empty:
            raise ProcPoolError(
                f"no free response slot after {self.SLOT_TIMEOUT_S}s "
                f"({self._layout['slots']} slots)") from None
        base = self._layout["slots_off"] + slot * self._layout["stride"]
        buf = self._ring.buf
        inp = np.ndarray((rows,) + sample_shape, dtype=np.float32,
                         buffer=buf, offset=base + self._in_off)
        row = 0
        for arr in arrays:
            np.copyto(inp[row:row + arr.shape[0]], arr)
            row += arr.shape[0]
        with self._lock:
            self._seq += 1
            seq = self._seq
        flags = FLAG_RAW if raw else 0
        if faultsite.active is not None and faultsite.active.on_dispatch(model):
            flags |= FLAG_KILL
        _pack_header(buf, base, seq, STATE_QUEUED, index, rows, flags, NO_WORKER)
        waiter = _Waiter(seq)
        with self._lock:
            self._waiters[slot] = waiter
        self._dispatch_total.labels(model=model).inc()
        self._work_q.put(slot)

        if not waiter.event.wait(self.REQUEST_TIMEOUT_S):
            with self._lock:
                self._waiters.pop(slot, None)
            # the worker may still write the slot later: leak it rather than
            # hand out a slot that could be scribbled on mid-flight
            raise ProcPoolError(
                f"request timed out after {self.REQUEST_TIMEOUT_S}s "
                f"(slot {slot} abandoned)")
        with self._lock:
            self._waiters.pop(slot, None)
        _seq, state, _model, _rows, _flags, _worker = _unpack_header(buf, base)
        if state == STATE_DONE:
            if trace is not None and self.tracer.enabled:
                trace_id, parent_id = trace
                self.tracer.add_span(
                    "net.forward", start, self.clock(), trace_id, parent_id,
                    category="compute", model=model, batch_size=rows,
                    executor="proc")
            out = np.ndarray((rows,) + meta.out_shape, dtype=np.float32,
                             buffer=buf, offset=base + self._out_off)
            out.flags.writeable = False
            return PoolLease(self, slot, out)
        if state == STATE_ERROR:
            message = _read_error(buf, base)
            self._release_slot(slot)
            raise _rebuild_error(message)
        self._release_slot(slot)
        raise ProcPoolError("pool closed while request was in flight")

    def raw_item_shape(self, model: str) -> Optional[Tuple[int, ...]]:
        """Shape of one raw payload item for ``submit_parts(raw=True)``,
        or ``None`` when the model is not slot-eligible for in-worker
        preprocess (ragged payloads, non-canonical input shapes)."""
        index = self._model_index.get(model)
        if index is None:
            return None
        return self._models[index].raw_shape

    def _release_slot(self, slot: int) -> None:
        if self._closed:
            return
        base = self._layout["slots_off"] + slot * self._layout["stride"]
        _pack_header(self._ring.buf, base, 0, STATE_FREE, 0, 0, 0, NO_WORKER)
        self._free.put(slot)

    # --------------------------------------------------------- background
    def _collect_loop(self) -> None:
        while True:
            try:
                item = self._resp_q.get()
            except (EOFError, OSError):  # pragma: no cover - teardown race
                return
            if item is None:
                return
            slot, seq = item
            with self._lock:
                waiter = self._waiters.get(slot)
            if waiter is not None and waiter.seq == seq:
                waiter.event.set()

    def _supervise_loop(self) -> None:
        from multiprocessing import connection

        respawns = 0
        while not self._stopping.is_set():
            sentinels = {}
            for i, proc in enumerate(self._procs):
                if proc.is_alive():
                    sentinels[proc.sentinel] = i
            if not sentinels:
                if self._stopping.wait(0.05):
                    return
                continue
            ready = connection.wait(list(sentinels), timeout=0.2)
            if self._stopping.is_set():
                return
            for sentinel in ready:
                index = sentinels[sentinel]
                proc = self._procs[index]
                proc.join()
                self._respawn_total.labels().inc()
                self._recover_slots(index)
                respawns += 1
                if respawns <= self.MAX_RESPAWNS_PER_WORKER * self.workers:
                    self._procs[index] = self._spawn(index)
                else:  # pragma: no cover - crash-loop backstop
                    self._workers_gauge.labels().dec()

    def _recover_slots(self, dead_worker: int) -> None:
        """Requeue whatever the dead worker was running; wake finished slots.

        A slot in RUNNING owned by the dead worker goes back on the work
        queue with the kill flag cleared (an injected kill fires once); a
        slot already DONE/ERROR whose response message died with the worker
        just needs its waiter signalled.
        """
        buf = self._ring.buf
        for slot in range(self._layout["slots"]):
            base = self._layout["slots_off"] + slot * self._layout["stride"]
            seq, state, model, rows, flags, worker = _unpack_header(buf, base)
            if state == STATE_RUNNING and worker == dead_worker:
                _pack_header(buf, base, seq, STATE_QUEUED, model, rows,
                             flags & ~FLAG_KILL, NO_WORKER)
                self._work_q.put(slot)
            elif state in (STATE_DONE, STATE_ERROR):
                with self._lock:
                    waiter = self._waiters.get(slot)
                if waiter is not None and waiter.seq == seq:
                    waiter.event.set()

    # ------------------------------------------------------------- reports
    def worker_metric_dumps(self) -> List[dict]:
        """Per-worker metrics dumps read from the seqlock'd shm regions."""
        if self._closed:
            return []
        dumps = []
        buf = self._ring.buf
        for i in range(self.workers):
            off = self._layout["metrics_off"] + i * self._layout["metrics_size"]
            dump = read_dump_region(buf[off:off + self._layout["metrics_size"]])
            if dump is not None:
                dumps.append(dump)
        return dumps

    def respawn_count(self) -> int:
        return int(self._respawn_total.labels().value)

    def shm_bytes(self) -> int:
        """Weight bytes resident in shared memory (one copy per host)."""
        return self.registry.shm_bytes()

    def segment_names(self) -> List[str]:
        """Every shm segment this pool depends on (weights + ring)."""
        names = [entry["segment"]
                 for entry in self.manifest["models"].values()]
        names.append(self._ring.name)
        return names
