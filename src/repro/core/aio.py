"""Asyncio streaming client: many concurrent streams, few connections.

The blocking :class:`repro.core.client.DjinnClient` maps one thread to one
connection; scaling it to thousands of concurrent streams means thousands
of threads.  :class:`DjinnStreamClient` instead multiplexes streams over a
small pool of asyncio connections: one reader task per connection parses
frames with the shared sans-IO decoder (:func:`repro.core.protocol
.frame_parser`) and routes each frame to its stream's queue by
``stream_id``, so any number of streams interleave on one socket with a
single outstanding operation per stream.

Error typing matches the sync client: SESSION_LIMIT becomes
:class:`DjinnSessionLimitError`, a stream-carrying ERROR frame becomes
:class:`DjinnStreamError` (the stream is dead, the connection is fine),
and transport failures become :class:`DjinnConnectionError` delivered to
every stream on the lost connection.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Dict, List, Optional

import numpy as np

from .client import (
    DjinnConnectionError,
    DjinnServiceError,
    DjinnSessionLimitError,
    DjinnStreamError,
    StreamResult,
)
from .protocol import Message, MessageType, ProtocolError, encode_message, frame_parser

__all__ = ["DjinnStreamClient", "AsyncDjinnStream"]


async def _recv_async(reader: asyncio.StreamReader) -> Message:
    """Read one frame from an asyncio stream via the shared parser."""
    parser = frame_parser()
    need = next(parser)
    while True:
        try:
            need = parser.send(
                await reader.readexactly(need) if need else b"")
        except StopIteration as done:
            return done.value


class _Conn:
    """One multiplexed connection: writer lock + reader task + routing."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.routes: Dict[int, asyncio.Queue] = {}
        self.reader_task: Optional[asyncio.Task] = None
        self.dead: Optional[Exception] = None

    async def run(self) -> None:
        """Reader loop: route every inbound frame to its stream's queue."""
        try:
            while True:
                message = await _recv_async(self.reader)
                queue = self.routes.get(message.stream_id)
                if queue is not None:
                    queue.put_nowait(message)
                # frames for unknown streams (e.g. a late reply after local
                # abandonment) are dropped; the server keeps strict 1:1
                # request/reply ordering so nothing else arrives here
        except (asyncio.IncompleteReadError, ConnectionError, OSError,
                ProtocolError) as exc:
            self.dead = DjinnConnectionError(f"stream connection lost: {exc}")
            for queue in self.routes.values():
                queue.put_nowait(self.dead)

    async def request(self, stream_id: int, message: Message) -> Message:
        if self.dead is not None:
            raise self.dead
        async with self.write_lock:
            self.writer.write(encode_message(message))
            await self.writer.drain()
        reply = await self.routes[stream_id].get()
        if isinstance(reply, Exception):
            raise reply
        return reply

    async def close(self) -> None:
        if self.reader_task is not None:
            self.reader_task.cancel()
            try:
                await self.reader_task
            except (asyncio.CancelledError, Exception):
                pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class AsyncDjinnStream:
    """One open stream on a :class:`DjinnStreamClient`.

    One outstanding operation per stream (enforced with a lock); different
    streams on the same connection proceed concurrently.
    """

    def __init__(self, conn: _Conn, model: str, stream_id: int):
        self._conn = conn
        self.model = model
        self.stream_id = stream_id
        self._seq = 0
        self._lock = asyncio.Lock()
        self._final: Optional[StreamResult] = None

    @property
    def finalized(self) -> bool:
        return self._final is not None

    def _result(self, response: Message) -> StreamResult:
        if response.type == MessageType.ERROR:
            raise DjinnStreamError(response.text, stream_id=self.stream_id)
        if response.type != MessageType.STREAM_RESULT:
            raise DjinnServiceError(
                f"unexpected stream reply {response.type}")
        try:
            data = json.loads(response.text) if response.text else {}
        except ValueError:
            data = {"raw": response.text}
        result = StreamResult(data=data, seq=response.stream_seq,
                              final=response.stream_final)
        if result.final:
            self._final = result
            self._conn.routes.pop(self.stream_id, None)
        return result

    async def send(self, chunk: np.ndarray) -> StreamResult:
        """Send one chunk; returns the partial (or endpointed-final) result."""
        chunk = np.ascontiguousarray(chunk, dtype=np.float32)
        async with self._lock:
            self._seq += 1
            reply = await self._conn.request(
                self.stream_id,
                Message(MessageType.STREAM_CHUNK, name=self.model,
                        tensor=chunk, stream_id=self.stream_id,
                        stream_seq=self._seq))
        return self._result(reply)

    async def close(self) -> StreamResult:
        """End the stream; returns the final result."""
        if self._final is not None:
            return self._final
        async with self._lock:
            self._seq += 1
            reply = await self._conn.request(
                self.stream_id,
                Message(MessageType.STREAM_CLOSE, name=self.model,
                        stream_id=self.stream_id, stream_seq=self._seq))
        return self._result(reply)


class DjinnStreamClient:
    """Asyncio client multiplexing many streams over few connections.

    ``connections`` bounds the TCP fan-in; streams are assigned round-robin
    at :meth:`open`.  Against a gateway every stream is still pinned to one
    backend (the gateway's session affinity), regardless of which client
    connection carries it.
    """

    def __init__(self, host: str, port: int, connections: int = 1):
        if connections < 1:
            raise ValueError(f"connections must be >= 1, got {connections}")
        self._host, self._port = host, port
        self._target = connections
        self._conns: List[_Conn] = []
        self._ids = itertools.count(1)
        self._rr = 0

    async def connect(self) -> "DjinnStreamClient":
        try:
            for _ in range(self._target):
                reader, writer = await asyncio.open_connection(
                    self._host, self._port)
                conn = _Conn(reader, writer)
                conn.reader_task = asyncio.ensure_future(conn.run())
                self._conns.append(conn)
        except OSError as exc:
            await self.close()
            raise DjinnConnectionError(
                f"cannot connect to {self._host}:{self._port}: {exc}"
            ) from exc
        return self

    async def open(self, model: str, priority: int = 0,
                   tenant: str = "") -> AsyncDjinnStream:
        """Open one stream (round-robin across the connection pool)."""
        if not self._conns:
            raise RuntimeError("client not connected; call connect() first")
        conn = self._conns[self._rr % len(self._conns)]
        self._rr += 1
        stream_id = next(self._ids)
        conn.routes[stream_id] = asyncio.Queue()
        try:
            reply = await conn.request(
                stream_id,
                Message(MessageType.STREAM_OPEN, name=model,
                        stream_id=stream_id, priority=priority,
                        tenant=tenant))
        except Exception:
            conn.routes.pop(stream_id, None)
            raise
        if reply.type == MessageType.SESSION_LIMIT:
            conn.routes.pop(stream_id, None)
            try:
                detail = json.loads(reply.text)
            except ValueError:
                detail = {"error": reply.text}
            raise DjinnSessionLimitError(
                detail.get("error", reply.text), stream_id=stream_id,
                limit=int(detail.get("limit", 0)))
        if reply.type == MessageType.ERROR:
            conn.routes.pop(stream_id, None)
            raise DjinnStreamError(reply.text, stream_id=stream_id)
        if reply.type != MessageType.STREAM_OPEN:
            conn.routes.pop(stream_id, None)
            raise DjinnServiceError(f"unexpected stream-open reply {reply.type}")
        return AsyncDjinnStream(conn, model, stream_id)

    async def close(self) -> None:
        conns, self._conns = self._conns, []
        for conn in conns:
            await conn.close()

    async def __aenter__(self) -> "DjinnStreamClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()
