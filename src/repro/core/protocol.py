r"""DjiNN wire protocol: a custom binary protocol over TCP/IP.

The paper (§3.1) describes DjiNN as "a standalone service accepting and
processing external requests ... using a custom socket protocol over
TCP/IP".  This module is that protocol: length-delimited frames carrying a
message type, a model name, and a float32 tensor payload.

Frame layout (all integers little-endian)::

    magic       4 bytes  b"DJNN"
    version     u8       1 (plain), 2 (trace), 3 (trace + QoS), 4 (+ stream),
                         5 (+ app payload)
    type        u8       MessageType
    name_len    u16      model-name byte count
    ndim        u8       payload tensor rank (0 = no tensor)
    trace_id    u64      \ only when version >= 2: request-scoped trace
    span_id     u64      / context (sender's span, the receiver's parent)
    deadline_us u32      \
    priority    i8        > only when version >= 3: QoS block
    tenant_len  u8       /
    stream_id   u32      \
    flags       u8        > only when version >= 4: stream block
    seq         u32      /
    payload_kind u8      only when version >= 5: raw-payload type tag
    dims        u32 * ndim
    body_len    u64      payload byte count (tensor data or UTF-8 text)
    name        name_len bytes (UTF-8)
    tenant      tenant_len bytes (UTF-8, version >= 3 only)
    body        body_len bytes

The trace context is optional and backward compatible: senders emit the
version-1 layout unless a message actually carries trace IDs, so untraced
traffic is byte-identical to the original protocol and old peers
interoperate unchanged.  A version-2 frame sent to a pre-trace peer fails
loudly (version check) rather than desyncing the stream.

Version 3 extends the same scheme to quality-of-service fields: a frame
carries the QoS block only when the message actually has a deadline,
priority, or tenant, so QoS-less traffic from a new client is
byte-identical to what an old client would send (version 1 or 2 as
before).  A version-3 frame always includes the trace block (zeros when
untraced) so each version has exactly one layout.  ``deadline_us`` is the
*remaining* budget at send time, in microseconds (0 = none) — a relative
duration, not a wall-clock timestamp, so it survives clock skew between
hosts; each receiver re-anchors it against its own monotonic clock.

Version 4 adds streaming: frames that belong to a stream (the
``STREAM_*`` message types, plus stream-scoped errors) carry a stream
block — ``stream_id`` scopes the frame to one stream on the connection
(ids are per-connection, chosen by the opener, never 0), ``seq`` is the
sender's ordinal within the stream, and ``flags`` bit 0 marks the final
frame of a stream's results.  The minimal-version rule is unchanged: a
message with no stream id still goes out as version 1/2/3, so every
unary byte sequence is identical to what a pre-streaming peer emits.  A
version-4 frame always includes the trace and QoS blocks (zeros when
unused) so each version has exactly one layout.

Version 5 adds application frames: an ``APP_REQUEST`` names a Tonic
*application* and carries the raw task payload — pixels, audio samples,
tokens — instead of a preprocessed float32 tensor, so the server owns
the whole preprocess → DNN → postprocess pipeline (the paper's central
service-architecture point; raw payloads are also typically far smaller
than the preprocessed tensor, e.g. u8 pixels at a quarter the bytes).
One ``payload_kind`` byte tags how the body decodes: ``KIND_TENSOR``
(float32, as before), ``KIND_U8`` (uint8 tensor, ``body_len ==
prod(dims)``), or ``KIND_TEXT`` (UTF-8, ``ndim == 0``).  The minimal-
version rule is unchanged: only frames that actually carry a payload
kind emit version 5, so all v1–v4 traffic is byte-identical to what a
pre-app peer sends.  A version-5 frame includes the trace/QoS/stream
blocks (stream zeroed — app frames are unary) so each version keeps
exactly one layout.
"""

from __future__ import annotations

import socket
import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Optional, Tuple

import numpy as np

from . import faultsite

__all__ = [
    "MessageType",
    "Message",
    "ProtocolError",
    "send_message",
    "recv_message",
    "encode_message",
    "frame_parser",
    "MAX_BODY_BYTES",
    "MAX_NAME_BYTES",
    "MAX_NDIM",
    "MAX_TENANT_BYTES",
    "MAX_DEADLINE_MS",
    "MAX_STREAM_ID",
    "VERSION",
    "TRACE_VERSION",
    "QOS_VERSION",
    "STREAM_VERSION",
    "APP_VERSION",
    "STREAM_FINAL",
    "STREAM_TYPES",
    "APP_TYPES",
    "KIND_TENSOR",
    "KIND_TEXT",
    "KIND_U8",
]

MAGIC = b"DJNN"
VERSION = 1
#: Version emitted when a frame carries trace context (see module docstring).
TRACE_VERSION = 2
#: Version emitted when a frame carries QoS fields (deadline/priority/tenant).
QOS_VERSION = 3
#: Version emitted when a frame belongs to a stream (stream_id != 0).
STREAM_VERSION = 4
#: Version emitted when a frame carries a typed raw app payload.
APP_VERSION = 5
#: Stream-block flag bit: this frame is the final result of its stream.
STREAM_FINAL = 0x01
#: Payload kinds (version-5 ``payload_kind`` byte).
KIND_TENSOR = 1  #: float32 tensor, body_len == 4 * prod(dims)
KIND_TEXT = 2    #: UTF-8 text, ndim == 0
KIND_U8 = 3      #: uint8 tensor, body_len == prod(dims)
_PAYLOAD_KINDS = frozenset({KIND_TENSOR, KIND_TEXT, KIND_U8})
_HEADER = struct.Struct("<4sBBHB")
_TRACE = struct.Struct("<QQ")
_QOS = struct.Struct("<IbB")
_STREAM = struct.Struct("<IBI")
_PAYLOAD = struct.Struct("<B")
_DIM = struct.Struct("<I")
_BODY_LEN = struct.Struct("<Q")

_MAX_ID = (1 << 64) - 1
_MAX_DEADLINE_US = (1 << 32) - 1
_MAX_U32 = (1 << 32) - 1

#: Upper bound on a single payload (guards against corrupt frames).
MAX_BODY_BYTES = 1 << 31
#: Upper bound on a model-name field; real names are a few bytes.
MAX_NAME_BYTES = 1024
#: Upper bound on tensor rank; the Tonic models top out at rank 4.
MAX_NDIM = 16
#: Upper bound on a tenant identifier (wire field is one length byte).
MAX_TENANT_BYTES = 255
#: Upper bound on a request deadline (wire field is u32 microseconds).
MAX_DEADLINE_MS = _MAX_DEADLINE_US / 1e3
#: Upper bound on a stream id / sequence number (wire fields are u32).
MAX_STREAM_ID = _MAX_U32


class ProtocolError(RuntimeError):
    """Malformed frame, bad magic, or version mismatch."""


class MessageType(IntEnum):
    INFER_REQUEST = 1     # name = model, tensor = input batch
    INFER_RESPONSE = 2    # tensor = output batch
    ERROR = 3             # body = UTF-8 error text
    LIST_REQUEST = 4
    LIST_RESPONSE = 5     # body = UTF-8, newline-separated model names
    STATS_REQUEST = 6
    STATS_RESPONSE = 7    # body = UTF-8 JSON service statistics
    SHUTDOWN = 8
    METRICS_REQUEST = 9
    METRICS_RESPONSE = 10  # body = UTF-8 JSON MetricsRegistry dump
    DEADLINE_EXCEEDED = 11  # body = UTF-8 text: request expired before forward
    OVERLOADED = 12        # body = UTF-8 JSON {"error", "reason", "retry_after_ms"}
    STREAM_OPEN = 13       # name = model; opens the sender's stream_id
    STREAM_CHUNK = 14      # tensor = one chunk of stream input
    STREAM_RESULT = 15     # body = UTF-8 JSON partial/final result (flags bit 0)
    STREAM_CLOSE = 16      # end-of-stream from the opener
    SESSION_LIMIT = 17     # body = UTF-8 JSON {"error", "limit"}: table full
    APP_REQUEST = 18       # name = app, body = typed raw payload (payload_kind)
    APP_RESPONSE = 19      # body = UTF-8 JSON application result


#: Message types that always travel inside a stream (version-4 frames).
STREAM_TYPES = frozenset({
    MessageType.STREAM_OPEN,
    MessageType.STREAM_CHUNK,
    MessageType.STREAM_RESULT,
    MessageType.STREAM_CLOSE,
    MessageType.SESSION_LIMIT,
})

#: Message types that always carry a typed app payload (version-5 frames).
APP_TYPES = frozenset({
    MessageType.APP_REQUEST,
    MessageType.APP_RESPONSE,
})


@dataclass
class Message:
    """One protocol frame.

    ``trace_id``/``span_id`` are the optional request-scoped trace context
    (0 = absent).  A request carries the sender's span as ``span_id``; the
    receiver parents its own spans under it and echoes the context back on
    the response.

    ``deadline_ms``/``priority``/``tenant`` are the optional QoS fields
    (version-3 frames).  ``deadline_ms`` is the remaining latency budget at
    send time (0.0 = no deadline); ``priority`` is a signed class in
    [-128, 127], higher scheduled first; ``tenant`` names the requester for
    per-tenant admission control.

    ``stream_id``/``stream_seq``/``stream_final`` are the stream fields
    (version-4 frames).  ``stream_id`` is nonzero exactly when the frame
    belongs to a stream; ``stream_seq`` is the sender's ordinal within
    that stream; ``stream_final`` marks the last result of the stream.

    ``payload_kind`` is the app-payload type tag (version-5 frames):
    nonzero exactly when the frame carries a typed raw payload —
    :data:`KIND_TENSOR` (float32), :data:`KIND_U8` (uint8 pixels/samples),
    or :data:`KIND_TEXT` (UTF-8 tokens).  For ``KIND_U8`` the ``tensor``
    field holds a uint8 array.
    """

    type: MessageType
    name: str = ""
    tensor: Optional[np.ndarray] = None
    text: str = ""
    trace_id: int = 0
    span_id: int = 0
    deadline_ms: float = 0.0
    priority: int = 0
    tenant: str = ""
    stream_id: int = 0
    stream_seq: int = 0
    stream_final: bool = False
    payload_kind: int = 0

    @property
    def has_qos(self) -> bool:
        return bool(self.deadline_ms or self.priority or self.tenant)

    @property
    def has_stream(self) -> bool:
        return bool(self.stream_id)

    @property
    def has_app(self) -> bool:
        return bool(self.payload_kind)

    def body(self):
        """Payload bytes — a zero-copy memoryview when the tensor allows it.

        A C-contiguous float32 tensor (e.g. a view of an execution plan's
        output slab) is exposed directly as a read-only buffer; the single
        copy then happens inside the frame join in :func:`send_message`.
        Anything else falls back to the converting ``tobytes`` path.
        """
        if self.tensor is not None:
            t = self.tensor
            if self.payload_kind == KIND_U8:
                if t.dtype == np.uint8 and t.flags.c_contiguous:
                    return t.data.cast("B")
                return np.ascontiguousarray(t, dtype=np.uint8).tobytes()
            if t.dtype == np.float32 and t.flags.c_contiguous:
                return t.data.cast("B")
            return np.ascontiguousarray(t, dtype=np.float32).tobytes()
        return self.text.encode("utf-8")


def encode_message(message: Message) -> bytes:
    """Serialize one frame to bytes (the minimal-version layout)."""
    name = message.name.encode("utf-8")
    if len(name) > MAX_NAME_BYTES:
        raise ProtocolError(f"model name too long: {len(name)} bytes")
    tensor = message.tensor
    dims: Tuple[int, ...] = tuple(tensor.shape) if tensor is not None else ()
    if len(dims) > MAX_NDIM:
        raise ProtocolError(f"tensor rank too large: {len(dims)}")
    body = message.body()
    if len(body) > MAX_BODY_BYTES:
        raise ProtocolError(f"payload too large: {len(body)} bytes")
    traced = bool(message.trace_id or message.span_id)
    if traced and not (0 <= message.trace_id <= _MAX_ID
                       and 0 <= message.span_id <= _MAX_ID):
        raise ProtocolError(
            f"trace context out of u64 range: "
            f"({message.trace_id}, {message.span_id})")
    qos = message.has_qos
    tenant = b""
    if qos:
        if not 0.0 <= message.deadline_ms <= MAX_DEADLINE_MS:
            raise ProtocolError(
                f"deadline out of range: {message.deadline_ms} ms")
        if not -128 <= message.priority <= 127:
            raise ProtocolError(f"priority out of i8 range: {message.priority}")
        tenant = message.tenant.encode("utf-8")
        if len(tenant) > MAX_TENANT_BYTES:
            raise ProtocolError(f"tenant too long: {len(tenant)} bytes")
    streamed = message.has_stream
    if message.type in STREAM_TYPES and not streamed:
        raise ProtocolError(f"{message.type.name} frame without a stream id")
    if (message.stream_seq or message.stream_final) and not streamed:
        raise ProtocolError("stream seq/final set on a non-stream frame")
    if streamed:
        if not 1 <= message.stream_id <= MAX_STREAM_ID:
            raise ProtocolError(
                f"stream id out of u32 range: {message.stream_id}")
        if not 0 <= message.stream_seq <= MAX_STREAM_ID:
            raise ProtocolError(
                f"stream seq out of u32 range: {message.stream_seq}")
    app = message.has_app
    if message.type in APP_TYPES and not app:
        raise ProtocolError(f"{message.type.name} frame without a payload kind")
    if app:
        kind = message.payload_kind
        if kind not in _PAYLOAD_KINDS:
            raise ProtocolError(f"unknown payload kind {kind}")
        if streamed:
            raise ProtocolError("app payload on a stream frame")
        if kind == KIND_TEXT and tensor is not None:
            raise ProtocolError("text payload kind with a tensor body")
        if kind in (KIND_TENSOR, KIND_U8) and (tensor is None or not dims):
            raise ProtocolError("tensor payload kind without a tensor body")
    if app:
        version = APP_VERSION
    elif streamed:
        version = STREAM_VERSION
    elif qos:
        version = QOS_VERSION
    elif traced:
        version = TRACE_VERSION
    else:
        version = VERSION
    # One pre-sized buffer for everything ahead of the body: a single
    # allocation and no per-block bytes objects, so small-request dispatch
    # doesn't pay a join over half a dozen packs.
    head_len = _HEADER.size + _BODY_LEN.size + len(dims) * _DIM.size \
        + len(name) + len(tenant)
    if version >= TRACE_VERSION:
        head_len += _TRACE.size
    if version >= QOS_VERSION:
        head_len += _QOS.size
    if version >= STREAM_VERSION:
        head_len += _STREAM.size
    if version >= APP_VERSION:
        head_len += _PAYLOAD.size
    head = bytearray(head_len)
    _HEADER.pack_into(head, 0, MAGIC, version, int(message.type),
                      len(name), len(dims))
    offset = _HEADER.size
    if version >= TRACE_VERSION:
        _TRACE.pack_into(head, offset, message.trace_id, message.span_id)
        offset += _TRACE.size
    if version >= QOS_VERSION:
        # a nonzero deadline never rounds down to "no deadline" on the wire
        deadline_us = int(round(message.deadline_ms * 1e3))
        if message.deadline_ms and not deadline_us:
            deadline_us = 1
        _QOS.pack_into(head, offset, deadline_us, message.priority, len(tenant))
        offset += _QOS.size
    if version >= STREAM_VERSION:
        flags = STREAM_FINAL if message.stream_final else 0
        _STREAM.pack_into(head, offset, message.stream_id, flags,
                          message.stream_seq)
        offset += _STREAM.size
    if version >= APP_VERSION:
        _PAYLOAD.pack_into(head, offset, message.payload_kind)
        offset += _PAYLOAD.size
    for d in dims:
        _DIM.pack_into(head, offset, d)
        offset += _DIM.size
    _BODY_LEN.pack_into(head, offset, len(body))
    offset += _BODY_LEN.size
    head[offset:offset + len(name)] = name
    offset += len(name)
    if version >= QOS_VERSION:
        head[offset:offset + len(tenant)] = tenant
    return b"".join((head, body))


def send_message(sock: socket.socket, message: Message) -> None:
    """Serialize and send one frame."""
    frame = encode_message(message)
    if faultsite.active is not None:
        frame = faultsite.active.on_send(sock, message.type.name, frame)
    sock.sendall(frame)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def frame_parser():
    """Sans-IO incremental frame parser.

    A generator that yields the byte count it needs next and receives
    exactly those bytes back via ``send``; the parsed :class:`Message` is
    the ``StopIteration`` value.  Both the blocking (:func:`recv_message`)
    and asyncio (:mod:`repro.core.aio`) receive paths drive this one
    decoder, so the wire format has a single source of truth.
    """
    magic, version, mtype, name_len, ndim = _HEADER.unpack((yield _HEADER.size))
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version not in (VERSION, TRACE_VERSION, QOS_VERSION, STREAM_VERSION,
                       APP_VERSION):
        raise ProtocolError(f"unsupported protocol version {version}")
    # Bound the variable-length fields *before* reading them, so a corrupt
    # header can't drive huge reads.
    if name_len > MAX_NAME_BYTES:
        raise ProtocolError(f"model name too long: {name_len} bytes")
    if ndim > MAX_NDIM:
        raise ProtocolError(f"tensor rank too large: {ndim}")
    trace_id = span_id = 0
    if version >= TRACE_VERSION:
        trace_id, span_id = _TRACE.unpack((yield _TRACE.size))
    deadline_us = priority = tenant_len = 0
    if version >= QOS_VERSION:
        deadline_us, priority, tenant_len = _QOS.unpack((yield _QOS.size))
    stream_id = stream_flags = stream_seq = 0
    if version >= STREAM_VERSION:
        stream_id, stream_flags, stream_seq = _STREAM.unpack(
            (yield _STREAM.size))
        if version == STREAM_VERSION and not stream_id:
            raise ProtocolError("version-4 frame without a stream id")
        if stream_flags & ~STREAM_FINAL:
            raise ProtocolError(f"unknown stream flags 0x{stream_flags:02x}")
    payload_kind = 0
    if version >= APP_VERSION:
        (payload_kind,) = _PAYLOAD.unpack((yield _PAYLOAD.size))
        if payload_kind not in _PAYLOAD_KINDS:
            raise ProtocolError(f"unknown payload kind {payload_kind}")
        if stream_id:
            raise ProtocolError("app payload on a stream frame")
    dims = []
    for _ in range(ndim):
        dims.append(_DIM.unpack((yield _DIM.size))[0])
    dims = tuple(dims)
    (body_len,) = _BODY_LEN.unpack((yield _BODY_LEN.size))
    if body_len > MAX_BODY_BYTES:
        raise ProtocolError(f"payload too large: {body_len} bytes")
    name = (yield name_len).decode("utf-8") if name_len else ""
    tenant = (yield tenant_len).decode("utf-8") if tenant_len else ""
    body = (yield body_len) if body_len else b""
    try:
        mtype = MessageType(mtype)
    except ValueError:
        raise ProtocolError(f"unknown message type {mtype}") from None
    if mtype in STREAM_TYPES and not stream_id:
        raise ProtocolError(f"{mtype.name} frame without a stream id")
    if mtype in APP_TYPES and not payload_kind:
        raise ProtocolError(f"{mtype.name} frame without a payload kind")

    common = dict(
        type=mtype, name=name,
        trace_id=trace_id, span_id=span_id,
        deadline_ms=deadline_us / 1e3, priority=priority, tenant=tenant,
        stream_id=stream_id, stream_seq=stream_seq,
        stream_final=bool(stream_flags & STREAM_FINAL),
        payload_kind=payload_kind,
    )
    if ndim:
        if payload_kind == KIND_TEXT:
            raise ProtocolError("text payload kind with tensor dims")
        itemsize = 1 if payload_kind == KIND_U8 else 4
        expected = int(np.prod(dims)) * itemsize
        if expected != body_len:
            raise ProtocolError(
                f"tensor dims {dims} imply {expected} bytes, frame has {body_len}"
            )
        # no copy: the frame's body bytes back the tensor directly, so the
        # array is read-only — consumers that need to mutate copy themselves
        dtype = np.uint8 if payload_kind == KIND_U8 else np.float32
        tensor = np.frombuffer(body, dtype=dtype).reshape(dims)
        return Message(tensor=tensor, **common)
    if payload_kind in (KIND_TENSOR, KIND_U8):
        raise ProtocolError("tensor payload kind without tensor dims")
    return Message(text=body.decode("utf-8"), **common)


def recv_message(sock: socket.socket, fault_scope: str = "") -> Message:
    """Receive and parse one frame (blocking).

    ``fault_scope`` names the receiving role for the fault-injection seam
    (e.g. ``"client"``, ``"gateway.client"``, ``"probe"``, or a server's
    service name); it has no effect unless a fault plan is armed.
    """
    if faultsite.active is not None:
        faultsite.active.on_recv(sock, fault_scope)
    parser = frame_parser()
    need = next(parser)
    while True:
        try:
            need = parser.send(_recv_exact(sock, need) if need else b"")
        except StopIteration as done:
            return done.value
