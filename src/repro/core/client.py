"""DjiNN client library and the remote DNN backend for Tonic apps."""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs.metrics import render_exposition
from ..obs.trace import Tracer, get_tracer
from ..tonic.app import DnnBackend
from .protocol import (
    KIND_TENSOR,
    KIND_TEXT,
    KIND_U8,
    Message,
    MessageType,
    ProtocolError,
    recv_message,
    send_message,
)

__all__ = [
    "DjinnClient",
    "DjinnStream",
    "StreamResult",
    "RemoteBackend",
    "DjinnServiceError",
    "DjinnConnectionError",
    "DjinnDeadlineError",
    "DjinnOverloadedError",
    "DjinnStreamError",
    "DjinnSessionLimitError",
]


class DjinnServiceError(RuntimeError):
    """The service answered with an ERROR frame."""


class DjinnDeadlineError(DjinnServiceError):
    """The request's deadline expired before the service ran it.

    A typed rejection (DEADLINE_EXCEEDED frame), not a transport failure:
    the request was received, parsed, and deliberately dropped because its
    latency budget was already spent.  Retrying verbatim is pointless — the
    budget does not reset — so the gateway passes it through un-retried.
    """


class DjinnOverloadedError(DjinnServiceError):
    """The service shed the request under load (OVERLOADED frame).

    Backpressure, not failure: the request never ran.  ``retry_after_ms``
    is the sender's hint for when capacity is expected back (0 = unknown);
    ``reason`` distinguishes tenant throttling from predicted-late shedding.
    """

    def __init__(self, message: str, reason: str = "", retry_after_ms: float = 0.0):
        super().__init__(message)
        self.reason = reason
        self.retry_after_ms = retry_after_ms


class DjinnStreamError(DjinnServiceError):
    """A stream-scoped typed error (stream-carrying ERROR frame).

    The *connection* is still healthy — only the named stream is dead
    (chunk after close, unknown stream id, injected mid-stream drop, a
    chunk the application rejected).  Other streams multiplexed on the
    same connection continue unaffected.
    """

    def __init__(self, message: str, stream_id: int = 0):
        super().__init__(message)
        self.stream_id = stream_id


class DjinnSessionLimitError(DjinnStreamError):
    """The server's stream session table is full (SESSION_LIMIT frame).

    Backpressure on stream *opens*, analogous to OVERLOADED for unary
    requests: nothing about this stream was wrong, the table was simply at
    capacity — retry after closing other streams or against another
    backend.  ``limit`` echoes the server's configured table size.
    """

    def __init__(self, message: str, stream_id: int = 0, limit: int = 0):
        super().__init__(message, stream_id=stream_id)
        self.limit = limit


@dataclass(frozen=True)
class StreamResult:
    """One STREAM_RESULT payload: the decoded JSON plus frame metadata."""

    data: dict = field(default_factory=dict)
    seq: int = 0
    final: bool = False


class DjinnConnectionError(DjinnServiceError, OSError):
    """The request failed at the transport level (connect/send/recv).

    Unlike a plain :class:`DjinnServiceError` (the model rejected the
    request), a connection error is retryable: the same request may succeed
    against another replica, or this one after :meth:`DjinnClient.reconnect`.
    Also an :class:`OSError` so callers that treat the client like a raw
    socket (``except OSError`` around connect/poll loops) keep working.
    """


class DjinnClient:
    """Blocking client for one DjiNN connection.

    One client maps to one TCP connection; requests on it are serialized.
    Load generators open one client per concurrent stream.

    ``tracer`` defaults to the process tracer (disabled unless enabled);
    while it is enabled each :meth:`infer` opens a ``client.infer`` span and
    sends its trace context on the wire (protocol v2), so the server's spans
    join the same trace.  With the tracer disabled, frames are byte-identical
    to the pre-trace protocol.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0,
                 tracer: Optional[Tracer] = None, fault_scope: str = "client"):
        self._host, self._port, self._timeout_s = host, port, timeout_s
        self._tracer = tracer if tracer is not None else get_tracer()
        self._fault_scope = fault_scope
        self._sock: Optional[socket.socket] = self._connect()
        self._closed = False
        self._next_stream_id = 1

    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection((self._host, self._port),
                                            timeout=self._timeout_s)
        except OSError as exc:
            raise DjinnConnectionError(
                f"cannot connect to {self._host}:{self._port}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    # -------------------------------------------------------------- plumbing
    def _teardown(self) -> None:
        """Drop the socket; the next roundtrip dials fresh."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _exchange(self, request: Message) -> Message:
        """Send one frame, receive one frame; transport errors are typed."""
        if self._closed:
            raise RuntimeError("client is closed")
        if self._sock is None:
            # previous roundtrip died on a transport error; reconnect rather
            # than read whatever half-frame the dead stream left behind
            self._sock = self._connect()
        try:
            send_message(self._sock, request)
            return recv_message(self._sock, fault_scope=self._fault_scope)
        except ProtocolError as exc:
            # A malformed frame means the stream is desynced: any bytes still
            # buffered belong to no known frame boundary, so the connection
            # can never be trusted again.  Surface it as retryable transport
            # failure — a fresh connection will resync.
            self._teardown()
            raise DjinnConnectionError(
                f"protocol desync talking to {self._host}:{self._port}: {exc}"
            ) from exc
        except (ConnectionError, socket.timeout, OSError) as exc:
            self._teardown()
            raise DjinnConnectionError(
                f"transport failure talking to {self._host}:{self._port}: {exc}"
            ) from exc

    def exchange(self, request: Message) -> Message:
        """Raw one-request/one-reply exchange with no response typing.

        The gateway's stream proxy forwards stream frames verbatim and
        relays whatever the backend answered — typed interpretation happens
        at the edge client, not mid-path.  Transport failures still raise
        :class:`DjinnConnectionError`.
        """
        return self._exchange(request)

    def roundtrip(self, request: Message) -> Message:
        """One typed unary exchange: send ``request``, type the reply.

        Like :meth:`exchange` but with the unary error mapping applied —
        ERROR, DEADLINE_EXCEEDED, and OVERLOADED frames raise their typed
        exceptions instead of being handed back.  The gateway relays
        ``APP_REQUEST`` frames through this so typed rejections drive its
        retry/pass-through decisions exactly as they do for :meth:`infer`.
        """
        return self._roundtrip(request)

    def _roundtrip(self, request: Message) -> Message:
        response = self._exchange(request)
        if response.type == MessageType.ERROR:
            raise DjinnServiceError(response.text)
        if response.type == MessageType.DEADLINE_EXCEEDED:
            raise DjinnDeadlineError(response.text)
        if response.type == MessageType.OVERLOADED:
            try:
                detail = json.loads(response.text)
            except ValueError:
                detail = {"error": response.text}
            raise DjinnOverloadedError(
                detail.get("error", response.text),
                reason=detail.get("reason", ""),
                retry_after_ms=float(detail.get("retry_after_ms", 0.0)))
        return response

    def _stream_roundtrip(self, request: Message) -> Message:
        """Roundtrip with stream-scoped (rather than unary) error typing."""
        response = self._exchange(request)
        if response.type == MessageType.SESSION_LIMIT:
            try:
                detail = json.loads(response.text)
            except ValueError:
                detail = {"error": response.text}
            raise DjinnSessionLimitError(
                detail.get("error", response.text),
                stream_id=response.stream_id,
                limit=int(detail.get("limit", 0)))
        if response.type == MessageType.ERROR:
            if response.stream_id:
                raise DjinnStreamError(response.text,
                                       stream_id=response.stream_id)
            raise DjinnServiceError(response.text)
        return response

    def interrupt(self) -> None:
        """Wake a roundtrip blocked in recv on another thread.

        ``close()`` only drops the fd — a thread already parked inside
        ``recv`` stays parked.  ``shutdown`` forces that recv to return
        end-of-stream, so the blocked roundtrip unwinds with a
        :class:`DjinnConnectionError`.  Used by the gateway's hedged
        requests to cancel the losing arm first-wins.
        """
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def reconnect(self) -> "DjinnClient":
        """Drop the current connection (if any) and dial the server again."""
        self._teardown()
        self._sock = self._connect()
        self._closed = False
        return self

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._teardown()

    @property
    def address(self) -> Tuple[str, int]:
        return (self._host, self._port)

    def __enter__(self) -> "DjinnClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- requests
    def infer(self, model: str, inputs: np.ndarray,
              deadline_ms: float = 0.0, priority: int = 0,
              tenant: str = "") -> np.ndarray:
        """Run a batch through ``model`` on the service.

        ``deadline_ms`` is the remaining latency budget (0 = none): a server
        that cannot run the request within it answers with a typed
        DEADLINE_EXCEEDED frame (:class:`DjinnDeadlineError`) instead of
        queueing it to die.  ``priority`` (higher first) and ``tenant`` feed
        the server-side scheduler and the gateway's admission control.  With
        all three at their defaults the request is byte-identical to a
        pre-QoS client's.
        """
        inputs = np.ascontiguousarray(inputs, dtype=np.float32)
        tracer = self._tracer
        if tracer.enabled:
            with tracer.span("client.infer", category="client", model=model,
                             backend=f"{self._host}:{self._port}") as span:
                response = self._roundtrip(
                    Message(MessageType.INFER_REQUEST, name=model, tensor=inputs,
                            trace_id=span.trace_id, span_id=span.span_id,
                            deadline_ms=deadline_ms, priority=priority,
                            tenant=tenant)
                )
        else:
            response = self._roundtrip(
                Message(MessageType.INFER_REQUEST, name=model, tensor=inputs,
                        deadline_ms=deadline_ms, priority=priority,
                        tenant=tenant)
            )
        if response.type != MessageType.INFER_RESPONSE or response.tensor is None:
            raise DjinnServiceError(f"unexpected response type {response.type}")
        return response.tensor

    @staticmethod
    def app_message(app: str, raw, deadline_ms: float = 0.0,
                    priority: int = 0, tenant: str = "",
                    trace_id: int = 0, span_id: int = 0) -> Message:
        """Build the v5 APP_REQUEST frame for a raw application payload.

        The payload kind follows the python type: ``str`` ships as UTF-8
        text (NLP queries), a ``uint8`` array as raw bytes (pixel/sample
        bytes at a quarter of the float wire size — the server rescales to
        [0, 1]), anything else as a float32 tensor.
        """
        kwargs = dict(deadline_ms=deadline_ms, priority=priority,
                      tenant=tenant, trace_id=trace_id, span_id=span_id)
        if isinstance(raw, str):
            return Message(MessageType.APP_REQUEST, name=app, text=raw,
                           payload_kind=KIND_TEXT, **kwargs)
        arr = np.asarray(raw)
        if arr.dtype == np.uint8:
            return Message(MessageType.APP_REQUEST, name=app,
                           tensor=np.ascontiguousarray(arr),
                           payload_kind=KIND_U8, **kwargs)
        return Message(MessageType.APP_REQUEST, name=app,
                       tensor=np.ascontiguousarray(arr, dtype=np.float32),
                       payload_kind=KIND_TENSOR, **kwargs)

    def infer_app(self, app: str, raw, deadline_ms: float = 0.0,
                  priority: int = 0, tenant: str = ""):
        """Run one raw application query server-side (protocol v5).

        ``raw`` is the *unpreprocessed* payload — an image (float array in
        [0, 1] or uint8 bytes), audio samples, or query text — and the
        server runs the whole Tonic preprocess -> DNN -> postprocess
        pipeline, returning the application's JSON answer (labels,
        identities, a transcript, tags) instead of a raw tensor.  QoS
        fields behave as in :meth:`infer`.
        """
        tracer = self._tracer
        if tracer.enabled:
            with tracer.span("client.app", category="client", model=app,
                             backend=f"{self._host}:{self._port}") as span:
                response = self._roundtrip(self.app_message(
                    app, raw, deadline_ms, priority, tenant,
                    trace_id=span.trace_id, span_id=span.span_id))
        else:
            response = self._roundtrip(self.app_message(
                app, raw, deadline_ms, priority, tenant))
        if response.type != MessageType.APP_RESPONSE:
            raise DjinnServiceError(f"unexpected response type {response.type}")
        return json.loads(response.text) if response.text else None

    def list_models(self) -> List[str]:
        response = self._roundtrip(Message(MessageType.LIST_REQUEST))
        return [name for name in response.text.split("\n") if name]

    def stats(self) -> Dict[str, Dict[str, float]]:
        response = self._roundtrip(Message(MessageType.STATS_REQUEST))
        return json.loads(response.text) if response.text else {}

    def metrics(self) -> dict:
        """The server's metrics-registry dump (see ``repro.obs.metrics``)."""
        response = self._roundtrip(Message(MessageType.METRICS_REQUEST))
        if response.type != MessageType.METRICS_RESPONSE:
            raise DjinnServiceError(f"unexpected response type {response.type}")
        return json.loads(response.text) if response.text else {"metrics": {}}

    def metrics_text(self) -> str:
        """The server's metrics as Prometheus-style text exposition."""
        return render_exposition(self.metrics())

    def shutdown_server(self) -> None:
        """Ask the server to stop (used by examples; tests stop it directly)."""
        try:
            self._roundtrip(Message(MessageType.SHUTDOWN))
        except (DjinnConnectionError, ConnectionError, OSError):
            pass
        self.close()

    # ------------------------------------------------------------- streaming
    def open_stream(self, model: str, stream_id: Optional[int] = None,
                    priority: int = 0, tenant: str = "") -> "DjinnStream":
        """Open a streaming session for ``model`` (protocol v4).

        Stream ids are per-connection; by default the client allocates the
        next unused one.  Raises :class:`DjinnSessionLimitError` when the
        server's session table is full, :class:`DjinnServiceError` for an
        unknown model.  Several streams may be open on one client and
        interleaved freely — every operation is one ordered roundtrip.
        """
        if stream_id is None:
            stream_id = self._next_stream_id
        self._next_stream_id = max(self._next_stream_id, stream_id) + 1
        open_msg = Message(MessageType.STREAM_OPEN, name=model,
                           stream_id=stream_id, priority=priority,
                           tenant=tenant)
        tracer = self._tracer
        if tracer.enabled:
            with tracer.span("client.stream", category="client", model=model,
                             backend=f"{self._host}:{self._port}") as span:
                open_msg.trace_id = span.trace_id
                open_msg.span_id = span.span_id
                ack = self._stream_roundtrip(open_msg)
        else:
            ack = self._stream_roundtrip(open_msg)
        if ack.type != MessageType.STREAM_OPEN or ack.stream_id != stream_id:
            raise DjinnServiceError(
                f"unexpected stream-open reply {ack.type} "
                f"(stream {ack.stream_id})")
        return DjinnStream(self, model, stream_id,
                           trace_id=open_msg.trace_id,
                           span_id=open_msg.span_id)


class DjinnStream:
    """One open stream on a :class:`DjinnClient` connection.

    Every :meth:`send` carries one chunk and returns the server's partial
    :class:`StreamResult` for it; :meth:`close` ends the stream and returns
    the final result.  When the server endpoints the stream early (trailing
    silence on an ASR stream), the partial returned by ``send`` is already
    final — ``close`` then just hands back that cached result instead of
    touching the wire.  Deliberately *no* local liveness guard beyond that:
    a chunk sent after close reaches the server and comes back as the typed
    :class:`DjinnStreamError` the lifecycle tests pin down.
    """

    def __init__(self, client: DjinnClient, model: str, stream_id: int,
                 trace_id: int = 0, span_id: int = 0):
        self.client = client
        self.model = model
        self.stream_id = stream_id
        self._trace_id = trace_id
        self._span_id = span_id
        self._seq = 0
        self._final: Optional[StreamResult] = None

    @property
    def finalized(self) -> bool:
        return self._final is not None

    def _result(self, response: Message) -> StreamResult:
        if (response.type != MessageType.STREAM_RESULT
                or response.stream_id != self.stream_id):
            raise DjinnServiceError(
                f"unexpected stream reply {response.type} "
                f"(stream {response.stream_id})")
        try:
            data = json.loads(response.text) if response.text else {}
        except ValueError:
            data = {"raw": response.text}
        result = StreamResult(data=data, seq=response.stream_seq,
                              final=response.stream_final)
        if result.final:
            self._final = result
        return result

    def send(self, chunk: np.ndarray) -> StreamResult:
        """Send one chunk; returns the partial (or endpointed-final) result."""
        chunk = np.ascontiguousarray(chunk, dtype=np.float32)
        self._seq += 1
        response = self.client._stream_roundtrip(
            Message(MessageType.STREAM_CHUNK, name=self.model, tensor=chunk,
                    stream_id=self.stream_id, stream_seq=self._seq,
                    trace_id=self._trace_id, span_id=self._span_id))
        return self._result(response)

    def close(self) -> StreamResult:
        """End the stream; returns the final result."""
        if self._final is not None:
            return self._final
        self._seq += 1
        response = self.client._stream_roundtrip(
            Message(MessageType.STREAM_CLOSE, name=self.model,
                    stream_id=self.stream_id, stream_seq=self._seq,
                    trace_id=self._trace_id, span_id=self._span_id))
        return self._result(response)

    def __enter__(self) -> "DjinnStream":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None and not self.finalized:
            self.close()


class RemoteBackend(DnnBackend):
    """A :class:`TonicApp` backend that calls a live DjiNN service.

    Optional QoS defaults (``deadline_ms``/``priority``/``tenant``) are
    stamped on every request the backend issues — the way an application
    front-end would tag all of its traffic with one SLO class.
    """

    def __init__(self, client: DjinnClient, deadline_ms: float = 0.0,
                 priority: int = 0, tenant: str = ""):
        self.client = client
        self.deadline_ms = deadline_ms
        self.priority = priority
        self.tenant = tenant

    def infer(self, model: str, inputs: np.ndarray) -> np.ndarray:
        return self.client.infer(model, inputs,
                                 deadline_ms=self.deadline_ms,
                                 priority=self.priority, tenant=self.tenant)
