"""DjiNN client library and the remote DNN backend for Tonic apps."""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Tuple

import numpy as np

from ..tonic.app import DnnBackend
from .protocol import Message, MessageType, recv_message, send_message

__all__ = ["DjinnClient", "RemoteBackend", "DjinnServiceError"]


class DjinnServiceError(RuntimeError):
    """The service answered with an ERROR frame."""


class DjinnClient:
    """Blocking client for one DjiNN connection.

    One client maps to one TCP connection; requests on it are serialized.
    Load generators open one client per concurrent stream.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._closed = False

    # -------------------------------------------------------------- plumbing
    def _roundtrip(self, request: Message) -> Message:
        if self._closed:
            raise RuntimeError("client is closed")
        send_message(self._sock, request)
        response = recv_message(self._sock)
        if response.type == MessageType.ERROR:
            raise DjinnServiceError(response.text)
        return response

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "DjinnClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- requests
    def infer(self, model: str, inputs: np.ndarray) -> np.ndarray:
        """Run a batch through ``model`` on the service."""
        inputs = np.ascontiguousarray(inputs, dtype=np.float32)
        response = self._roundtrip(
            Message(MessageType.INFER_REQUEST, name=model, tensor=inputs)
        )
        if response.type != MessageType.INFER_RESPONSE or response.tensor is None:
            raise DjinnServiceError(f"unexpected response type {response.type}")
        return response.tensor

    def list_models(self) -> List[str]:
        response = self._roundtrip(Message(MessageType.LIST_REQUEST))
        return [name for name in response.text.split("\n") if name]

    def stats(self) -> Dict[str, Dict[str, float]]:
        response = self._roundtrip(Message(MessageType.STATS_REQUEST))
        return json.loads(response.text) if response.text else {}

    def shutdown_server(self) -> None:
        """Ask the server to stop (used by examples; tests stop it directly)."""
        try:
            self._roundtrip(Message(MessageType.SHUTDOWN))
        except (ConnectionError, OSError):
            pass
        self.close()


class RemoteBackend(DnnBackend):
    """A :class:`TonicApp` backend that calls a live DjiNN service."""

    def __init__(self, client: DjinnClient):
        self.client = client

    def infer(self, model: str, inputs: np.ndarray) -> np.ndarray:
        return self.client.infer(model, inputs)
