"""Service-side instrumentation: per-model query counts and latency stats."""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List

import numpy as np

__all__ = ["ServiceStats"]


class ServiceStats:
    """Thread-safe per-model QPS / latency accounting.

    Keeps a bounded window of recent latencies (and their completion
    timestamps) per model, enough for the mean, the tail percentiles, and
    the windowed throughput the evaluation plots.
    """

    def __init__(self, window: int = 10_000):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._window = window
        self._lock = threading.Lock()
        self._latencies: Dict[str, deque] = {}
        self._stamps: Dict[str, deque] = {}
        self._counts: Dict[str, int] = {}
        self._inputs: Dict[str, int] = {}

    def record(self, model: str, latency_s: float, inputs: int = 1) -> None:
        now = time.monotonic()
        with self._lock:
            if model not in self._latencies:
                self._latencies[model] = deque(maxlen=self._window)
                self._stamps[model] = deque(maxlen=self._window)
                self._counts[model] = 0
                self._inputs[model] = 0
            self._latencies[model].append(latency_s)
            self._stamps[model].append(now)
            self._counts[model] += 1
            self._inputs[model] += inputs

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-model summary: count, inputs, mean/p50/p95/p99 latency (ms),
        and ``qps`` — requests in the window over the window's wall-clock
        span (0.0 until the window spans a measurable interval)."""
        with self._lock:
            out: Dict[str, Dict[str, float]] = {}
            for model, window in self._latencies.items():
                lat = np.asarray(window, dtype=np.float64) * 1e3
                stamps = self._stamps[model]
                span = stamps[-1] - stamps[0] if len(stamps) > 1 else 0.0
                out[model] = {
                    "requests": float(self._counts[model]),
                    "inputs": float(self._inputs[model]),
                    "mean_ms": float(lat.mean()),
                    "p50_ms": float(np.percentile(lat, 50)),
                    "p95_ms": float(np.percentile(lat, 95)),
                    "p99_ms": float(np.percentile(lat, 99)),
                    "qps": float(len(stamps) / span) if span > 0 else 0.0,
                }
            return out

    def reset(self) -> None:
        """Drop all windows and counters (e.g. between benchmark phases)."""
        with self._lock:
            self._latencies.clear()
            self._stamps.clear()
            self._counts.clear()
            self._inputs.clear()

    def requests(self, model: str) -> int:
        with self._lock:
            return self._counts.get(model, 0)
