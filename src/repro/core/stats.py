"""Service-side instrumentation: per-model query counts and latency stats.

Since the observability PR, :class:`ServiceStats` is a thin per-model view
over :mod:`repro.obs.metrics` — requests/inputs are Counters and latency is
one :class:`~repro.obs.metrics.Histogram` family with a bounded raw window
for exact percentiles — so there is exactly one latency-accounting path,
and the same numbers surface identically through ``STATS_REQUEST`` (JSON
summaries) and ``METRICS_REQUEST`` (Prometheus-style exposition).
"""

from __future__ import annotations

import time
from collections import deque
from threading import Lock
from typing import Callable, Dict, Optional

from ..obs.metrics import MetricsRegistry

__all__ = ["ServiceStats"]


class ServiceStats:
    """Thread-safe per-model QPS / latency accounting.

    Parameters
    ----------
    window:
        Size of the raw-latency window per model (percentiles and the
        windowed throughput are computed over it).
    clock:
        Monotonic time source for window timestamps; injected so tests can
        drive time by hand.  The whole serving stack standardizes on
        ``time.monotonic`` (one clock kind end to end).
    registry:
        Metrics registry to account into; each server passes its own so
        replicas don't collide.  ``None`` creates a private registry.
    prefix:
        Metric-name prefix — ``djinn`` for backends, ``gateway`` for the
        fleet front-end — keeping the two latency populations separate when
        a gateway merges backend registries into its own.
    exemplars:
        Tail exemplars kept per model on the latency histogram: the trace
        IDs of the slowest requests, resolvable by ``djinn slow``.
    """

    def __init__(self, window: int = 10_000,
                 clock: Callable[[], float] = time.monotonic,
                 registry: Optional[MetricsRegistry] = None,
                 prefix: str = "djinn", exemplars: int = 8):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._window = window
        self._clock = clock
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests = self.registry.counter(
            f"{prefix}_requests_total", "Requests served, per model.", ("model",))
        self._inputs = self.registry.counter(
            f"{prefix}_inputs_total", "Individual inputs processed, per model.",
            ("model",))
        self._latency = self.registry.histogram(
            f"{prefix}_request_latency_seconds",
            "End-to-end request service latency, per model.", ("model",),
            window=window, exemplars=exemplars)
        self._lock = Lock()
        self._stamps: Dict[str, deque] = {}

    def record(self, model: str, latency_s: float, inputs: int = 1,
               exemplar: Optional[str] = None) -> None:
        now = self._clock()
        self._requests.labels(model=model).inc()
        self._inputs.labels(model=model).inc(inputs)
        self._latency.labels(model=model).observe(latency_s, exemplar=exemplar)
        with self._lock:
            stamps = self._stamps.get(model)
            if stamps is None:
                stamps = self._stamps[model] = deque(maxlen=self._window)
            stamps.append(now)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-model summary: count, inputs, mean/p50/p95/p99/max latency
        (ms), the number of samples currently in the percentile window, and
        ``qps`` — requests in the window over the window's wall-clock span
        (0.0 until the window spans a measurable interval)."""
        out: Dict[str, Dict[str, float]] = {}
        for (model,), hist in self._latency.children():
            values = hist.window_values()
            if not values:
                continue
            with self._lock:
                stamps = self._stamps.get(model, ())
                span = stamps[-1] - stamps[0] if len(stamps) > 1 else 0.0
                n_stamps = len(stamps)
            out[model] = {
                "requests": float(self._requests.labels(model=model).value),
                "inputs": float(self._inputs.labels(model=model).value),
                "mean_ms": float(sum(values) / len(values)) * 1e3,
                "p50_ms": hist.percentile(50) * 1e3,
                "p95_ms": hist.percentile(95) * 1e3,
                "p99_ms": hist.percentile(99) * 1e3,
                "max_ms": hist.max * 1e3,
                "window": float(len(values)),
                "qps": float(n_stamps / span) if span > 0 else 0.0,
            }
        return out

    def reset(self) -> None:
        """Drop all windows and counters (e.g. between benchmark phases)."""
        self._requests.clear()
        self._inputs.clear()
        self._latency.clear()
        with self._lock:
            self._stamps.clear()

    def requests(self, model: str) -> int:
        for (name,), counter in self._requests.children():
            if name == model:
                return int(counter.value)
        return 0
