"""Service-side instrumentation: per-model query counts and latency stats."""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List

import numpy as np

__all__ = ["ServiceStats"]


class ServiceStats:
    """Thread-safe per-model QPS / latency accounting.

    Keeps a bounded window of recent latencies per model, enough for the
    mean and tail percentiles the evaluation plots.
    """

    def __init__(self, window: int = 10_000):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._window = window
        self._lock = threading.Lock()
        self._latencies: Dict[str, deque] = {}
        self._counts: Dict[str, int] = {}
        self._inputs: Dict[str, int] = {}

    def record(self, model: str, latency_s: float, inputs: int = 1) -> None:
        with self._lock:
            if model not in self._latencies:
                self._latencies[model] = deque(maxlen=self._window)
                self._counts[model] = 0
                self._inputs[model] = 0
            self._latencies[model].append(latency_s)
            self._counts[model] += 1
            self._inputs[model] += inputs

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-model summary: count, inputs, mean/p50/p99 latency (ms)."""
        with self._lock:
            out: Dict[str, Dict[str, float]] = {}
            for model, window in self._latencies.items():
                lat = np.asarray(window, dtype=np.float64) * 1e3
                out[model] = {
                    "requests": float(self._counts[model]),
                    "inputs": float(self._inputs[model]),
                    "mean_ms": float(lat.mean()),
                    "p50_ms": float(np.percentile(lat, 50)),
                    "p99_ms": float(np.percentile(lat, 99)),
                }
            return out

    def requests(self, model: str) -> int:
        with self._lock:
            return self._counts.get(model, 0)
