"""The DjiNN server: a standalone, threaded TCP inference service.

Paper §3.1: "We design the DjiNN service to accept requests using a custom
socket protocol over TCP/IP ...  For each incoming request, DjiNN spawns a
worker thread, executes the DNN computation, and sends the prediction back
to the application."

Each accepted connection gets a worker thread; requests on a connection are
served in order (clients open several connections for concurrency, as the
paper's load generator does).  Models live in a shared read-only
:class:`ModelRegistry`; an optional :class:`BatchingExecutor` coalesces
concurrent requests per model (§5.1).

:class:`TcpServiceBase` holds the protocol-speaking TCP skeleton (accept
loop, per-connection workers, hard-stop connection teardown); it is shared
with the gateway front-end in :mod:`repro.gateway.server`.
"""

from __future__ import annotations

import json
import logging
import socket
import threading
import time
from contextlib import nullcontext
from typing import Callable, Optional, Tuple

import numpy as np

from ..obs.metrics import MetricsRegistry, merge_dumps
from ..obs.profile import LayerTimer
from ..obs.slo import BurnRateMonitor
from ..obs.trace import Tracer, get_tracer
from ..sched import DeadlineExceededError
from . import faultsite
from .batching import BatchingExecutor, BatchPolicy
from .procpool import parse_workers
from .protocol import Message, MessageType, ProtocolError, recv_message, send_message
from .registry import ModelRegistry
from .session import SessionLimitError, SessionManager, TensorStreamApp
from .stats import ServiceStats

__all__ = ["TcpServiceBase", "DjinnServer"]


class TcpServiceBase:
    """Threaded TCP server skeleton for the DjiNN wire protocol.

    Subclasses implement :meth:`_handle` (dispatch one request; return
    ``False`` to drop the connection) and may override :meth:`_on_start` /
    :meth:`_on_stop` for extra lifecycle work.  ``stop()`` hard-closes live
    connections so blocked workers unwind and clients see a transport error
    immediately — from a gateway's point of view this is exactly what a
    killed instance looks like.
    """

    #: thread-name prefix for accept/worker threads
    service_name = "djinn"

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._host, self._port = host, port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._workers = []
        self._conns = []
        self._conns_lock = threading.Lock()
        self._running = threading.Event()

    # ------------------------------------------------------------ lifecycle
    def start(self):
        if self._listener is not None:
            raise RuntimeError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(64)
        self._listener = listener
        self._running.set()
        self._on_start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True,
            name=f"{self.service_name}-accept",
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        if not self._running.is_set():
            return
        self._running.clear()
        if self._listener is not None:
            # shutdown() wakes a thread blocked in accept(); close() alone
            # leaves the kernel socket accepting until that thread returns,
            # so a "stopped" server could still take one more connection.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self._on_stop()

    def _on_start(self) -> None:
        """Subclass hook, runs after the listener binds."""

    def _on_stop(self) -> None:
        """Subclass hook, runs after connections are torn down."""

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("server not started")
        return self._listener.getsockname()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------- serving
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            if faultsite.active is not None and faultsite.active.on_accept(self.service_name):
                # injected refusal: the peer's first read sees a dead socket
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            with self._conns_lock:
                self._conns.append(conn)
            worker = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True,
                name=f"{self.service_name}-worker",
            )
            self._workers.append(worker)
            worker.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                while self._running.is_set():
                    try:
                        request = recv_message(conn, fault_scope=self.service_name)
                    except (ConnectionError, OSError):
                        return
                    except ProtocolError as exc:
                        self._safe_send(conn, Message(MessageType.ERROR, text=str(exc)))
                        return
                    try:
                        if not self._handle(conn, request):
                            return
                    except (ConnectionError, OSError):
                        # the handler lost its transport mid-request (e.g. a
                        # backend crash surfaced through the batching
                        # executor); drop the connection so the peer fails
                        # fast instead of waiting on a wedged stream
                        return
        finally:
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)
            self._on_disconnect(conn)

    def _handle(self, conn: socket.socket, request: Message) -> bool:
        """Dispatch one request; returns False to drop the connection."""
        raise NotImplementedError

    def _on_disconnect(self, conn: socket.socket) -> None:
        """Subclass hook: a connection's worker has unwound (any cause).

        Runs exactly once per served connection, after the socket leaves
        the live set — the place to release any per-connection state
        (e.g. stream sessions) so a peer that vanishes mid-stream cannot
        leak server memory.
        """

    @staticmethod
    def _safe_send(conn: socket.socket, message: Message) -> None:
        try:
            send_message(conn, message)
        except OSError:
            pass  # client went away; nothing to do


class DjinnServer(TcpServiceBase):
    """DNN-as-a-service over TCP.

    Parameters
    ----------
    registry:
        Models to serve (materialized, shared read-only across workers).
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    batching:
        Optional dynamic batching policy; ``None`` executes each request's
        inputs as its own forward pass.
    service_floor_s:
        Minimum wall-clock service time per executed forward pass.  The
        remainder (floor minus compute) is slept with the GIL released, so
        it paces this instance like a backend whose latency is dominated by
        an attached device (the paper's one-GPU-per-instance setup, §5.2)
        rather than by host CPU.  ``0.0`` (default) disables pacing.
    clock:
        Monotonic time source used for every latency measurement and window
        stamp on this server (injected for testability; the stack
        standardizes on ``time.monotonic``).
    tracer:
        Span collector for requests that arrive with trace context;
        defaults to the process tracer, which is disabled until something
        (e.g. ``djinn trace``) enables it.
    profile_layers:
        When True *and* a request is traced, time each network layer of its
        forward pass and attach ``layer.*`` spans (the Fig-4 breakdown).
        Off by default; untraced/unprofiled requests run the original loop.
    workers:
        Optional process-pool spec (``"proc:N"`` or an int N).  When set,
        forwards execute in N worker *processes* over shared-memory weights
        (:class:`repro.core.procpool.ProcPoolExecutor`): with ``batching``
        the pool runs each assembled batch, without it each request goes
        straight to a pool slot.  ``None``/``0`` keeps the threaded paths.
    worker_fault_plan:
        Optional :class:`repro.faults.FaultPlan` re-armed inside each pool
        worker with a worker-index-derived seed (chaos testing; the parent
        process uses the normal ``faultsite`` arming instead).
    sched:
        Optional scheduling policy (``"fixed"``, ``"adaptive"``, or a
        :class:`repro.sched.SchedPolicy`).  Requires ``batching``; arms the
        executor's EDF/priority queues, online batch sizing, and
        pre-forward expiry of deadlined requests.  ``None`` (default) keeps
        the original fixed batching path.  Independently of ``sched``,
        requests arriving with an already-spent deadline budget are
        answered with a typed DEADLINE_EXCEEDED frame on every serve path.
    stream_apps:
        Optional dict mapping model name to a streaming-app factory
        ``factory(net, dnn) -> app`` (``app`` implements ``feed``/
        ``finish``, see :class:`repro.core.session.TensorStreamApp`).
        Models without an entry stream through the generic tensor app;
        a model named ``"asr"`` whose shape fits the acoustic pipeline
        gets the incremental ASR decoder
        (:class:`repro.tonic.asr.AsrStream`) automatically.
    session_limit / session_idle_s:
        Bounds on the stream session table: at most ``session_limit``
        concurrently open streams (opens past it are rejected with a typed
        SESSION_LIMIT frame), and a session idle longer than
        ``session_idle_s`` is reaped in the background.
    apps:
        Optional dict mapping model name to the :class:`repro.tonic.TonicApp`
        whose pre/postprocess kernels serve that model's v5 ``APP_REQUEST``
        traffic (raw payload in, application answer out).  Models without
        an entry get a default app when their name and shape match one of
        the stateless Tonic apps (``imc``, ``dig``, ``face``, ``asr`` — see
        :func:`repro.tonic.serve.build_default_apps`); the NLP taggers
        carry trained featurizer state and must be passed explicitly.
    layer_cache:
        Optional :class:`repro.nn.engine.LayerCacheConfig` arming the
        engine-level activation cache: each batching worker's plan serves
        prefix → per-row digest probe → partial-batch suffix, memoizing
        suffix outputs for duplicate (or, with a tolerance, near-duplicate)
        inputs.  Requires ``batching``; ``None`` (default) keeps the
        forward path bit-for-bit unchanged.
    """

    #: pool batch envelope when serving without a batching policy — single
    #: requests larger than this fall back to an in-parent legacy forward
    DEFAULT_POOL_BATCH = 32

    def __init__(
        self,
        registry: ModelRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        batching: Optional[BatchPolicy] = None,
        service_floor_s: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[Tracer] = None,
        profile_layers: bool = False,
        workers=None,
        worker_fault_plan=None,
        sched=None,
        stream_apps=None,
        session_limit: int = 64,
        session_idle_s: float = 30.0,
        apps=None,
        layer_cache=None,
    ):
        super().__init__(host=host, port=port)
        if service_floor_s < 0:
            raise ValueError(f"service_floor_s must be >= 0, got {service_floor_s}")
        if sched is not None and not batching:
            raise ValueError("sched requires a batching policy "
                             "(the scheduler drives the batch queues)")
        if layer_cache is not None and not batching:
            raise ValueError("layer_cache requires a batching policy "
                             "(probes run at batch assembly)")
        self.registry = registry
        self._clock = clock
        self.tracer = tracer if tracer is not None else get_tracer()
        self.profile_layers = profile_layers
        self.metrics = MetricsRegistry()
        self.stats = ServiceStats(clock=clock, registry=self.metrics)
        self._errors = self.metrics.counter(
            "djinn_errors_total", "Requests rejected, per model and reason.",
            ("model", "reason"))
        self._sched_expired = self.metrics.counter(
            "djinn_sched_expired_total",
            "Requests rejected in queue: deadline expired before forward.",
            ("model",))
        self._slo = self.metrics.counter(
            "djinn_slo_requests_total",
            "Deadline-carrying requests, per model and outcome "
            "(met|missed|expired).", ("model", "outcome"))
        self._stage_seconds = self.metrics.counter(
            "djinn_stage_seconds_total",
            "Request-weighted seconds spent per serving stage, per model.",
            ("model", "stage"))
        self._streams_total = self.metrics.counter(
            "djinn_streams_total",
            "Streams opened, per model and outcome "
            "(completed|aborted|rejected).", ("model", "outcome"))
        self._stream_aborted = self.metrics.counter(
            "djinn_stream_aborted_total",
            "Streams torn down before a final result, per model and reason "
            "(disconnect|idle|drop|error).", ("model", "reason"))
        self._stream_chunks = self.metrics.counter(
            "djinn_stream_chunks_total",
            "Stream chunks accepted, per model.", ("model",))
        self._stream_sessions = self.metrics.gauge(
            "djinn_stream_sessions", "Currently open stream sessions.")
        self._stream_apps = dict(stream_apps) if stream_apps else {}
        #: explicit app table for v5 APP_REQUEST serving; defaults are
        #: merged in lazily on first use (models may register after init)
        self._apps = dict(apps) if apps else {}
        self._apps_built = False
        self.sessions = SessionManager(
            limit=session_limit, idle_timeout_s=session_idle_s,
            clock=clock, on_evict=self._session_evicted)
        #: multi-window error-budget burn over deadline attainment; firing /
        #: resolved transitions land in the structured log
        self.slo_monitor = BurnRateMonitor(
            clock=clock, logger=logging.getLogger("repro.core.server"))
        self._floor_s = service_floor_s
        self._pool = None
        worker_count = parse_workers(workers)
        if worker_count:
            from .procpool import ProcPoolExecutor

            self._pool = ProcPoolExecutor(
                registry, workers=worker_count,
                max_batch=(batching.max_batch if batching
                           else self.DEFAULT_POOL_BATCH),
                metrics=self.metrics, tracer=self.tracer, clock=clock,
                fault_plan=worker_fault_plan,
            )
        if batching:
            self._executor = BatchingExecutor(
                registry, batching, service_floor_s=service_floor_s,
                clock=clock, tracer=self.tracer,
                metrics=self.metrics, profile_layers=profile_layers,
                pool=self._pool, sched=sched, layer_cache=layer_cache)
        else:
            self._executor = self._pool  # may be None: bare threaded serving

    def _on_start(self) -> None:
        self.sessions.start()

    def _on_stop(self) -> None:
        self.sessions.stop()
        if self._executor is not None and self._executor is not self._pool:
            self._executor.close()
        if self._pool is not None:
            self._pool.close()

    def _metrics_dump(self) -> dict:
        """This server's registry dump, merged with pool-worker dumps."""
        dump = self.metrics.dump()
        if self._pool is not None:
            worker_dumps = self._pool.worker_metric_dumps()
            if worker_dumps:
                dump = merge_dumps([dump] + worker_dumps)
        return dump

    # ------------------------------------------------------------- serving
    def _handle(self, conn: socket.socket, request: Message) -> bool:
        if request.type == MessageType.INFER_REQUEST:
            self._handle_infer(conn, request)
            return True
        if request.type == MessageType.APP_REQUEST:
            self._handle_app(conn, request)
            return True
        if request.type == MessageType.LIST_REQUEST:
            self._safe_send(
                conn,
                Message(MessageType.LIST_RESPONSE, text="\n".join(self.registry.names())),
            )
            return True
        if request.type == MessageType.STATS_REQUEST:
            self._safe_send(
                conn,
                Message(MessageType.STATS_RESPONSE, text=json.dumps(self.stats.snapshot())),
            )
            return True
        if request.type == MessageType.METRICS_REQUEST:
            self._safe_send(
                conn,
                Message(MessageType.METRICS_RESPONSE,
                        text=json.dumps(self._metrics_dump())),
            )
            return True
        if request.type == MessageType.STREAM_OPEN:
            self._handle_stream_open(conn, request)
            return True
        if request.type == MessageType.STREAM_CHUNK:
            self._handle_stream_chunk(conn, request)
            return True
        if request.type == MessageType.STREAM_CLOSE:
            self._handle_stream_close(conn, request)
            return True
        if request.type == MessageType.SHUTDOWN:
            self._safe_send(conn, Message(MessageType.SHUTDOWN))
            threading.Thread(target=self.stop, daemon=True).start()
            return False
        self._safe_send(
            conn, Message(MessageType.ERROR, text=f"unexpected message type {request.type}")
        )
        return True

    def _handle_infer(self, conn: socket.socket, request: Message) -> None:
        clock = self._clock
        tracer = self.tracer
        traced = bool(request.trace_id) and tracer.enabled
        span_cm = (
            tracer.span("backend.infer", category="backend",
                        trace_id=request.trace_id, parent_id=request.span_id,
                        model=request.name)
            if traced else nullcontext(None)
        )
        with span_cm as span:
            start = clock()
            lease = None
            # re-anchor the wire's *remaining budget* on this host's clock;
            # the absolute deadline then flows through queueing untouched
            deadline_s = (start + request.deadline_ms / 1e3
                          if request.deadline_ms else None)
            if traced and request.has_qos:
                span.set(deadline_ms=request.deadline_ms,
                         priority=request.priority, tenant=request.tenant)
            try:
                if request.tensor is None:
                    raise ValueError("inference request carries no tensor")
                net = self.registry.get(request.name)
                inputs = request.tensor
                if inputs.shape[1:] != net.input_shape:
                    raise ValueError(
                        f"model {request.name!r} expects inputs of shape "
                        f"(n, {', '.join(map(str, net.input_shape))}), got {inputs.shape}"
                    )
                if deadline_s is not None and clock() >= deadline_s:
                    # dead on arrival: reject on every serve path (the
                    # scheduler handles in-queue expiry; this covers the
                    # bare and pool paths, and budgets spent in transit)
                    now = clock()
                    self._sched_expired.labels(model=request.name or "?").inc()
                    if traced:
                        tracer.add_span(
                            "sched.expire", start, now, span.trace_id,
                            span.span_id, category="sched",
                            model=request.name,
                            late_ms=round((now - deadline_s) * 1e3, 3))
                    raise DeadlineExceededError(request.name, now - deadline_s)
                use_executor = self._executor is not None
                if (use_executor and self._executor is self._pool
                        and len(inputs) > self._pool.max_batch):
                    # a single request larger than the pool slot envelope:
                    # serve it in-parent on the legacy path rather than fail
                    use_executor = False
                pre_end = clock()
                self._stage_seconds.labels(
                    model=request.name,
                    stage="preprocess").inc(pre_end - start)
                if traced:
                    tracer.add_span("preprocess", start, pre_end,
                                    span.trace_id, span.span_id,
                                    category="backend", model=request.name)
                if use_executor:
                    # zero-copy: serialize the response straight from the
                    # batch output (a plan's output slab on the planned
                    # path, a shm response slot on the proc-pool path),
                    # releasing the lease only after the send
                    kwargs = {}
                    if request.has_qos and self._executor is not self._pool:
                        # the bare pool has no queue to schedule; its
                        # deadline handling is the dead-on-arrival check
                        kwargs["qos"] = (
                            deadline_s if deadline_s is not None
                            else float("inf"),
                            request.priority, request.tenant)
                    lease = self._executor.submit_lease(
                        request.name, inputs,
                        trace=(span.trace_id, span.span_id) if traced else None,
                        **kwargs,
                    )
                    outputs = lease.outputs
                else:
                    timer = (LayerTimer(clock)
                             if traced and self.profile_layers else None)
                    forward_start = clock()
                    outputs = net.forward(inputs, timer=timer)
                    forward_end = clock()
                    if traced:
                        fspan = tracer.add_span(
                            "net.forward", forward_start, forward_end,
                            span.trace_id, span.span_id, category="compute",
                            model=request.name, batch_size=len(inputs))
                        if timer is not None:
                            timer.emit_spans(tracer, span.trace_id, fspan.span_id)
                    if self._floor_s:
                        remaining = self._floor_s - (clock() - start)
                        if remaining > 0:
                            time.sleep(remaining)
            except DeadlineExceededError as exc:
                # typed rejection, not an ERROR: the request was valid, its
                # budget was simply spent (the scheduler counts queue-side
                # expiries; the dead-on-arrival check above counts its own)
                self._record_slo(request.name, "expired")
                self._safe_send(conn, Message(MessageType.DEADLINE_EXCEEDED,
                                              text=str(exc),
                                              trace_id=request.trace_id,
                                              span_id=request.span_id))
                return
            except (KeyError, ValueError) as exc:
                reason = "unknown_model" if isinstance(exc, KeyError) else "bad_request"
                self._errors.labels(model=request.name or "?", reason=reason).inc()
                self._safe_send(conn, Message(MessageType.ERROR, text=str(exc),
                                              trace_id=request.trace_id,
                                              span_id=request.span_id))
                return
            try:
                finish = clock()
                # respond starts when the executor handed the result over:
                # the worker's delivery stamp when available (the gap up to
                # ``finish`` is this thread waking up, part of responding)
                respond_start = finish
                if lease is not None:
                    delivered = getattr(lease, "delivered_s", 0.0)
                    if 0.0 < delivered < finish:
                        respond_start = delivered
                self.stats.record(
                    request.name, finish - start, inputs=len(inputs),
                    exemplar=f"{span.trace_id:016x}" if traced else None)
                if deadline_s is not None:
                    self._record_slo(
                        request.name,
                        "met" if finish <= deadline_s else "missed")
                response = Message(MessageType.INFER_RESPONSE, name=request.name,
                                   tensor=outputs, trace_id=request.trace_id,
                                   span_id=request.span_id)
                self._safe_send(conn, response)
                send_end = clock()
                # respond covers everything after the forward: accounting,
                # response serialization (straight from the lease's slab on
                # the zero-copy path), and the socket send
                self._stage_seconds.labels(
                    model=request.name,
                    stage="respond").inc(send_end - respond_start)
                if traced:
                    tracer.add_span("backend.respond", respond_start, send_end,
                                    span.trace_id, span.span_id, category="network")
            finally:
                if lease is not None:
                    lease.release()

    # ----------------------------------------------------------- app serving
    def _app_for(self, name: str):
        """The TonicApp serving ``name``'s APP_REQUEST traffic.

        Explicit ``apps`` entries win; defaults are built from the registry
        on first use.  Raises ``KeyError`` when the model has no app (same
        typed unknown-model error path as inference against an unknown
        name — from the client's view an app that is not served does not
        exist).
        """
        app = self._apps.get(name)
        if app is None and not self._apps_built:
            from ..tonic.serve import build_default_apps

            self._apps_built = True
            for key, built in build_default_apps(self.registry).items():
                self._apps.setdefault(key, built)
            app = self._apps.get(name)
        if app is None:
            raise KeyError(
                f"no serving app for model {name!r}; apps available: "
                f"{sorted(self._apps)}")
        return app

    def _handle_app(self, conn: socket.socket, request: Message) -> None:
        """Serve one v5 APP_REQUEST: raw payload in, application answer out.

        The whole Tonic pipeline runs server-side: the app's batched
        preprocess/postprocess kernels in the executor's worker context
        (coalescing with every other raw request for the model), the DNN
        stage through the same plan/slot-ring path as tensor traffic.
        Without a batching executor the three stages run inline on this
        connection's thread.
        """
        from ..tonic.serve import decode_raw, jsonable_result

        clock = self._clock
        tracer = self.tracer
        traced = bool(request.trace_id) and tracer.enabled
        span_cm = (
            tracer.span("backend.app", category="backend",
                        trace_id=request.trace_id, parent_id=request.span_id,
                        model=request.name)
            if traced else nullcontext(None)
        )
        with span_cm as span:
            start = clock()
            deadline_s = (start + request.deadline_ms / 1e3
                          if request.deadline_ms else None)
            if traced and request.has_qos:
                span.set(deadline_ms=request.deadline_ms,
                         priority=request.priority, tenant=request.tenant)
            try:
                app = self._app_for(request.name)
                raw = decode_raw(request)
                if deadline_s is not None and clock() >= deadline_s:
                    now = clock()
                    self._sched_expired.labels(model=request.name or "?").inc()
                    if traced:
                        tracer.add_span(
                            "sched.expire", start, now, span.trace_id,
                            span.span_id, category="sched",
                            model=request.name,
                            late_ms=round((now - deadline_s) * 1e3, 3))
                    raise DeadlineExceededError(request.name, now - deadline_s)
                trace_ctx = (span.trace_id, span.span_id) if traced else None
                if self._executor is not None and self._executor is not self._pool:
                    kwargs = {}
                    if request.has_qos:
                        kwargs["qos"] = (
                            deadline_s if deadline_s is not None
                            else float("inf"),
                            request.priority, request.tenant)
                    result = self._executor.submit_app(
                        request.name, app, raw, trace=trace_ctx, **kwargs)
                else:
                    result = self._run_app_inline(
                        request.name, app, raw, trace_ctx)
            except DeadlineExceededError as exc:
                self._record_slo(request.name, "expired")
                self._safe_send(conn, Message(MessageType.DEADLINE_EXCEEDED,
                                              text=str(exc),
                                              trace_id=request.trace_id,
                                              span_id=request.span_id))
                return
            except (KeyError, ValueError) as exc:
                reason = ("unknown_model" if isinstance(exc, KeyError)
                          else "bad_request")
                self._errors.labels(model=request.name or "?",
                                    reason=reason).inc()
                self._safe_send(conn, Message(MessageType.ERROR, text=str(exc),
                                              trace_id=request.trace_id,
                                              span_id=request.span_id))
                return
            finish = clock()
            self.stats.record(
                request.name, finish - start, inputs=1,
                exemplar=f"{span.trace_id:016x}" if traced else None)
            if deadline_s is not None:
                self._record_slo(
                    request.name, "met" if finish <= deadline_s else "missed")
            from .protocol import KIND_TEXT

            self._safe_send(conn, Message(
                MessageType.APP_RESPONSE, name=request.name,
                text=json.dumps(jsonable_result(result)),
                payload_kind=KIND_TEXT,
                trace_id=request.trace_id, span_id=request.span_id))
            send_end = clock()
            self._stage_seconds.labels(
                model=request.name, stage="respond").inc(send_end - finish)
            if traced:
                tracer.add_span("backend.respond", finish, send_end,
                                span.trace_id, span.span_id,
                                category="network")

    def _run_app_inline(self, name: str, app, raw, trace_ctx) -> object:
        """Bare serving: preprocess/forward/postprocess on this thread.

        Used when no batching executor is armed (bare threaded serving, or
        a bare proc pool — whose slot ring still runs the forward).
        """
        clock = self._clock
        tracer = self.tracer
        net = self.registry.get(name)
        if faultsite.active is not None:
            faultsite.active.on_preprocess(name)
        pre_start = clock()
        inputs = np.asarray(app.preprocess(raw), dtype=np.float32)
        pre_end = clock()
        self._stage_seconds.labels(
            model=name, stage="preprocess").inc(pre_end - pre_start)
        if trace_ctx is not None:
            tid, parent = trace_ctx
            tracer.add_span("app.preprocess", pre_start, pre_end, tid, parent,
                            category="app", model=name, rows=len(inputs))
        if inputs.shape[1:] != net.input_shape:
            raise ValueError(
                f"model {name!r} expects inputs of shape "
                f"(n, {', '.join(map(str, net.input_shape))}), "
                f"got {inputs.shape}")
        if self._pool is not None and len(inputs) <= self._pool.max_batch:
            outputs = self._pool.submit(name, inputs, trace=trace_ctx)
        else:
            forward_start = clock()
            outputs = net.forward(inputs)
            forward_end = clock()
            self._stage_seconds.labels(
                model=name, stage="net.forward").inc(forward_end - forward_start)
            if trace_ctx is not None:
                tid, parent = trace_ctx
                tracer.add_span("net.forward", forward_start, forward_end,
                                tid, parent, category="compute", model=name,
                                batch_size=len(inputs))
            if self._floor_s:
                remaining = self._floor_s - (clock() - forward_start)
                if remaining > 0:
                    time.sleep(remaining)
        post_start = clock()
        result = app.postprocess(outputs, raw)
        post_end = clock()
        self._stage_seconds.labels(
            model=name, stage="postprocess").inc(post_end - post_start)
        if trace_ctx is not None:
            tid, parent = trace_ctx
            tracer.add_span("app.postprocess", post_start, post_end, tid,
                            parent, category="app", model=name)
        return result

    # ------------------------------------------------------------ streaming
    def _stream_dnn(self, name: str, net) -> Callable:
        """Per-chunk DNN dispatch for a stream application.

        Chunks ride the same executor as unary traffic — with batching
        armed they enter the shared (EDF when scheduled) queues as small
        batches and coalesce with whatever else is in flight; the result is
        copied out because stream decode outlives the lease.
        """
        def dnn(batch: np.ndarray) -> np.ndarray:
            use_executor = self._executor is not None
            if (use_executor and self._executor is self._pool
                    and len(batch) > self._pool.max_batch):
                use_executor = False
            if not use_executor:
                return net.forward(batch)
            lease = self._executor.submit_lease(name, batch)
            try:
                return np.array(lease.outputs, copy=True)
            finally:
                lease.release()
        return dnn

    def _stream_app_for(self, name: str):
        """Instantiate the streaming application for one stream of ``name``.

        Explicit ``stream_apps`` factories win; a model named ``"asr"``
        with the acoustic pipeline's 440-dim input gets the incremental
        ASR decoder; everything else streams through the generic
        :class:`TensorStreamApp`.
        """
        net = self.registry.get(name)  # KeyError -> unknown model
        dnn = self._stream_dnn(name, net)
        factory = self._stream_apps.get(name)
        if factory is not None:
            return factory(net, dnn)
        if name == "asr" and tuple(net.input_shape) == (440,):
            from ..tonic.app import LocalBackend
            from ..tonic.asr import AsrApp, AsrStream

            try:
                app = AsrApp(LocalBackend(net),
                             num_senones=int(np.prod(net.output_shape)))
                return AsrStream(app, dnn=dnn)
            except ValueError:
                pass  # output narrower than the HMM: generic fallback
        return TensorStreamApp(net, dnn)

    def _handle_stream_open(self, conn: socket.socket, request: Message) -> None:
        model = request.name
        try:
            app = self._stream_app_for(model)
        except KeyError as exc:
            self._errors.labels(model=model or "?", reason="unknown_model").inc()
            self._streams_total.labels(model=model or "?",
                                       outcome="rejected").inc()
            self._safe_send(conn, Message(
                MessageType.ERROR, text=str(exc),
                stream_id=request.stream_id,
                trace_id=request.trace_id, span_id=request.span_id))
            return
        try:
            session = self.sessions.open(id(conn), request.stream_id, model, app)
        except SessionLimitError as exc:
            self._streams_total.labels(model=model, outcome="rejected").inc()
            self._safe_send(conn, Message(
                MessageType.SESSION_LIMIT,
                text=json.dumps({"error": str(exc), "limit": exc.limit}),
                stream_id=request.stream_id,
                trace_id=request.trace_id, span_id=request.span_id))
            return
        except ValueError as exc:  # duplicate stream id on this connection
            self._errors.labels(model=model, reason="bad_request").inc()
            self._safe_send(conn, Message(
                MessageType.ERROR, text=str(exc),
                stream_id=request.stream_id,
                trace_id=request.trace_id, span_id=request.span_id))
            return
        session.trace_id, session.span_id = request.trace_id, request.span_id
        session.priority, session.tenant = request.priority, request.tenant
        self._stream_sessions.set(len(self.sessions))
        self._safe_send(conn, Message(
            MessageType.STREAM_OPEN, name=model, stream_id=request.stream_id,
            trace_id=request.trace_id, span_id=request.span_id))

    def _handle_stream_chunk(self, conn: socket.socket, request: Message) -> None:
        clock = self._clock
        session = self.sessions.get(id(conn), request.stream_id)
        if session is None:
            self._safe_send(conn, Message(
                MessageType.ERROR,
                text=f"unknown or closed stream {request.stream_id}",
                stream_id=request.stream_id,
                trace_id=request.trace_id, span_id=request.span_id))
            return
        if (faultsite.active is not None
                and faultsite.active.on_stream_chunk(session.model)):
            # injected mid-stream drop: the chunk is discarded and the
            # stream aborted with a typed, stream-scoped error
            self._abort_session(session, "drop")
            self._safe_send(conn, Message(
                MessageType.ERROR,
                text=f"injected stream chunk drop ({session.model})",
                stream_id=request.stream_id,
                trace_id=request.trace_id, span_id=request.span_id))
            return
        if request.tensor is None:
            self._abort_session(session, "error")
            self._safe_send(conn, Message(
                MessageType.ERROR, text="stream chunk carries no tensor",
                stream_id=request.stream_id,
                trace_id=request.trace_id, span_id=request.span_id))
            return
        start = clock()
        try:
            result = session.app.feed(request.tensor)
            if getattr(session.app, "endpointed", False):
                result = session.app.finish()
                final = True
            else:
                final = False
        except (KeyError, ValueError, RuntimeError) as exc:
            self._abort_session(session, "error")
            self._errors.labels(model=session.model, reason="bad_request").inc()
            self._safe_send(conn, Message(
                MessageType.ERROR, text=str(exc),
                stream_id=request.stream_id,
                trace_id=request.trace_id, span_id=request.span_id))
            return
        session.chunks += 1
        self._stream_chunks.labels(model=session.model).inc()
        if session.trace_id and self.tracer.enabled:
            self.tracer.add_span(
                "stream.chunk", start, clock(), session.trace_id,
                session.span_id, category="stream", model=session.model,
                seq=session.chunks)
        if final:
            self._complete_session(session)
        self._safe_send(conn, Message(
            MessageType.STREAM_RESULT, name=session.model,
            text=json.dumps(result), stream_id=request.stream_id,
            stream_seq=session.chunks, stream_final=final,
            trace_id=request.trace_id, span_id=request.span_id))

    def _handle_stream_close(self, conn: socket.socket, request: Message) -> None:
        session = self.sessions.get(id(conn), request.stream_id)
        if session is None:
            self._safe_send(conn, Message(
                MessageType.ERROR,
                text=f"unknown or closed stream {request.stream_id}",
                stream_id=request.stream_id,
                trace_id=request.trace_id, span_id=request.span_id))
            return
        try:
            final = session.app.finish()
        except (KeyError, ValueError, RuntimeError) as exc:
            self._abort_session(session, "error")
            self._safe_send(conn, Message(
                MessageType.ERROR, text=str(exc),
                stream_id=request.stream_id,
                trace_id=request.trace_id, span_id=request.span_id))
            return
        session.chunks += 1
        self._complete_session(session)
        self._safe_send(conn, Message(
            MessageType.STREAM_RESULT, name=session.model,
            text=json.dumps(final), stream_id=request.stream_id,
            stream_seq=session.chunks, stream_final=True,
            trace_id=request.trace_id, span_id=request.span_id))

    def _complete_session(self, session) -> None:
        self.sessions.close(session.conn_key, session.stream_id)
        self._streams_total.labels(model=session.model,
                                   outcome="completed").inc()
        self._stream_sessions.set(len(self.sessions))
        self._end_stream_span(session, "completed")

    def _abort_session(self, session, reason: str) -> None:
        self.sessions.close(session.conn_key, session.stream_id)
        self._account_abort(session, reason)

    def _session_evicted(self, session, reason: str) -> None:
        """Reaper callback: the manager already removed the session."""
        self._account_abort(session, reason)

    def _account_abort(self, session, reason: str) -> None:
        self._streams_total.labels(model=session.model, outcome="aborted").inc()
        self._stream_aborted.labels(model=session.model, reason=reason).inc()
        self._stream_sessions.set(len(self.sessions))
        self._end_stream_span(session, reason)

    def _end_stream_span(self, session, outcome: str) -> None:
        if session.trace_id and self.tracer.enabled:
            self.tracer.add_span(
                "stream.session", session.opened_s, self._clock(),
                session.trace_id, session.span_id, category="stream",
                model=session.model, chunks=session.chunks, outcome=outcome)

    def _on_disconnect(self, conn: socket.socket) -> None:
        for session in self.sessions.drop_connection(id(conn)):
            self._account_abort(session, "disconnect")

    def _record_slo(self, model: str, outcome: str) -> None:
        """Account one deadline-carrying request's outcome and re-check burn."""
        self._slo.labels(model=model or "?", outcome=outcome).inc()
        self.slo_monitor.record(model or "?", attained=outcome == "met")
        self.slo_monitor.check()
