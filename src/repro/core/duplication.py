"""Seeded near-duplicate planning, shared by every dup_frac knob.

Production query streams repeat — the same photo re-shared, the same
query re-issued through a different crop or encode — and batching,
caches, and admission control all see that traffic very differently from
fresh i.i.d. inputs.  The load generator
(:func:`repro.core.loadgen.run_open_loop_load`) and the Tonic dataset
generators (:func:`repro.tonic.datasets.with_duplicates`) both model it;
this module is the single source of truth for *which* items duplicate
*what*, so a given ``(seed, count, dup_frac)`` names exactly one
duplicate stream no matter which surface draws it (pinned by
``tests/test_cache.py``).

Semantics (the load generator's original contract, now shared):

* :func:`plan_duplicates` draws one Bernoulli(``dup_frac``) per item
  ``i >= 1`` from ``default_rng(seed)``; selected items replay a source
  drawn uniformly from the *earlier* indices ``[0, i)``.  Item 0 is
  never a duplicate.
* :func:`jitter_duplicate` perturbs one replayed item with gaussian
  noise from ``default_rng((seed + 1) * 1_000_003 + index)`` — keyed on
  the duplicate's own index, so any item's jitter can be regenerated
  independently of traversal order.  Sources are always the *original*
  items: a duplicate of a duplicate replays the pristine input, not the
  jittered copy (no noise accumulation along chains).
* ``jitter=0`` yields byte-identical duplicates — what a content-
  addressed response cache hits on; ``jitter > 0`` yields near-
  duplicates — what a tolerance-carrying layer cache is for.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["plan_duplicates", "jitter_duplicate", "apply_duplicates"]


def plan_duplicates(count: int, dup_frac: float, seed: int) -> Dict[int, int]:
    """The duplicate plan: ``{index -> earlier source index}``.

    Deterministic per ``(count, dup_frac, seed)``; needs no shared state
    to apply (each entry is independent given the plan).
    """
    if not 0.0 <= dup_frac <= 1.0:
        raise ValueError(f"dup_frac must be in [0, 1], got {dup_frac}")
    dup_of: Dict[int, int] = {}
    if not dup_frac or count < 2:
        return dup_of
    rng = np.random.default_rng(seed)
    for i in range(1, count):
        if rng.random() < dup_frac:
            dup_of[i] = int(rng.integers(0, i))
    return dup_of


def jitter_duplicate(base: np.ndarray, index: int, seed: int,
                     jitter: float,
                     clip: Optional[Tuple[float, float]] = None) -> np.ndarray:
    """One replayed item: ``base`` plus seeded noise for duplicate ``index``.

    Always returns a new array (callers may own ``base``); preserves the
    input dtype.  ``clip`` bounds the result (image generators keep their
    [0, 1] range through the noise).
    """
    base = np.asarray(base)
    if jitter:
        rng = np.random.default_rng((seed + 1) * 1_000_003 + index)
        out = (base + rng.normal(0.0, jitter, size=base.shape)
               ).astype(base.dtype, copy=False)
    else:
        out = base.copy()
    if clip is not None:
        out = np.clip(out, clip[0], clip[1]).astype(base.dtype, copy=False)
    return out


def apply_duplicates(items: np.ndarray,
                     labels: Optional[np.ndarray] = None,
                     dup_frac: float = 0.0,
                     seed: int = 0,
                     jitter: float = 0.01,
                     clip: Optional[Tuple[float, float]] = None):
    """Array form: replace a planned fraction of ``items`` with duplicates.

    Sources are the *original* rows of ``items`` (never an already-
    replaced row).  With ``labels`` given, each duplicate inherits its
    source's label and ``(items, labels)`` is returned; otherwise just
    the transformed items.
    """
    plan = plan_duplicates(len(items), dup_frac, seed)
    if not plan:
        return items if labels is None else (items, labels)
    out = np.array(items, copy=True)
    out_labels = None if labels is None else np.array(labels, copy=True)
    for idx, src in plan.items():
        out[idx] = jitter_duplicate(items[src], idx, seed, jitter, clip=clip)
        if out_labels is not None:
            out_labels[idx] = labels[src]
    return out if out_labels is None else (out, out_labels)
