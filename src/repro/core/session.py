"""Per-stream session state for streaming inference.

The unary DjiNN protocol is stateless: every request carries everything the
server needs.  Streaming (protocol v4) is not — a stream's chunks share
carry-over context (feature tails, decoder state) that must live *somewhere*
between frames.  :class:`SessionManager` is that somewhere: a bounded,
lock-protected table of :class:`StreamSession` entries keyed by
``(connection, stream_id)``, with an idle-timeout reaper so an opener that
wanders off without closing can never pin server memory.

The table is deliberately small machinery: opening past ``limit`` raises
:class:`SessionLimitError` (surfaced on the wire as a typed SESSION_LIMIT
frame), every eviction path — explicit close, connection drop, idle reap —
funnels through one ``_evict`` so accounting callbacks cannot miss a
session, and ``len(manager)`` returning to zero after a test battery is the
no-leak invariant the chaos harness asserts.

:class:`TensorStreamApp` is the model-agnostic stream application: each
chunk is a batch of model inputs, each partial result the argmax labels of
that batch.  Models with a real incremental pipeline (ASR) plug in their
own app object with the same ``feed``/``finish`` shape
(:class:`repro.tonic.asr.AsrStream`).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "SessionLimitError",
    "StreamSession",
    "SessionManager",
    "TensorStreamApp",
]


class SessionLimitError(RuntimeError):
    """The session table is full; the open was rejected."""

    def __init__(self, limit: int):
        super().__init__(f"session table full ({limit} streams)")
        self.limit = limit


class StreamSession:
    """One open stream's server-side state."""

    __slots__ = ("conn_key", "stream_id", "model", "app", "opened_s",
                 "last_seen_s", "chunks", "trace_id", "span_id",
                 "priority", "tenant")

    def __init__(self, conn_key: int, stream_id: int, model: str, app,
                 now: float):
        self.conn_key = conn_key
        self.stream_id = stream_id
        self.model = model
        self.app = app
        self.opened_s = now
        self.last_seen_s = now
        self.chunks = 0
        self.trace_id = 0
        self.span_id = 0
        self.priority = 0
        self.tenant = ""


class SessionManager:
    """Bounded table of live stream sessions with an idle-timeout reaper.

    Parameters
    ----------
    limit:
        Maximum concurrently open sessions across all connections; opening
        the ``limit+1``-th raises :class:`SessionLimitError`.
    idle_timeout_s:
        A session untouched for this long is reaped by the background
        reaper thread (started by :meth:`start`, stopped by :meth:`stop`).
    clock:
        Monotonic time source (injected for testability).
    on_evict:
        Called as ``on_evict(session, reason)`` for evictions the manager
        initiates itself (currently only ``"idle"``).  Callers doing their
        own eviction (close / connection drop) account for those
        themselves — the callback exists so reaper-initiated evictions,
        which happen on no request path, still reach the server's metrics.
    """

    def __init__(
        self,
        limit: int = 64,
        idle_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_evict: Optional[Callable[[StreamSession, str], None]] = None,
    ):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        if idle_timeout_s <= 0:
            raise ValueError(
                f"idle_timeout_s must be > 0, got {idle_timeout_s}")
        self.limit = limit
        self.idle_timeout_s = idle_timeout_s
        self._clock = clock
        self._on_evict = on_evict
        self._sessions: Dict[Tuple[int, int], StreamSession] = {}
        self._lock = threading.Lock()
        self._reaper: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "SessionManager":
        """Start the idle reaper (idempotent)."""
        if self._reaper is None:
            self._stop.clear()
            self._reaper = threading.Thread(
                target=self._reap_loop, daemon=True, name="djinn-stream-reaper")
            self._reaper.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._reaper is not None:
            self._reaper.join(timeout=5.0)
            self._reaper = None

    def _reap_loop(self) -> None:
        interval = min(0.5, self.idle_timeout_s / 4.0)
        while not self._stop.wait(interval):
            self.reap_idle()

    # --------------------------------------------------------------- table
    def open(self, conn_key: int, stream_id: int, model: str,
             app) -> StreamSession:
        """Register a new session; raises on a full table or duplicate id."""
        now = self._clock()
        with self._lock:
            key = (conn_key, stream_id)
            if key in self._sessions:
                raise ValueError(f"stream {stream_id} already open "
                                 f"on this connection")
            if len(self._sessions) >= self.limit:
                raise SessionLimitError(self.limit)
            session = StreamSession(conn_key, stream_id, model, app, now)
            self._sessions[key] = session
            return session

    def get(self, conn_key: int, stream_id: int) -> Optional[StreamSession]:
        """Look up a live session and stamp its activity clock."""
        with self._lock:
            session = self._sessions.get((conn_key, stream_id))
            if session is not None:
                session.last_seen_s = self._clock()
            return session

    def close(self, conn_key: int, stream_id: int) -> Optional[StreamSession]:
        """Remove one session (the normal end-of-stream path)."""
        with self._lock:
            return self._sessions.pop((conn_key, stream_id), None)

    def drop_connection(self, conn_key: int) -> List[StreamSession]:
        """Remove every session of a disconnected peer."""
        with self._lock:
            keys = [k for k in self._sessions if k[0] == conn_key]
            return [self._sessions.pop(k) for k in keys]

    def reap_idle(self, now: Optional[float] = None) -> List[StreamSession]:
        """Evict sessions idle past the timeout, invoking ``on_evict``."""
        if now is None:
            now = self._clock()
        cutoff = now - self.idle_timeout_s
        with self._lock:
            keys = [k for k, s in self._sessions.items()
                    if s.last_seen_s <= cutoff]
            reaped = [self._sessions.pop(k) for k in keys]
        for session in reaped:
            if self._on_evict is not None:
                self._on_evict(session, "idle")
        return reaped

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def count(self) -> int:
        return len(self)


class TensorStreamApp:
    """Generic streaming application: argmax labels per chunk of inputs.

    Every registered model can stream through this app with no
    model-specific code: a STREAM_CHUNK carries a ``(n, *input_shape)``
    batch, the partial result is the argmax class of each row, and the
    final result is the whole stream's label sequence — a deterministic
    "transcript" the lifecycle tests check end-to-end.
    """

    endpointed = False

    def __init__(self, net, dnn: Callable[[np.ndarray], np.ndarray]):
        self._input_shape = tuple(net.input_shape)
        self._dnn = dnn
        self._labels: List[int] = []

    def feed(self, chunk: np.ndarray) -> dict:
        if chunk.shape[1:] != self._input_shape:
            raise ValueError(
                f"stream chunk must be (n, {', '.join(map(str, self._input_shape))}), "
                f"got {chunk.shape}")
        outputs = self._dnn(chunk)
        flat = outputs.reshape(len(chunk), -1)
        labels = [int(i) for i in np.argmax(flat, axis=1)]
        self._labels.extend(labels)
        return {"labels": labels, "count": len(self._labels)}

    def finish(self) -> dict:
        return {"labels": list(self._labels), "count": len(self._labels)}
