"""DjiNN model registry.

Paper §3.1, "Request Processing": *"At initialization, DjiNN loads the
pre-trained model associated with each application into memory, giving all
worker threads read-only access to this data.  Consequently, incoming
requests using the same model are accepted without needing to load their
own copy of the model into memory."*

The registry is exactly that: one materialized :class:`repro.nn.Net` per
model name, shared read-only by every worker.  Inference passes never write
layer state (caches are only populated with ``train=True``), so concurrent
forward passes over one net are safe.

It also caches one :class:`repro.nn.engine.ExecutionPlan` per (model,
batch-bucket): plans are sized to the power-of-two bucket covering the
requested batch, so an executor asking for 16 and a bench asking for 9 share
one arena instead of compiling per exact size.  Unlike the net, a plan is
*not* shareable across threads — callers serialize on ``plan.lock``.
"""

from __future__ import annotations

import atexit
import threading
from typing import Dict, Iterable, List, Optional

from ..nn.netspec import NetSpec
from ..nn.network import Net
from . import shm as shmseg

__all__ = ["ModelRegistry"]


class ModelRegistry:
    """Thread-safe name -> materialized net mapping."""

    def __init__(self):
        self._models: Dict[str, Net] = {}
        self._lock = threading.Lock()
        #: (name, batch_bucket) -> compiled ExecutionPlan; separate lock so
        #: slow plan compiles (FACE arenas) never block model lookups
        self._plans: Dict[tuple, object] = {}
        self._plan_lock = threading.Lock()
        #: model name -> owned SharedMemory / manifest entry (export side)
        self._shm_segments: Dict[str, object] = {}
        self._shm_entries: Dict[str, dict] = {}
        #: segments this registry merely attached to (worker side)
        self._shm_attached: List[object] = []
        self._shm_atexit = False

    def register(self, name: str, net: Net) -> None:
        """Register a materialized net under ``name``."""
        if not net.materialized:
            raise ValueError(f"model {name!r}: net must be materialized before registration")
        with self._lock:
            if name in self._models:
                raise ValueError(f"model {name!r} already registered")
            self._models[name] = net

    def register_spec(self, name: str, spec: NetSpec, seed: int = 0) -> Net:
        """Build, materialize (seeded), and register a net from a spec."""
        net = Net(spec).materialize(seed)
        self.register(name, net)
        return net

    def get(self, name: str) -> Net:
        with self._lock:
            try:
                return self._models[name]
            except KeyError:
                raise KeyError(
                    f"model {name!r} not loaded; available: {sorted(self._models)}"
                ) from None

    def plan(self, name: str, batch: int):
        """Arena-backed plan for ``name`` covering batches up to ``batch``.

        Plans are cached per power-of-two bucket (``batch=9..16`` all share
        the 16-wide arena), so the steady state compiles each model once.
        The returned plan's :attr:`lock` must be held around any use.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        net = self.get(name)
        bucket = 1 << max(0, batch - 1).bit_length()
        key = (name, bucket)
        with self._plan_lock:
            plan = self._plans.get(key)
            if plan is None:
                from ..nn.engine import ExecutionPlan

                plan = ExecutionPlan(net, bucket)
                self._plans[key] = plan
            return plan

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def total_param_bytes(self) -> int:
        """Resident model memory — what the paper keeps pinned in GPU DRAM."""
        with self._lock:
            return sum(net.param_bytes() for net in self._models.values())

    # ------------------------------------------------- shared-memory export
    def export_shm(self) -> Dict[str, object]:
        """Publish every registered model's weights into shared memory.

        Idempotent: models already exported keep their segment, so a second
        pool over the same registry re-uses the same physical pages — each
        model is mapped exactly once per host no matter how many pools or
        workers front it.  The parent's own blobs are rebound to read-only
        views over the segments, so the heap copies are released.

        Returns a JSON-able manifest ``{"version": 1, "models": {...}}``
        suitable for :meth:`attach_shm` in another process.
        """
        with self._lock:
            for name, net in self._models.items():
                if name in self._shm_entries:
                    continue
                segment, entry = shmseg.export_net(name, net)
                self._shm_segments[name] = segment
                self._shm_entries[name] = entry
            if self._shm_segments and not self._shm_atexit:
                # Safety net for CLI/abnormal paths; close_shm is idempotent
                # so an explicit earlier teardown makes this a no-op.
                atexit.register(self.close_shm)
                self._shm_atexit = True
            return {"version": 1, "models": dict(self._shm_entries)}

    @classmethod
    def attach_shm(cls, manifest: Dict[str, object]) -> "ModelRegistry":
        """Build a registry whose nets read weights from shm segments.

        The worker-process half of :meth:`export_shm`: nets are rebuilt
        shape-only from the manifest specs and their blobs bound to
        ``writeable=False`` views — attempted weight writes raise
        ``ValueError``, and no weight bytes are copied.
        """
        registry = cls()
        for name, entry in manifest["models"].items():
            net, segment = shmseg.attach_net(entry)
            registry.register(name, net)
            registry._shm_attached.append(segment)
        return registry

    def shm_manifest(self) -> Optional[Dict[str, object]]:
        """The current manifest, or None if nothing has been exported."""
        with self._lock:
            if not self._shm_entries:
                return None
            return {"version": 1, "models": dict(self._shm_entries)}

    def shm_bytes(self) -> int:
        """Total shared-memory payload bytes across exported segments."""
        with self._lock:
            return sum(entry["bytes"] for entry in self._shm_entries.values())

    def close_shm(self) -> None:
        """Release shm: unlink owned segments (once), close attached ones.

        Safe to call repeatedly and from atexit; nets keep working while
        their mappings are alive even after the names are unlinked.
        """
        with self._lock:
            owned = list(self._shm_segments.values())
            attached = list(self._shm_attached)
            self._shm_segments.clear()
            self._shm_entries.clear()
            self._shm_attached.clear()
        for segment in owned:
            shmseg.unlink_segment(segment)
        for segment in attached:
            shmseg.close_segment(segment)
