"""DjiNN model registry.

Paper §3.1, "Request Processing": *"At initialization, DjiNN loads the
pre-trained model associated with each application into memory, giving all
worker threads read-only access to this data.  Consequently, incoming
requests using the same model are accepted without needing to load their
own copy of the model into memory."*

The registry is exactly that: one materialized :class:`repro.nn.Net` per
model name, shared read-only by every worker.  Inference passes never write
layer state (caches are only populated with ``train=True``), so concurrent
forward passes over one net are safe.

It also caches one :class:`repro.nn.engine.ExecutionPlan` per (model,
batch-bucket): plans are sized to the power-of-two bucket covering the
requested batch, so an executor asking for 16 and a bench asking for 9 share
one arena instead of compiling per exact size.  Unlike the net, a plan is
*not* shareable across threads — callers serialize on ``plan.lock``.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional

from ..nn.netspec import NetSpec
from ..nn.network import Net

__all__ = ["ModelRegistry"]


class ModelRegistry:
    """Thread-safe name -> materialized net mapping."""

    def __init__(self):
        self._models: Dict[str, Net] = {}
        self._lock = threading.Lock()
        #: (name, batch_bucket) -> compiled ExecutionPlan; separate lock so
        #: slow plan compiles (FACE arenas) never block model lookups
        self._plans: Dict[tuple, object] = {}
        self._plan_lock = threading.Lock()

    def register(self, name: str, net: Net) -> None:
        """Register a materialized net under ``name``."""
        if not net.materialized:
            raise ValueError(f"model {name!r}: net must be materialized before registration")
        with self._lock:
            if name in self._models:
                raise ValueError(f"model {name!r} already registered")
            self._models[name] = net

    def register_spec(self, name: str, spec: NetSpec, seed: int = 0) -> Net:
        """Build, materialize (seeded), and register a net from a spec."""
        net = Net(spec).materialize(seed)
        self.register(name, net)
        return net

    def get(self, name: str) -> Net:
        with self._lock:
            try:
                return self._models[name]
            except KeyError:
                raise KeyError(
                    f"model {name!r} not loaded; available: {sorted(self._models)}"
                ) from None

    def plan(self, name: str, batch: int):
        """Arena-backed plan for ``name`` covering batches up to ``batch``.

        Plans are cached per power-of-two bucket (``batch=9..16`` all share
        the 16-wide arena), so the steady state compiles each model once.
        The returned plan's :attr:`lock` must be held around any use.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        net = self.get(name)
        bucket = 1 << max(0, batch - 1).bit_length()
        key = (name, bucket)
        with self._plan_lock:
            plan = self._plans.get(key)
            if plan is None:
                from ..nn.engine import ExecutionPlan

                plan = ExecutionPlan(net, bucket)
                self._plans[key] = plan
            return plan

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def total_param_bytes(self) -> int:
        """Resident model memory — what the paper keeps pinned in GPU DRAM."""
        with self._lock:
            return sum(net.param_bytes() for net in self._models.values())
