"""``repro.core`` — DjiNN: DNN-as-a-service (the paper's primary artifact).

A standalone threaded TCP service with a custom binary protocol, an
in-memory model registry shared read-only across workers, optional
server-side dynamic batching, a client library, and a remote backend that
plugs directly into the Tonic applications.
"""

from .aio import DjinnStreamClient
from .batching import BatchingExecutor, BatchPolicy
from .client import (
    DjinnClient,
    DjinnConnectionError,
    DjinnDeadlineError,
    DjinnOverloadedError,
    DjinnServiceError,
    DjinnSessionLimitError,
    DjinnStream,
    DjinnStreamError,
    RemoteBackend,
    StreamResult,
)
from .loadgen import (
    LoadResult,
    OpenLoopResult,
    RequestClass,
    run_closed_loop_load,
    run_open_loop_load,
)
from .procpool import PoolLease, ProcPoolError, ProcPoolExecutor, parse_workers
from .protocol import Message, MessageType, ProtocolError, recv_message, send_message
from .registry import ModelRegistry
from .server import DjinnServer
from .session import SessionLimitError, SessionManager, TensorStreamApp
from .stats import ServiceStats

__all__ = [
    "BatchingExecutor",
    "BatchPolicy",
    "PoolLease",
    "ProcPoolError",
    "ProcPoolExecutor",
    "parse_workers",
    "DjinnClient",
    "DjinnConnectionError",
    "DjinnDeadlineError",
    "DjinnOverloadedError",
    "DjinnServiceError",
    "DjinnSessionLimitError",
    "DjinnStream",
    "DjinnStreamError",
    "DjinnStreamClient",
    "StreamResult",
    "SessionLimitError",
    "SessionManager",
    "TensorStreamApp",
    "RemoteBackend",
    "Message",
    "MessageType",
    "ProtocolError",
    "recv_message",
    "send_message",
    "ModelRegistry",
    "DjinnServer",
    "ServiceStats",
    "LoadResult",
    "OpenLoopResult",
    "RequestClass",
    "run_closed_loop_load",
    "run_open_loop_load",
]
