"""Server-side dynamic batching.

Section 5.1 of the paper batches multiple DNN inputs into one larger GPU
GEMM to raise occupancy and throughput.  This module is the service-side
mechanism: per-model queues collect concurrent requests until ``max_batch``
inputs are buffered or ``timeout_ms`` elapses, then execute them as a single
forward pass and scatter the results back to the waiting requests.

On the numpy substrate the win is BLAS efficiency rather than GPU occupancy,
but the mechanism (and its latency/throughput trade-off, which
``benchmarks/bench_ablation_batch_policy.py`` sweeps) is the same.

Copy-free serving: each worker compiles an :class:`repro.nn.engine.ExecutionPlan`
for its model (``use_plans=True``) and gathers request payloads directly into
the plan's input slab — partial batches run as prefix views, there is no
re-stack ``np.concatenate``.  Results are scattered back as *read-only views*
of the plan's output slab; because the arena is reused by the next batch, the
worker holds ``plan.lock`` until every waiter signals it has consumed its
view (the lease barrier).  :meth:`BatchingExecutor.submit` copies on behalf
of the caller (ownership transfer); :meth:`BatchingExecutor.submit_lease`
hands the view itself to zero-copy consumers such as
:class:`repro.core.server.DjinnServer`, which serializes straight from the
slab and then releases.  Batches that overflow the plan envelope (the
collector admits one oversize request past ``max_batch``) fall back to the
legacy stacked path.

Observability: requests that arrive with trace context get ``backend.queue``
(enqueue → batch execution start) and ``batch.assemble`` spans, the batch's
single forward pass is replayed into every participating trace (optionally
with per-layer sub-spans), and executed batch sizes feed a
``djinn_batch_size`` histogram when a metrics registry is attached.

Streaming (protocol v4) rides the same machinery: each STREAM_CHUNK's DNN
work is submitted through :meth:`BatchingExecutor.submit_lease` like any
unary request, so chunks from concurrent streams coalesce into shared
batches and obey the EDF queues when scheduling is armed — a stream gets
incremental results without a private fast path through the executor.

App requests (protocol v5) turn the worker into a *staged pipeline*:
:meth:`BatchingExecutor.submit_app` enqueues the raw task payload plus its
:class:`repro.tonic.TonicApp`, the worker runs the app's **batched**
``preprocess_batch`` over every raw request it coalesced (in the worker
process's shm slot when a proc pool is armed and the payloads are
slot-eligible, on the executor thread otherwise), forwards through the
existing plan/slot-ring path, then runs ``postprocess_batch`` over the
result block and hands each waiter its final application answer — the
arena lease is consumed worker-side, so app waiters never hold the
barrier.  A poisoned raw payload fails only its own request (typed
error), never the batch: the vectorized call falls back to the per-item
loop to isolate the offender.

The **batch-1 fast path** skips the queue handoff and the slot ring
entirely: when a model's queue is empty and its plan lock is free, the
submitting thread runs the preprocess/forward/postprocess stages inline
on a parent-side plan and returns without ever waking the worker — this is
what removes the per-request dispatch overhead that made a 1-worker proc
pool slower than threaded serving (ROADMAP item 2).  The fast path turns
itself off per-request whenever it could change semantics: queued work,
a service floor, an armed fault plan, or an un-plannable model all fall
back to the normal queue path.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from queue import Empty, Queue
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn.engine import LayerCache, LayerCacheConfig, PlanError
from ..obs.metrics import MetricsRegistry
from ..obs.profile import LayerTimer
from ..obs.trace import Tracer, get_tracer
from ..sched import (
    DeadlineExceededError,
    EdfQueue,
    LatencyModel,
    item_rows,
    make_policy,
)
from . import faultsite
from .registry import ModelRegistry

__all__ = ["BatchPolicy", "BatchingExecutor", "ResultLease"]

#: sentinel for a declined fast-path attempt (None is a valid result object)
_FAST_MISS = object()

#: Bucket bounds for the executed-batch-size histogram (inputs per forward).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class BatchPolicy:
    """How long to wait and how much to coalesce."""

    max_batch: int = 16
    timeout_ms: float = 2.0

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.timeout_ms < 0:
            raise ValueError(f"timeout_ms must be >= 0, got {self.timeout_ms}")


class _Pending:
    """One submitted request waiting for its slice of a batched result."""

    __slots__ = ("inputs", "event", "result", "error", "trace", "enqueue_s",
                 "delivered_s", "consumed", "arena", "deadline_s", "priority",
                 "tenant", "app", "raw", "raw_parts", "row_hint", "result_obj")

    def __init__(self, inputs: Optional[np.ndarray],
                 trace: Optional[Tuple[int, int]] = None,
                 enqueue_s: float = 0.0,
                 deadline_s: float = float("inf"),
                 priority: int = 0,
                 tenant: str = "",
                 app=None,
                 raw=None,
                 row_hint: int = 1):
        self.inputs = inputs
        self.event = threading.Event()
        self.result: Optional[np.ndarray] = None
        self.error: Optional[Exception] = None
        #: (trace_id, parent_span_id) carried from the requesting connection
        self.trace = trace
        self.enqueue_s = enqueue_s
        #: stamped by the worker when the result view is handed over; lets
        #: the consumer's respond accounting start at delivery rather than
        #: at its own wake-up (the gap is thread scheduling, not response)
        self.delivered_s = 0.0
        #: absolute monotonic deadline (inf = none), priority class (higher
        #: first), and tenant — consumed by the EDF queue when a scheduling
        #: policy is armed, inert otherwise
        self.deadline_s = deadline_s
        self.priority = priority
        self.tenant = tenant
        #: set by the consumer once ``result`` is no longer needed; the
        #: worker's lease barrier waits on this before reusing the arena
        self.consumed = threading.Event()
        #: True when ``result`` is a view of a plan arena (volatile: only
        #: valid until ``consumed`` is set)
        self.arena = False
        #: app pipeline fields: the TonicApp whose pre/post kernels run
        #: server-side, the raw payload, the in-slot raw parts a proc-pool
        #: batch deferred (worker-process preprocess), the submitter's row
        #: estimate used for assembly before preprocess, and the final
        #: postprocessed answer delivered to ``submit_app``
        self.app = app
        self.raw = raw
        self.raw_parts: Optional[List[np.ndarray]] = None
        self.row_hint = row_hint
        self.result_obj = None


class ResultLease:
    """A scatter slice leased to a zero-copy consumer.

    ``outputs`` is a read-only view — of the plan's output slab on the
    planned path (valid only until :meth:`release`), of a worker-owned batch
    array on the legacy path.  Always release (or use as a context manager):
    an unreleased arena lease stalls that model's worker for the barrier
    timeout.
    """

    __slots__ = ("_pending",)

    def __init__(self, pending: _Pending):
        self._pending = pending

    @property
    def outputs(self) -> np.ndarray:
        return self._pending.result

    @property
    def delivered_s(self) -> float:
        """Worker-side delivery stamp (0.0 until the result is handed out)."""
        return self._pending.delivered_s

    def release(self) -> None:
        self._pending.consumed.set()

    def __enter__(self) -> "ResultLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class _FastLease:
    """A fast-path result lease: ``outputs`` views the parent-side plan's
    output slab, and :meth:`release` returns the plan lock the submitting
    thread took (instead of signalling a worker's barrier).  Same contract
    as :class:`ResultLease` from the consumer's point of view."""

    __slots__ = ("outputs", "delivered_s", "_lock")

    def __init__(self, outputs: np.ndarray, delivered_s: float, lock):
        self.outputs = outputs
        self.delivered_s = delivered_s
        self._lock = lock

    def release(self) -> None:
        lock, self._lock = self._lock, None
        if lock is not None:
            lock.release()

    def __enter__(self) -> "_FastLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class BatchingExecutor:
    """Per-model batching queues with one worker thread per model.

    ``service_floor_s`` imposes a minimum wall-clock time per executed
    batch (compute + GIL-released sleep), pacing each worker like a serial
    device — see :class:`repro.core.server.DjinnServer`.  ``clock`` is the
    monotonic time source shared with the owning server; ``tracer``,
    ``metrics`` and ``profile_layers`` wire the executor into that server's
    observability surfaces.
    """

    #: how long the lease barrier waits for consumers before reclaiming the
    #: arena anyway (a dead consumer must not wedge the worker forever)
    LEASE_TIMEOUT_S = 5.0

    def __init__(self, registry: ModelRegistry, policy: BatchPolicy = BatchPolicy(),
                 service_floor_s: float = 0.0,
                 clock: Callable[[], float] = time.monotonic,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 profile_layers: bool = False,
                 use_plans: bool = True,
                 pool=None,
                 sched=None,
                 latency: Optional[LatencyModel] = None,
                 layer_cache: Optional[LayerCacheConfig] = None):
        self.registry = registry
        self.policy = policy
        self.service_floor_s = service_floor_s
        self.use_plans = use_plans
        #: optional :class:`repro.nn.engine.LayerCacheConfig`; when set,
        #: each worker's plan gains a :class:`LayerCache` and batches are
        #: served prefix → per-row probe → partial-batch suffix.  ``None``
        #: (the default) keeps the execute path bit-for-bit unchanged.
        self.layer_cache = layer_cache
        #: model -> live LayerCache (populated lazily by workers)
        self.layer_caches: Dict[str, LayerCache] = {}
        #: optional :class:`repro.core.procpool.ProcPoolExecutor`; when set,
        #: assembled batches execute in a worker *process* (weights in shared
        #: memory) instead of this thread, and the in-parent plan is skipped
        self.pool = pool
        self.clock = clock
        self.tracer = tracer if tracer is not None else get_tracer()
        self.profile_layers = profile_layers
        #: optional :class:`repro.sched.SchedPolicy` (or its name); when set,
        #: per-model queues become EDF/priority queues, batch size and window
        #: are decided online, and expired requests are rejected before
        #: forward.  ``None`` keeps the original fixed path bit-for-bit.
        self.sched = make_policy(sched) if sched is not None else None
        #: measured per-model latency curve driving the adaptive policy;
        #: shared with the owning server/gateway when they pass one in
        self.latency = latency if latency is not None else LatencyModel()
        if metrics is not None:
            self._batch_size = metrics.histogram(
                "djinn_batch_size",
                "Inputs per executed forward pass, per model.",
                ("model",), buckets=BATCH_SIZE_BUCKETS)
            self._expired = metrics.counter(
                "djinn_sched_expired_total",
                "Requests rejected in queue: deadline expired before forward.",
                ("model",))
            self._stage_seconds = metrics.counter(
                "djinn_stage_seconds_total",
                "Request-weighted seconds spent per serving stage, per model.",
                ("model", "stage"))
            self._fast_hits = metrics.counter(
                "djinn_fast_path_total",
                "Requests served by the batch-1 fast path (no queue handoff).",
                ("model",))
            self.latency.seed_from_metrics(metrics)
        else:
            self._batch_size = None
            self._expired = None
            self._stage_seconds = None
            self._fast_hits = None
        if metrics is not None and layer_cache is not None:
            # registered only when the cache is armed so a cache-off
            # executor's metrics dump stays byte-identical to older builds
            self._layer_cache_events = metrics.counter(
                "djinn_layer_cache_events_total",
                "Layer-cache probe outcomes, per model and event "
                "(hit|miss|collision).", ("model", "event"))
            self._layer_cache_fidelity = metrics.gauge(
                "djinn_layer_cache_fidelity",
                "Worst accepted hit distance (max |cached - probed| over "
                "the split activation), per model.", ("model",))
        else:
            self._layer_cache_events = None
            self._layer_cache_fidelity = None
        self._queues: Dict[str, Queue] = {}
        self._workers: Dict[str, threading.Thread] = {}
        self._lock = threading.Lock()
        self._closed = False
        #: batch sizes actually executed, per model (observability/tests)
        self.executed_batches: Dict[str, List[int]] = {}
        #: models whose parent-side plan failed to compile; the fast path
        #: stops re-trying them (the queue path serves them instead)
        self._fast_off: set = set()

    # ------------------------------------------------------------ lifecycle
    def _ensure_worker(self, model: str) -> Queue:
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            if model not in self._queues:
                self.registry.get(model)  # fail fast on unknown models
                queue = EdfQueue() if self.sched is not None else Queue()
                self._queues[model] = queue
                # setdefault: a concurrent batch-1 fast-path hit may already
                # have recorded rows here before the first enqueue
                self.executed_batches.setdefault(model, [])
                worker = threading.Thread(
                    target=self._run_worker, args=(model, queue), daemon=True,
                    name=f"djinn-batch-{model}",
                )
                self._workers[model] = worker
                worker.start()
            return self._queues[model]

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            queues = list(self._queues.values())
        for queue in queues:
            queue.put(None)  # wake workers for shutdown
        for worker in self._workers.values():
            worker.join(timeout=5.0)

    # -------------------------------------------------------------- submit
    def _enqueue(self, model: str, inputs: Optional[np.ndarray],
                 trace: Optional[Tuple[int, int]],
                 qos: Optional[Tuple[float, int, str]] = None,
                 app=None, raw=None, row_hint: int = 1) -> _Pending:
        # queue time starts when the caller hands the request over, not
        # after worker/bookkeeping setup — the gap is queueing, not limbo
        enqueue_s = self.clock()
        queue = self._ensure_worker(model)
        deadline_s, priority, tenant = qos if qos is not None \
            else (float("inf"), 0, "")
        # no forced copy: the planned path gathers payloads straight into
        # the arena, the legacy path concatenates — neither needs contiguity
        if inputs is not None:
            inputs = np.asarray(inputs, dtype=np.float32)
        pending = _Pending(inputs, trace, enqueue_s,
                           deadline_s=deadline_s, priority=priority,
                           tenant=tenant, app=app, raw=raw, row_hint=row_hint)
        queue.put(pending)
        pending.event.wait()
        if pending.error is not None:
            pending.consumed.set()  # unblock the worker's lease barrier
            raise pending.error
        assert app is not None or pending.result is not None
        return pending

    def submit(self, model: str, inputs: np.ndarray,
               trace: Optional[Tuple[int, int]] = None,
               qos: Optional[Tuple[float, int, str]] = None) -> np.ndarray:
        """Enqueue ``inputs`` (n, *input_shape); blocks until results ready.

        Returns an array the caller owns: arena-backed slices are copied out
        (and the lease released) before returning; legacy slices are durable
        read-only views of the batch output.  ``trace`` is an optional
        ``(trace_id, parent_span_id)`` pair; when present, the request's
        queue wait and the batch it lands in are recorded as spans of that
        trace.  ``qos`` is an optional ``(deadline_s, priority, tenant)``
        triple (deadline absolute on this executor's clock); it only takes
        effect when a scheduling policy is armed, and an expired request
        raises :class:`repro.sched.DeadlineExceededError` instead of
        running.
        """
        fast = self._try_fast(model, inputs=inputs, trace=trace, qos=qos)
        if fast is not _FAST_MISS:
            with fast:
                return fast.outputs.copy()
        pending = self._enqueue(model, inputs, trace, qos)
        result = pending.result
        if pending.arena:
            result = result.copy()
        pending.consumed.set()
        return result

    def submit_lease(self, model: str, inputs: np.ndarray,
                     trace: Optional[Tuple[int, int]] = None,
                     qos: Optional[Tuple[float, int, str]] = None) -> ResultLease:
        """Like :meth:`submit` but zero-copy: returns a :class:`ResultLease`
        whose ``outputs`` view the batch result in place.  The caller must
        ``release()`` (or exit the context manager) promptly — on the
        planned path the model's worker holds the arena until then (a fast-
        path lease holds the parent-side plan instead; same contract).
        """
        fast = self._try_fast(model, inputs=inputs, trace=trace, qos=qos)
        if fast is not _FAST_MISS:
            return fast
        return ResultLease(self._enqueue(model, inputs, trace, qos))

    def submit_app(self, model: str, app, raw,
                   trace: Optional[Tuple[int, int]] = None,
                   qos: Optional[Tuple[float, int, str]] = None,
                   row_hint: int = 1):
        """Raw-payload path: the server owns the whole Tonic pipeline.

        ``raw`` is the decoded application payload (float image(s), audio
        samples, token text); ``app`` supplies the ``preprocess_batch`` /
        ``postprocess_batch`` kernels, which run batched in the worker
        context alongside every other coalesced raw request.  Returns the
        postprocessed application answer (a plain Python object — no
        arena lease to release).  ``row_hint`` is the submitter's estimate
        of the DNN rows this payload expands to, used only for batch
        assembly before preprocess runs.
        """
        fast = self._try_fast(model, trace=trace, qos=qos, app=app, raw=raw)
        if fast is not _FAST_MISS:
            return fast
        pending = self._enqueue(model, None, trace, qos,
                                app=app, raw=raw, row_hint=row_hint)
        pending.consumed.set()  # nothing leased: the worker postprocessed
        return pending.result_obj

    # ----------------------------------------------------------- fast path
    def _try_fast(self, model: str, inputs: Optional[np.ndarray] = None,
                  trace: Optional[Tuple[int, int]] = None,
                  qos: Optional[Tuple[float, int, str]] = None,
                  app=None, raw=None):
        """Batch-1 fast path: serve the request inline on the calling thread.

        When the model's queue is empty and a parent-side plan lock is
        free, the queue handoff (enqueue, worker wake-up, coalescing
        window, two context switches) — and, under a proc pool, the slot
        ring — are pure overhead for a batch of one.  This runs
        preprocess, the planned forward, and postprocess right here and
        returns the result: a :class:`_FastLease` for tensor submissions,
        the postprocessed answer for app submissions.  ``_FAST_MISS``
        means the caller takes the normal queue path.  It declines
        whenever inline execution could change semantics: queued work
        (coalescing wins), a service floor (pacing lives in the worker),
        an armed fault plan (hook order must stay deterministic per seed),
        an un-plannable model, or an already-expired deadline (the EDF
        queue owns typed rejection).
        """
        if (not self.use_plans or self.service_floor_s
                or faultsite.active is not None or self._closed
                or self.layer_cache is not None
                or model in self._fast_off):
            # (an armed layer cache declines too: probes live in the
            # worker's serve path and must see every request)
            return _FAST_MISS
        if (qos is not None and self.sched is not None
                and np.isfinite(qos[0]) and self.clock() >= qos[0]):
            return _FAST_MISS
        queue = self._queues.get(model)
        if queue is not None:
            depth = queue.depth_rows() if isinstance(queue, EdfQueue) \
                else queue.qsize()
            if depth:
                return _FAST_MISS
        tracer = self.tracer
        traced = tracer.enabled and trace is not None
        enter = self.clock()
        pre_start = pre_end = 0.0
        if app is not None:
            # preprocess errors propagate to the submitter as typed
            # per-request failures, exactly like the queue path's
            pre_start = self.clock()
            inputs = app.preprocess(raw)
            pre_end = self.clock()
        inputs = np.asarray(inputs, dtype=np.float32)
        rows = len(inputs)
        if not rows or rows > self.policy.max_batch:
            return _FAST_MISS  # oversize rides the legacy stacked path
        try:
            plan = self.registry.plan(model, rows)
        except KeyError:
            raise  # unknown model: same failure as _ensure_worker's
        except Exception:
            self._fast_off.add(model)
            return _FAST_MISS
        net = self.registry.get(model)
        sample_shape = tuple(net.input_shape)
        if tuple(inputs.shape[1:]) != sample_shape:
            raise ValueError(
                f"request payload shape {inputs.shape[1:]} does not match "
                f"model input shape {sample_shape}")
        if not plan.lock.acquire(blocking=False):
            return _FAST_MISS  # a concurrent batch owns the arena
        leased = False
        try:
            np.copyto(plan.input_view(rows), inputs)
            timer = (LayerTimer(self.clock)
                     if traced and self.profile_layers else None)
            forward_start = self.clock()
            outputs = plan.execute(rows, timer=timer)
            forward_end = self.clock()
            self.latency.observe(model, rows, forward_end - forward_start)
            self.executed_batches.setdefault(model, []).append(rows)
            if self._batch_size is not None:
                self._batch_size.labels(model=model).observe(rows)
            if self._fast_hits is not None:
                self._fast_hits.labels(model=model).inc()
            # the fast path's dispatch work (asarray, plan lookup, lock,
            # copy-in) is its batch assembly — account it like the worker's
            # so fast-path traces stay gap-free for the cost ledger
            assemble_from = pre_end if app is not None else enter
            stage = self._stage_seconds
            if stage is not None:
                stage.labels(model=model, stage="net.forward").inc(
                    forward_end - forward_start)
                stage.labels(model=model, stage="batch.assemble").inc(
                    max(0.0, forward_start - assemble_from))
            if traced:
                tid, parent = trace
                if app is not None:
                    tracer.add_span("app.preprocess", pre_start, pre_end,
                                    tid, parent, category="app",
                                    model=model, rows=rows)
                tracer.add_span("batch.assemble", assemble_from,
                                forward_start, tid, parent, category="batch",
                                batch_size=rows, requests=1)
                fspan = tracer.add_span("net.forward", forward_start,
                                        forward_end, tid, parent,
                                        category="compute", model=model,
                                        batch_size=rows)
                if timer is not None:
                    timer.emit_spans(tracer, tid, fspan.span_id)
            if app is not None:
                self.latency.observe(f"{model}:preprocess", rows,
                                     pre_end - pre_start)
                if stage is not None:
                    stage.labels(model=model, stage="preprocess").inc(
                        pre_end - pre_start)
                post_start = self.clock()
                if stage is not None:
                    stage.labels(model=model, stage="batch.assemble").inc(
                        max(0.0, post_start - forward_end))
                if traced:
                    # post-forward bookkeeping (metrics, span emission) is
                    # the fast path's batch disassembly — keep it covered
                    tracer.add_span("batch.scatter", forward_end, post_start,
                                    tid, parent, category="batch",
                                    batch_size=rows)
                result = app.postprocess_batch(outputs, [raw], [rows])[0]
                post_end = self.clock()
                self.latency.observe(f"{model}:postprocess", rows,
                                     post_end - post_start)
                if stage is not None:
                    stage.labels(model=model, stage="postprocess").inc(
                        post_end - post_start)
                if traced:
                    tracer.add_span("app.postprocess", post_start, post_end,
                                    tid, parent, category="app", model=model)
                return result
            # a fresh slice view: the read-only flag must not stick to the
            # plan's own output slab (the next execute writes into it)
            view = outputs[0:rows]
            if view.flags.writeable:
                view.flags.writeable = False  # consumers copy, never mutate
            delivered = self.clock()
            if stage is not None:
                stage.labels(model=model, stage="batch.assemble").inc(
                    max(0.0, delivered - forward_end))
            if traced:
                # post-forward bookkeeping (metrics, span emission, view
                # hand-out) is the fast path's batch disassembly; respond
                # accounting takes over at the delivered stamp
                tracer.add_span("batch.scatter", forward_end, delivered,
                                tid, parent, category="batch",
                                batch_size=rows)
            lease = _FastLease(view, delivered, plan.lock)
            leased = True  # lock ownership moved into the lease
            return lease
        finally:
            if not leased:
                plan.lock.release()

    # -------------------------------------------------------------- worker
    def _collect(self, queue: Queue) -> List[_Pending]:
        """Block for the first request, then coalesce within the window.

        The window is anchored at the *first request's enqueue time*, not at
        worker wake-up: under contention the worker can pick the request up
        late (lease barriers, floor sleeps, GIL), and re-anchoring at wake-up
        silently extended every window by that drift — each queued request
        paid the wait twice.
        """
        first = queue.get()
        if first is None:
            return []
        batch = [first]
        rows = item_rows(first)
        deadline = first.enqueue_s + self.policy.timeout_ms / 1e3
        while rows < self.policy.max_batch:
            remaining = deadline - self.clock()
            if remaining <= 0:
                break
            try:
                item = queue.get(timeout=remaining)
            except Empty:
                break
            if item is None:
                queue.put(None)  # keep shutdown signal visible
                break
            batch.append(item)
            rows += item_rows(item)
        return batch

    @staticmethod
    def _gather(plan, batch: List[_Pending], rows: int,
                sample_shape: Tuple[int, ...]) -> None:
        """Copy request payloads into the plan's input slab, in order."""
        slab = plan.input_view(rows)
        offset = 0
        for pending in batch:
            arr = pending.inputs
            if tuple(arr.shape[1:]) != sample_shape:
                # np.copyto would silently broadcast a wrong-width payload;
                # fail the batch the way np.concatenate would have
                raise ValueError(
                    f"request payload shape {arr.shape[1:]} does not match "
                    f"model input shape {sample_shape}")
            n = arr.shape[0]
            np.copyto(slab[offset:offset + n], arr)
            offset += n

    def _active_models(self) -> int:
        """Models with queued work right now (drives co-scheduling)."""
        with self._lock:
            queues = list(self._queues.values())
        count = 0
        for queue in queues:
            if isinstance(queue, EdfQueue) and queue.depth_rows():
                count += 1
        return max(count, 1)

    def _reject_expired(self, model: str, expired: List[_Pending]) -> None:
        """Deliver typed rejections to requests that died in queue."""
        now = self.clock()
        tracer = self.tracer
        for pending in expired:
            late = now - pending.deadline_s
            if not np.isfinite(late):
                late = 0.0
            late = max(0.0, late)
            if tracer.enabled and pending.trace is not None:
                tid, parent = pending.trace
                tracer.add_span("sched.expire", pending.enqueue_s, now,
                                tid, parent, category="sched", model=model,
                                late_ms=round(late * 1e3, 3))
            pending.error = DeadlineExceededError(model, late)
            pending.event.set()
        if self._expired is not None:
            self._expired.labels(model=model).inc(len(expired))

    def _collect_sched(self, model: str,
                       queue: EdfQueue) -> Tuple[List[_Pending], float]:
        """Policy-driven assembly: EDF order, online batch size, expiry.

        Returns the batch plus the time assembly began — the anchor for
        ``sched.wait`` spans (policy-imposed wait, vs. backlog wait which is
        the rest of ``backend.queue``).
        """
        collect_start = self.clock()
        while True:
            batch, expired = queue.collect(
                self.sched, clock=self.clock,
                est_s=lambda rows: self.latency.estimate_s(model, rows),
                max_batch=self.policy.max_batch,
                timeout_s=self.policy.timeout_ms / 1e3,
                active_models=self._active_models)
            if expired:
                self._reject_expired(model, expired)
            if batch:
                return batch, collect_start
            if queue.finished:
                return [], collect_start

    # ------------------------------------------------------------ app stages
    def _preprocess_stage(self, model: str, batch: List[_Pending]):
        """Stage 1 of the app pipeline: batched server-side preprocess.

        Runs *before* the plan lock is taken (preprocess needs no arena).
        Returns ``(batch, pre_start, pre_end, deferred)``: the surviving
        requests — a poisoned raw payload errors out individually, the
        rest of the batch proceeds — the stage's extent (``0.0, 0.0`` when
        the batch carried no raw payloads), and whether preprocessing was
        deferred into the proc-pool worker process (slot-eligible raw
        payloads ship as raw parts and are preprocessed in the shm slot).
        """
        if not any(p.app is not None for p in batch):
            return batch, 0.0, 0.0, False
        pre_start = self.clock()
        injector = faultsite.active
        if injector is not None:
            survivors = []
            for p in batch:
                if p.app is None:
                    survivors.append(p)
                    continue
                try:
                    injector.on_preprocess(model)
                except Exception as exc:
                    p.error = exc
                    p.event.set()
                    p.consumed.set()
                else:
                    survivors.append(p)
            batch = survivors
            if not batch:
                return batch, pre_start, self.clock(), False
        pool = self.pool
        if pool is not None and len(batch) <= pool.max_batch:
            raw_shape = getattr(pool, "raw_item_shape", lambda m: None)(model)
            if raw_shape is not None and all(
                    p.app is not None and isinstance(p.raw, np.ndarray)
                    and tuple(p.raw.shape) == raw_shape for p in batch):
                # preprocess moves into the worker process: each payload
                # ships as one raw slot part (1 raw item -> 1 DNN row for
                # slot-eligible shapes), parent-side cost is bookkeeping
                for p in batch:
                    p.raw_parts = [np.asarray(p.raw, dtype=np.float32)]
                return batch, pre_start, self.clock(), True
        by_app: Dict[int, Tuple[object, List[_Pending]]] = {}
        for p in batch:
            if p.app is not None:
                by_app.setdefault(id(p.app), (p.app, []))[1].append(p)
        n_raw = 0
        rows_pre = 0
        failed = set()
        for app, group in by_app.values():
            try:
                inputs, counts = app.preprocess_batch([p.raw for p in group])
                inputs = np.asarray(inputs, dtype=np.float32)
                offset = 0
                for p, count in zip(group, counts):
                    p.inputs = inputs[offset:offset + count]
                    offset += count
            except Exception:
                # the vectorized call failed somewhere inside the block;
                # re-run per item so only the poisoned payload errors out
                for p in group:
                    try:
                        p.inputs = np.asarray(app.preprocess(p.raw),
                                              dtype=np.float32)
                    except Exception as exc:
                        p.error = exc
                        p.event.set()
                        p.consumed.set()
                        failed.add(id(p))
            for p in group:
                if id(p) not in failed:
                    n_raw += 1
                    rows_pre += len(p.inputs)
        if failed:
            batch = [p for p in batch if id(p) not in failed]
        pre_end = self.clock()
        if rows_pre:
            self.latency.observe(f"{model}:preprocess", rows_pre,
                                 pre_end - pre_start)
        if self._stage_seconds is not None and n_raw:
            self._stage_seconds.labels(model=model, stage="preprocess").inc(
                (pre_end - pre_start) * n_raw)
        tracer = self.tracer
        if tracer.enabled:
            for p in batch:
                if p.app is not None and p.trace is not None:
                    tid, parent = p.trace
                    tracer.add_span("app.preprocess", pre_start, pre_end,
                                    tid, parent, category="app", model=model,
                                    rows=len(p.inputs))
        return batch, pre_start, pre_end, False

    def _postprocess_stage(self, model: str, batch: List[_Pending]) -> None:
        """Stage 3 of the app pipeline: batched postprocess.

        App waiters receive their final application answer instead of an
        arena view — the view is consumed *here*, worker-side, so those
        waiters never participate in the lease barrier.  A failing
        postprocess falls back to the per-item loop so only the offending
        request errors.
        """
        apps = [p for p in batch if p.app is not None]
        if not apps:
            return
        post_start = self.clock()
        by_app: Dict[int, Tuple[object, List[_Pending]]] = {}
        for p in apps:
            by_app.setdefault(id(p.app), (p.app, []))[1].append(p)
        rows_post = 0
        for app, group in by_app.values():
            views = [p.result for p in group]
            counts = [len(view) for view in views]
            block = views[0] if len(views) == 1 \
                else np.concatenate(views, axis=0)
            try:
                results = app.postprocess_batch(
                    block, [p.raw for p in group], counts)
                for p, result in zip(group, results):
                    p.result_obj = result
            except Exception:
                for p, view in zip(group, views):
                    try:
                        p.result_obj = app.postprocess(view, p.raw)
                    except Exception as exc:
                        p.error = exc
            rows_post += sum(counts)
        post_end = self.clock()
        for p in apps:
            p.result = None
            p.arena = False
            p.delivered_s = post_end
            p.consumed.set()  # arena claim released worker-side
        self.latency.observe(f"{model}:postprocess", rows_post,
                             post_end - post_start)
        if self._stage_seconds is not None:
            self._stage_seconds.labels(model=model, stage="postprocess").inc(
                (post_end - post_start) * len(apps))
        tracer = self.tracer
        if tracer.enabled:
            for p in apps:
                if p.trace is not None:
                    tid, parent = p.trace
                    tracer.add_span("app.postprocess", post_start, post_end,
                                    tid, parent, category="app", model=model)

    def _run_worker(self, model: str, queue) -> None:
        net = self.registry.get(model)
        tracer = self.tracer
        plan = None
        if self.use_plans and self.pool is None:
            # with a proc pool the arena lives in the worker process; no
            # parent-side plan (and no parent-side arena allocation) needed
            try:
                plan = self.registry.plan(model, self.policy.max_batch)
            except Exception:  # un-plannable nets serve via the legacy path
                plan = None
        cache = None
        if plan is not None and self.layer_cache is not None:
            try:
                cache = LayerCache.from_config(plan, self.layer_cache)
            except PlanError:  # no safe split: serve uncached
                cache = None
            else:
                self.layer_caches[model] = cache
        sample_shape = tuple(net.input_shape)
        while True:
            collect_start = 0.0
            if self.sched is not None:
                batch, collect_start = self._collect_sched(model, queue)
            else:
                batch = self._collect(queue)
            if not batch:
                return
            batch, pre_start, pre_end, deferred = \
                self._preprocess_stage(model, batch)
            if not batch:
                continue  # every raw payload in the batch was poisoned
            had_pre = pre_end > 0.0
            rows = sum(len(p.raw_parts) if p.inputs is None else len(p.inputs)
                       for p in batch)
            # _collect admits one oversize request past max_batch; those
            # batches overflow the arena (or pool slot) and take the legacy
            # stacked path
            use_pool = self.pool is not None and rows <= self.pool.max_batch
            use_plan = plan is not None and rows <= plan.max_batch
            lease = None
            if use_plan:
                plan.lock.acquire()
            try:
                if faultsite.active is not None:
                    faultsite.active.on_batch(model)
                start = self.clock()
                # with an app preprocess stage in front, queueing ends when
                # preprocess picks the request up — the stages stay exclusive
                queue_end = pre_start if had_pre else start
                traced = ([p for p in batch if p.trace is not None]
                          if tracer.enabled else [])
                for pending in traced:
                    tid, parent = pending.trace
                    qspan = tracer.add_span("backend.queue", pending.enqueue_s,
                                            queue_end, tid, parent,
                                            category="queue", model=model)
                    if self.sched is not None:
                        wait_from = max(pending.enqueue_s, collect_start)
                        if queue_end > wait_from:
                            tracer.add_span("sched.wait", wait_from, queue_end,
                                            tid, qspan.span_id,
                                            category="sched", model=model)
                if use_plan:
                    self._gather(plan, batch, rows, sample_shape)
                elif not use_pool:
                    stacked = np.concatenate([p.inputs for p in batch], axis=0)
                timer = (LayerTimer(self.clock)
                         if traced and self.profile_layers else None)
                served = None
                forward_start = self.clock()
                if use_plan:
                    if cache is not None:
                        served = cache.serve(rows, timer=timer,
                                             clock=self.clock)
                        outputs = served.outputs
                    else:
                        outputs = plan.execute(rows, timer=timer)
                elif use_pool:
                    # gather happens directly into the shm slot; the result
                    # stays pinned there under the lease until every waiter
                    # has consumed its view.  A deferred batch ships *raw*
                    # parts: the worker process preprocesses in-slot before
                    # its forward (stage 1 parallelism across pool workers).
                    if deferred:
                        lease = self.pool.submit_parts(
                            model,
                            [part for p in batch for part in p.raw_parts],
                            raw=True)
                    else:
                        lease = self.pool.submit_parts(
                            model, [p.inputs for p in batch])
                    outputs = lease.outputs
                else:
                    outputs = net.forward(stacked, timer=timer)
                forward_end = self.clock()
                if self.service_floor_s:
                    # pace before the post-forward accounting so the paced
                    # idle stays out of the scatter span (it is injected
                    # device time, honestly left unattributed)
                    remaining = self.service_floor_s - (self.clock() - start)
                    if remaining > 0:
                        time.sleep(remaining)
                post_start = self.clock()
                # refine the measured latency curve on every executed batch
                self.latency.observe(model, rows, forward_end - forward_start)
                for pending in traced:
                    # assemble emitted late so its extent can run right up to
                    # the forward (gather + timer setup, gap-free)
                    tid, parent = pending.trace
                    tracer.add_span("batch.assemble", start, forward_start,
                                    tid, parent, category="batch",
                                    batch_size=rows, requests=len(batch))
                    fspan = tracer.add_span("net.forward", forward_start,
                                            forward_end, tid, parent,
                                            category="compute", model=model,
                                            batch_size=rows)
                    if served is not None:
                        # nested child of net.forward: the cost ledger's
                        # deepest-span-wins sweep carves the probe window
                        # out of the forward's exclusive time
                        tracer.add_span("engine.cache", served.probe_start,
                                        served.probe_end, tid, fspan.span_id,
                                        category="compute", model=model,
                                        hits=served.hits,
                                        misses=served.misses)
                    if timer is not None:
                        timer.emit_spans(tracer, tid, fspan.span_id)
                self.executed_batches[model].append(rows)
                if self._batch_size is not None:
                    self._batch_size.labels(model=model).observe(rows)
                offset = 0
                for pending in batch:
                    n = (len(pending.raw_parts) if pending.inputs is None
                         else len(pending.inputs))
                    view = outputs[offset:offset + n]
                    if view.flags.writeable:
                        view.flags.writeable = False  # consumers copy, never mutate
                    # cache-served outputs are an owned assembled array, not
                    # arena slabs — the views stay durable past the barrier
                    pending.arena = ((use_plan and served is None)
                                     or lease is not None)
                    pending.result = view
                    offset += n
                if served is not None:
                    ev = self._layer_cache_events
                    if ev is not None:
                        if served.hits:
                            ev.labels(model=model, event="hit").inc(
                                served.hits)
                        if served.misses:
                            ev.labels(model=model, event="miss").inc(
                                served.misses)
                        if served.collisions:
                            ev.labels(model=model, event="collision").inc(
                                served.collisions)
                        self._layer_cache_fidelity.labels(model=model).set(
                            served.fidelity_max)
                if self._stage_seconds is not None:
                    # request-weighted: each waiter experienced the assemble
                    # and forward; queue time is summed per request.  Stages
                    # are exclusive (matching the cost ledger): the policy
                    # wait slice goes to sched.wait, not backend.queue too.
                    stage = self._stage_seconds
                    if self.sched is not None and collect_start:
                        queue_s = sum(
                            max(0.0, min(queue_end, collect_start)
                                - p.enqueue_s)
                            for p in batch)
                        wait_s = sum(
                            max(0.0, queue_end - max(p.enqueue_s, collect_start))
                            for p in batch)
                        if wait_s > 0:
                            stage.labels(model=model, stage="sched.wait").inc(wait_s)
                    else:
                        queue_s = sum(max(0.0, queue_end - p.enqueue_s)
                                      for p in batch)
                    stage.labels(model=model, stage="backend.queue").inc(queue_s)
                    forward_s = forward_end - forward_start
                    if served is not None:
                        # stages stay exclusive: the probe window moves from
                        # net.forward into engine.cache
                        probe_s = max(0.0, min(forward_s,
                                               served.probe_end
                                               - served.probe_start))
                        forward_s -= probe_s
                        stage.labels(model=model, stage="engine.cache").inc(
                            probe_s * len(batch))
                    stage.labels(model=model, stage="net.forward").inc(
                        forward_s * len(batch))
                delivered = self.clock()
                for pending in batch:
                    pending.delivered_s = delivered
                for pending in traced:
                    # batch disassembly: accounting + handing each waiter its
                    # result view, the tail of the batching overhead
                    tid, parent = pending.trace
                    tracer.add_span("batch.scatter", post_start, delivered,
                                    tid, parent, category="batch",
                                    batch_size=rows)
                if self._stage_seconds is not None:
                    self._stage_seconds.labels(
                        model=model, stage="batch.assemble").inc(
                        ((forward_start - start) + (delivered - post_start))
                        * len(batch))
                self._postprocess_stage(model, batch)
            except Exception as exc:  # deliver failures to every waiter
                for pending in batch:
                    pending.error = exc
                    pending.consumed.set()  # nothing leased on failure
            finally:
                for pending in batch:
                    pending.event.set()
                if use_plan or lease is not None:
                    # lease barrier: the arena / shm slot is about to be
                    # reused, so wait until every consumer has
                    # copied/serialized its view
                    deadline = time.monotonic() + self.LEASE_TIMEOUT_S
                    try:
                        for pending in batch:
                            pending.consumed.wait(
                                timeout=max(0.0, deadline - time.monotonic()))
                    finally:
                        if use_plan:
                            plan.lock.release()
                        if lease is not None:
                            lease.release()
