"""Server-side dynamic batching.

Section 5.1 of the paper batches multiple DNN inputs into one larger GPU
GEMM to raise occupancy and throughput.  This module is the service-side
mechanism: per-model queues collect concurrent requests until ``max_batch``
inputs are buffered or ``timeout_ms`` elapses, then execute them as a single
forward pass and scatter the results back to the waiting requests.

On the numpy substrate the win is BLAS efficiency rather than GPU occupancy,
but the mechanism (and its latency/throughput trade-off, which
``benchmarks/bench_ablation_batch_policy.py`` sweeps) is the same.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from queue import Empty, Queue
from typing import Dict, List, Optional

import numpy as np

from .registry import ModelRegistry

__all__ = ["BatchPolicy", "BatchingExecutor"]


@dataclass(frozen=True)
class BatchPolicy:
    """How long to wait and how much to coalesce."""

    max_batch: int = 16
    timeout_ms: float = 2.0

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.timeout_ms < 0:
            raise ValueError(f"timeout_ms must be >= 0, got {self.timeout_ms}")


class _Pending:
    """One submitted request waiting for its slice of a batched result."""

    __slots__ = ("inputs", "event", "result", "error")

    def __init__(self, inputs: np.ndarray):
        self.inputs = inputs
        self.event = threading.Event()
        self.result: Optional[np.ndarray] = None
        self.error: Optional[Exception] = None


class BatchingExecutor:
    """Per-model batching queues with one worker thread per model.

    ``service_floor_s`` imposes a minimum wall-clock time per executed
    batch (compute + GIL-released sleep), pacing each worker like a serial
    device — see :class:`repro.core.server.DjinnServer`.
    """

    def __init__(self, registry: ModelRegistry, policy: BatchPolicy = BatchPolicy(),
                 service_floor_s: float = 0.0):
        self.registry = registry
        self.policy = policy
        self.service_floor_s = service_floor_s
        self._queues: Dict[str, Queue] = {}
        self._workers: Dict[str, threading.Thread] = {}
        self._lock = threading.Lock()
        self._closed = False
        #: batch sizes actually executed, per model (observability/tests)
        self.executed_batches: Dict[str, List[int]] = {}

    # ------------------------------------------------------------ lifecycle
    def _ensure_worker(self, model: str) -> Queue:
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            if model not in self._queues:
                self.registry.get(model)  # fail fast on unknown models
                queue: Queue = Queue()
                self._queues[model] = queue
                self.executed_batches[model] = []
                worker = threading.Thread(
                    target=self._run_worker, args=(model, queue), daemon=True,
                    name=f"djinn-batch-{model}",
                )
                self._workers[model] = worker
                worker.start()
            return self._queues[model]

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            queues = list(self._queues.values())
        for queue in queues:
            queue.put(None)  # wake workers for shutdown
        for worker in self._workers.values():
            worker.join(timeout=5.0)

    # -------------------------------------------------------------- submit
    def submit(self, model: str, inputs: np.ndarray) -> np.ndarray:
        """Enqueue ``inputs`` (n, *input_shape); blocks until results ready."""
        queue = self._ensure_worker(model)
        pending = _Pending(np.ascontiguousarray(inputs, dtype=np.float32))
        queue.put(pending)
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    # -------------------------------------------------------------- worker
    def _collect(self, queue: Queue) -> List[_Pending]:
        """Block for the first request, then coalesce within the window."""
        first = queue.get()
        if first is None:
            return []
        batch = [first]
        rows = len(first.inputs)
        deadline = time.monotonic() + self.policy.timeout_ms / 1e3
        while rows < self.policy.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = queue.get(timeout=remaining)
            except Empty:
                break
            if item is None:
                queue.put(None)  # keep shutdown signal visible
                break
            batch.append(item)
            rows += len(item.inputs)
        return batch

    def _run_worker(self, model: str, queue: Queue) -> None:
        net = self.registry.get(model)
        while True:
            batch = self._collect(queue)
            if not batch:
                return
            try:
                start = time.monotonic()
                stacked = np.concatenate([p.inputs for p in batch], axis=0)
                outputs = net.forward(stacked)
                if self.service_floor_s:
                    remaining = self.service_floor_s - (time.monotonic() - start)
                    if remaining > 0:
                        time.sleep(remaining)
                self.executed_batches[model].append(len(stacked))
                offset = 0
                for pending in batch:
                    n = len(pending.inputs)
                    pending.result = outputs[offset : offset + n]
                    offset += n
            except Exception as exc:  # deliver failures to every waiter
                for pending in batch:
                    pending.error = exc
            finally:
                for pending in batch:
                    pending.event.set()
