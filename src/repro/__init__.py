"""repro — a reproduction of *DjiNN and Tonic: DNN as a Service and Its
Implications for Future Warehouse Scale Computers* (Hauswald et al., ISCA'15).

Subpackages
-----------
``repro.nn``      from-scratch numpy DNN framework (the Caffe substitute)
``repro.models``  the 7 Tonic network architectures (Table 1)
``repro.tonic``   Tonic Suite end-to-end applications + synthetic datasets
``repro.core``    the DjiNN service: TCP server, client, protocol, batching
``repro.gpusim``  K40-class GPU performance model (Figures 5-13)
``repro.sim``     discrete-event simulation substrate
``repro.wsc``     WSC designs and TCO analysis (Figures 15-16, Tables 4-6)
"""

__version__ = "1.0.0"

__all__ = ["nn", "models", "tonic", "core", "gpusim", "sim", "wsc", "__version__"]
