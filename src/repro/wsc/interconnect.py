"""Interconnect/network design points (paper Table 6 and §6.4).

Three generations pairing an in-server CPU->GPU interconnect with a network
provisioned to saturate it (assuming the paper's 20% ethernet protocol
overhead):

* PCIe v3 x16 + 16 teamed 10GbE  (the measured baseline)
* PCIe v4 x16 + 9 teamed 40GbE   (cutting-edge at the time)
* QPI x12 links + 8 teamed 400GbE (near-future, 12 GPUs per 2-socket host)

The paper's price columns are partially garbled in the available text, so
the cost factors below are stated assumptions: 40GbE NICs at 2.5x the
10GbE unit price, 400GbE at 8x (near-future pricing, per the paper's
optimistic projections); PCIe v4 adds $250/server, QPI-attached GPU fabric
adds $2000/server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..gpusim.pcie import ethernet_effective_gbs

__all__ = ["InterconnectConfig", "PCIE3_10GBE", "PCIE4_40GBE", "QPI_400GBE", "CONFIGS"]


@dataclass(frozen=True)
class InterconnectConfig:
    """One Table 6 row: in-server link + matched network for a GPU host."""

    name: str
    host_link_gbs: float           # CPU->GPU aggregate inside one server
    nics_per_gpu_host: int
    nic_raw_gbs: float
    nic_cost_factor: float         # vs the $750 10GbE baseline unit
    interconnect_upgrade_per_server: float
    gpus_per_integrated_server: int
    gpus_per_disagg_host: int

    @property
    def network_gbs_per_host(self) -> float:
        """Effective ethernet ingress of one GPU host."""
        return self.nics_per_gpu_host * ethernet_effective_gbs(self.nic_raw_gbs)

    @property
    def host_bottleneck_gbs(self) -> float:
        """The binding data-feed limit of a disaggregated GPU host."""
        return min(self.network_gbs_per_host, self.host_link_gbs)


PCIE3_10GBE = InterconnectConfig(
    name="PCIe v3 + 10GbE",
    host_link_gbs=31.5,            # 2 root complexes x PCIe v3 x16
    nics_per_gpu_host=16,
    nic_raw_gbs=1.25,
    nic_cost_factor=1.0,
    interconnect_upgrade_per_server=0.0,
    gpus_per_integrated_server=12,
    gpus_per_disagg_host=8,
)

PCIE4_40GBE = InterconnectConfig(
    name="PCIe v4 + 40GbE",
    host_link_gbs=63.5,            # 2 x PCIe v4 x16
    nics_per_gpu_host=9,
    nic_raw_gbs=5.0,
    nic_cost_factor=2.5,
    interconnect_upgrade_per_server=250.0,
    gpus_per_integrated_server=12,
    gpus_per_disagg_host=8,
)

QPI_400GBE = InterconnectConfig(
    name="QPI + 400GbE",
    host_link_gbs=307.2,           # 12 point-to-point QPI links
    nics_per_gpu_host=8,
    nic_raw_gbs=50.0,
    nic_cost_factor=8.0,
    interconnect_upgrade_per_server=2000.0,
    gpus_per_integrated_server=12,
    gpus_per_disagg_host=12,
)

CONFIGS: Tuple[InterconnectConfig, ...] = (PCIE3_10GBE, PCIE4_40GBE, QPI_400GBE)
