"""The three WSC design points (paper §6.2-6.3, Figure 14).

*CPU Only* — homogeneous beefy servers run everything.
*Integrated GPU* — the DNN-service portion runs on servers that bundle a
beefy CPU with a fixed 12 GPUs (the homogeneity constraint); a service that
cannot feed 12 GPUs through the host link strands the remainder.
*Disaggregated GPU* — beefy CPU servers keep the non-DNN work; GPUs live in
wimpy-core hosts behind a 16x10GbE network and are provisioned exactly.

Provisioning methodology (per the paper): fix a CPU-only WSC of
``total_servers``; apportion its servers across the workload's services to
obtain per-service throughput targets; then build each GPU design out to
match those targets and compare TCO.

Queries keep their CPU-side pre/post-processing in every design (the red
arrows of the paper's Figure 14): GPU designs accelerate only the DNN
portion, so each service retains beefy-CPU capacity for its pre/post work —
integrated servers supply it from their own sockets, the disaggregated
design provisions separate beefy servers.  This retention is what caps the
NLP workload's TCO improvement near the paper's 4x.  Set
``include_prepost=False`` to model pure-inference provisioning instead
(EXPERIMENTS.md discusses how the two readings bracket the paper's
Figure 15 numbers).

Server counts are integral per service — the quantization is what produces
Figure 15b's crossover, where integrated servers' fixed 12-GPU bundles stop
being wasteful once every service is large enough to fill them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from ..gpusim.appmodel import app_model
from ..gpusim.device import PLATFORM, PlatformSpec
from ..gpusim.multigpu import GpuServerModel
from .costs import CostFactors, Inventory, TcoBreakdown, tco
from .interconnect import PCIE3_10GBE, InterconnectConfig
from .workloads import Workload

__all__ = ["ServicePlan", "DesignResult", "WscDesigner"]


@dataclass(frozen=True)
class ServicePlan:
    """Per-service provisioning detail inside one design."""

    app: str
    target_qps: float
    gpus: float = 0.0
    servers: float = 0.0          # integrated servers or disagg GPU hosts
    gpus_per_server: float = 0.0  # usable GPUs per server (bandwidth-capped)


@dataclass
class DesignResult:
    """One provisioned WSC design with its cost."""

    design: str
    inventory: Inventory
    breakdown: TcoBreakdown
    plans: Dict[str, ServicePlan] = field(default_factory=dict)

    @property
    def total_tco(self) -> float:
        return self.breakdown.total


class WscDesigner:
    """Builds and costs the three designs for a workload mix."""

    def __init__(
        self,
        total_servers: int = 500,
        platform: PlatformSpec = PLATFORM,
        factors: CostFactors = CostFactors(),
        config: InterconnectConfig = PCIE3_10GBE,
        include_prepost: bool = True,
    ):
        if total_servers < 1:
            raise ValueError("total_servers must be positive")
        self.total_servers = total_servers
        self.platform = platform
        self.factors = factors
        self.config = config
        self.include_prepost = include_prepost

    # ------------------------------------------------------------- targets
    def _cpu_query_time(self, app: str) -> float:
        model = app_model(app)
        if self.include_prepost:
            return model.cpu_query_time(self.platform.cpu_core)
        return model.cpu_dnn_time(self.platform.cpu_core)

    def service_targets(self, workload: Workload, dnn_fraction: float,
                        scale: float = 1.0) -> Dict[str, float]:
        """Per-service QPS the CPU-only design delivers (the match target)."""
        cores = self.platform.total_cores
        targets = {}
        for app, share in workload.shares(dnn_fraction).items():
            servers = share * self.total_servers
            targets[app] = servers * cores / self._cpu_query_time(app) * scale
        return targets

    def _prepost_servers(self, app: str, target_qps: float) -> float:
        """Beefy servers a GPU design keeps for this service's pre/post."""
        if not self.include_prepost:
            return 0.0
        per_query = app_model(app).cpu_prepost_time(self.platform.cpu_core)
        return target_qps * per_query / self.platform.total_cores

    def _per_gpu_qps(self, app: str) -> float:
        return GpuServerModel(app_model(app), self.platform).per_gpu_qps()

    # ------------------------------------------------------------- designs
    def cpu_only(self, workload: Workload, dnn_fraction: float,
                 scale: float = 1.0) -> DesignResult:
        """Homogeneous CPU servers; throughput scaling means more servers."""
        servers = self.total_servers * ((1.0 - dnn_fraction) + dnn_fraction * scale)
        inventory = Inventory(beefy_servers=servers, nics=servers)
        plans = {
            app: ServicePlan(app=app, target_qps=qps)
            for app, qps in self.service_targets(workload, dnn_fraction, scale).items()
        }
        return DesignResult("cpu_only", inventory, tco(inventory, self.factors), plans)

    def integrated(self, workload: Workload, dnn_fraction: float,
                   scale: float = 1.0) -> DesignResult:
        """Non-DNN servers plus fixed 12-GPU integrated servers per service."""
        config = self.config
        non_dnn = (1.0 - dnn_fraction) * self.total_servers
        inventory = Inventory(
            beefy_servers=non_dnn,
            nics=non_dnn,
            nic_cost_factor=config.nic_cost_factor,
            upgrade_unit_cost=config.interconnect_upgrade_per_server,
        )
        plans: Dict[str, ServicePlan] = {}
        for app, target in self.service_targets(workload, dnn_fraction, scale).items():
            per_gpu = self._per_gpu_qps(app)
            bw_per_gpu = per_gpu * app_model(app).wire_bytes_per_query  # bytes/s
            usable = min(
                config.gpus_per_integrated_server,
                config.host_link_gbs * 1e9 / bw_per_gpu,
            )
            if target > 0:
                servers = math.ceil(target / (per_gpu * usable))
                # the integrated servers' own CPUs absorb pre/post work;
                # overflow runs on plain beefy servers of the same type
                prepost_extra = math.ceil(
                    max(0.0, self._prepost_servers(app, target) - servers)
                )
            else:
                servers = prepost_extra = 0
            plans[app] = ServicePlan(app, target, gpus=config.gpus_per_integrated_server * servers,
                                     servers=servers + prepost_extra, gpus_per_server=usable)
            inventory = inventory + Inventory(
                beefy_servers=servers + prepost_extra,
                gpus=config.gpus_per_integrated_server * servers,
                nics=servers + prepost_extra,
                nic_cost_factor=config.nic_cost_factor,
                upgraded_servers=servers,
                upgrade_unit_cost=config.interconnect_upgrade_per_server,
            )
        return DesignResult("integrated", inventory, tco(inventory, self.factors), plans)

    def disaggregated(self, workload: Workload, dnn_fraction: float,
                      scale: float = 1.0) -> DesignResult:
        """Non-DNN beefy servers plus exactly-provisioned wimpy GPU hosts."""
        config = self.config
        non_dnn = (1.0 - dnn_fraction) * self.total_servers
        inventory = Inventory(
            beefy_servers=non_dnn,
            nics=non_dnn,
            nic_cost_factor=config.nic_cost_factor,
            upgrade_unit_cost=config.interconnect_upgrade_per_server,
        )
        feed_gbs = config.host_bottleneck_gbs
        plans: Dict[str, ServicePlan] = {}
        for app, target in self.service_targets(workload, dnn_fraction, scale).items():
            per_gpu = self._per_gpu_qps(app)
            bytes_per_query = app_model(app).wire_bytes_per_query
            bw_per_gpu = per_gpu * bytes_per_query
            # one GPU cannot be fed faster than the host's network ingress
            per_gpu_eff = min(per_gpu, feed_gbs * 1e9 / bytes_per_query)
            gpus_per_host = max(1.0, min(config.gpus_per_disagg_host,
                                         feed_gbs * 1e9 / bw_per_gpu))
            gpus = math.ceil(target / per_gpu_eff) if target > 0 else 0
            hosts = math.ceil(gpus / gpus_per_host) if gpus else 0
            prepost = math.ceil(self._prepost_servers(app, target)) if target > 0 else 0
            plans[app] = ServicePlan(app, target, gpus=gpus, servers=hosts,
                                     gpus_per_server=gpus_per_host)
            inventory = inventory + Inventory(
                beefy_servers=prepost,
                wimpy_servers=hosts,
                gpus=gpus,
                nics=hosts * config.nics_per_gpu_host + prepost,
                nic_cost_factor=config.nic_cost_factor,
                upgraded_servers=hosts,
                upgrade_unit_cost=config.interconnect_upgrade_per_server,
            )
        return DesignResult("disaggregated", inventory, tco(inventory, self.factors), plans)

    # ------------------------------------------------------------ combined
    def all_designs(self, workload: Workload, dnn_fraction: float,
                    scale: float = 1.0) -> Dict[str, DesignResult]:
        return {
            "cpu_only": self.cpu_only(workload, dnn_fraction, scale),
            "integrated": self.integrated(workload, dnn_fraction, scale),
            "disaggregated": self.disaggregated(workload, dnn_fraction, scale),
        }
