"""``repro.wsc`` — warehouse-scale computer designs and TCO (paper §6).

The Table 4 cost model, Table 5 workload mixes, Table 6 interconnect
generations, the three WSC design points (CPU-only / integrated GPU /
disaggregated GPU), and the analyses behind Figures 15 and 16.
"""

from .analysis import FutureNetworkPoint, TcoSweepPoint, future_network_study, tco_sweep
from .costs import CostFactors, Inventory, TcoBreakdown, monthly_loan_payment, tco
from .designs import DesignResult, ServicePlan, WscDesigner
from .interconnect import CONFIGS, PCIE3_10GBE, PCIE4_40GBE, QPI_400GBE, InterconnectConfig
from .workloads import IMAGE, MIXED, NLP, WORKLOADS, Workload

__all__ = [
    "FutureNetworkPoint",
    "TcoSweepPoint",
    "future_network_study",
    "tco_sweep",
    "CostFactors",
    "Inventory",
    "TcoBreakdown",
    "monthly_loan_payment",
    "tco",
    "DesignResult",
    "ServicePlan",
    "WscDesigner",
    "CONFIGS",
    "PCIE3_10GBE",
    "PCIE4_40GBE",
    "QPI_400GBE",
    "InterconnectConfig",
    "IMAGE",
    "MIXED",
    "NLP",
    "WORKLOADS",
    "Workload",
]
