"""DNN service workload mixes (paper Table 5).

A workload assigns equal shares of the WSC's DNN-service cycles to its
member applications, exactly as the paper provisions ("given a workload
composed of 70% from the MIXED DNN workload ... we would provision ... 10%
to each of the DNN services").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Workload", "MIXED", "IMAGE", "NLP", "WORKLOADS"]


@dataclass(frozen=True)
class Workload:
    """A named DNN service mix with equal per-service shares."""

    name: str
    apps: Tuple[str, ...]

    def __post_init__(self):
        if not self.apps:
            raise ValueError(f"workload {self.name!r} has no applications")

    def shares(self, dnn_fraction: float) -> Dict[str, float]:
        """Fraction of the total WSC assigned to each service."""
        if not 0.0 <= dnn_fraction <= 1.0:
            raise ValueError(f"dnn_fraction must be in [0, 1], got {dnn_fraction}")
        per_service = dnn_fraction / len(self.apps)
        return {app: per_service for app in self.apps}


MIXED = Workload("MIXED", ("imc", "dig", "face", "asr", "pos", "chk", "ner"))
IMAGE = Workload("IMAGE", ("imc", "dig", "face"))
NLP = Workload("NLP", ("pos", "chk", "ner"))

WORKLOADS: Dict[str, Workload] = {"MIXED": MIXED, "IMAGE": IMAGE, "NLP": NLP}
