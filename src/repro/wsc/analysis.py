"""The paper's §6 experiments: Figure 15's TCO sweeps and Figure 16's
future-network study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..gpusim.appmodel import app_model
from ..gpusim.multigpu import GpuServerModel
from .costs import CostFactors, TcoBreakdown
from .designs import DesignResult, WscDesigner
from .interconnect import CONFIGS, PCIE3_10GBE, InterconnectConfig
from .workloads import Workload

__all__ = ["TcoSweepPoint", "tco_sweep", "FutureNetworkPoint", "future_network_study"]


@dataclass(frozen=True)
class TcoSweepPoint:
    """One x-position of Figure 15: normalized TCO of the three designs."""

    dnn_fraction: float
    cpu_only: float          # always 1.0 (the normalization base)
    integrated: float
    disaggregated: float


def tco_sweep(
    workload: Workload,
    fractions: Sequence[float] = tuple(i / 10 for i in range(1, 11)),
    designer: WscDesigner = None,
) -> List[TcoSweepPoint]:
    """Normalized TCO across DNN-share fractions (one Figure 15 panel)."""
    designer = designer or WscDesigner()
    points = []
    for f in fractions:
        results = designer.all_designs(workload, f)
        base = results["cpu_only"].total_tco
        points.append(
            TcoSweepPoint(
                dnn_fraction=f,
                cpu_only=1.0,
                integrated=results["integrated"].total_tco / base,
                disaggregated=results["disaggregated"].total_tco / base,
            )
        )
    return points


# ---------------------------------------------------------------------------
# Figure 16: what better interconnects buy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FutureNetworkPoint:
    """One interconnect config's outcome for a workload (one Fig 16 group)."""

    config: InterconnectConfig
    performance: float                    # workload throughput vs PCIe v3 design
    breakdowns: Dict[str, TcoBreakdown]   # per design, at the scaled target


def _host_throughput_ratio(app: str, config: InterconnectConfig,
                           designer: WscDesigner) -> float:
    """How much more of this service one disagg GPU host delivers vs v3."""

    def per_host(c: InterconnectConfig) -> float:
        per_gpu = GpuServerModel(app_model(app), designer.platform).per_gpu_qps()
        unconstrained = per_gpu * c.gpus_per_disagg_host
        feed_cap = c.host_bottleneck_gbs * 1e9 / app_model(app).wire_bytes_per_query
        return min(unconstrained, feed_cap)

    return per_host(config) / per_host(PCIE3_10GBE)


def future_network_study(
    workload: Workload,
    dnn_fraction: float = 1.0,
    configs: Sequence[InterconnectConfig] = CONFIGS,
    total_servers: int = 500,
    factors: CostFactors = CostFactors(),
) -> List[FutureNetworkPoint]:
    """Figure 16: grow the WSC to the throughput each network unlocks.

    For each interconnect generation, the workload target is scaled by the
    average per-service gain a disaggregated GPU host realizes from the
    richer network (bandwidth-bound services scale; compute-bound ones
    don't).  The integrated and disaggregated designs are provisioned under
    that generation's interconnect; the CPU-only design must simply buy
    proportionally more servers (it keeps PCIe v3 + 10GbE — more network
    does not make CPUs faster).
    """
    baseline_designer = WscDesigner(total_servers, factors=factors, config=PCIE3_10GBE)
    points = []
    for config in configs:
        designer = WscDesigner(total_servers, factors=factors, config=config)
        ratios = [_host_throughput_ratio(app, config, designer) for app in workload.apps]
        performance = sum(ratios) / len(ratios)
        breakdowns = {
            "cpu_only": baseline_designer.cpu_only(workload, dnn_fraction, scale=performance).breakdown,
            "integrated": designer.integrated(workload, dnn_fraction, scale=performance).breakdown,
            "disaggregated": designer.disaggregated(workload, dnn_fraction, scale=performance).breakdown,
        }
        points.append(FutureNetworkPoint(config=config, performance=performance,
                                         breakdowns=breakdowns))
    return points
