"""TCO cost model (paper Table 4 and §6.3).

Methodology follows the paper's description (inspired by Barroso et al.):
upfront hardware capital expenditures (servers, GPUs, NICs), facility capex
per provisioned watt, financing at 8% over the 3-year amortization period,
and operating costs (facility opex per watt, electricity under PUE, and
monthly maintenance).  One stated assumption the paper leaves implicit:
"server maintenance/operations 5%/month" is charged as 5% of the monthly
amortized hardware cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["CostFactors", "Inventory", "TcoBreakdown", "monthly_loan_payment", "tco"]

HOURS_PER_MONTH = 24 * 365 / 12


@dataclass(frozen=True)
class CostFactors:
    """Table 4, plus component power draws measured on the paper's server."""

    gpu_server_cost: float = 6864.0        # 300W GPU-capable server
    gpu_server_watts: float = 300.0
    gpu_cost: float = 3314.0               # high-end 240W GPU
    gpu_watts: float = 240.0
    wimpy_server_cost: float = 1716.0      # 75W wimpy server
    wimpy_server_watts: float = 75.0
    nic_cost: float = 750.0                # per 10GbE NIC incl. switch share
    capex_per_watt: float = 10.0           # WSC facility capex
    opex_per_watt_month: float = 0.04      # operational expenditures
    pue: float = 1.1
    electricity_per_kwh: float = 0.067
    interest_rate_yearly: float = 0.08
    lifetime_months: int = 36              # server lifetime = loan period
    maintenance_monthly_frac: float = 0.05


@dataclass(frozen=True)
class Inventory:
    """Hardware counts for one WSC design (fluid counts are allowed for
    large fleets; design provisioning applies integer rounding where the
    paper's quantization effects matter)."""

    beefy_servers: float = 0.0
    wimpy_servers: float = 0.0
    gpus: float = 0.0
    nics: float = 0.0
    #: NIC cost multiplier for upgraded networks (Table 6 assumptions)
    nic_cost_factor: float = 1.0
    #: how many servers carry an interconnect upgrade, and its unit cost
    upgraded_servers: float = 0.0
    upgrade_unit_cost: float = 0.0

    def __add__(self, other: "Inventory") -> "Inventory":
        if self.nic_cost_factor != other.nic_cost_factor:
            raise ValueError("cannot add inventories with different NIC pricing")
        if (self.upgrade_unit_cost and other.upgrade_unit_cost
                and self.upgrade_unit_cost != other.upgrade_unit_cost):
            raise ValueError("cannot add inventories with different upgrade pricing")
        return Inventory(
            self.beefy_servers + other.beefy_servers,
            self.wimpy_servers + other.wimpy_servers,
            self.gpus + other.gpus,
            self.nics + other.nics,
            self.nic_cost_factor,
            self.upgraded_servers + other.upgraded_servers,
            self.upgrade_unit_cost or other.upgrade_unit_cost,
        )

    def watts(self, factors: CostFactors) -> float:
        return (
            self.beefy_servers * factors.gpu_server_watts
            + self.wimpy_servers * factors.wimpy_server_watts
            + self.gpus * factors.gpu_watts
        )

    def hardware_cost(self, factors: CostFactors) -> Dict[str, float]:
        return {
            "servers": (
                self.beefy_servers * factors.gpu_server_cost
                + self.wimpy_servers * factors.wimpy_server_cost
                + self.upgraded_servers * self.upgrade_unit_cost
            ),
            "gpus": self.gpus * factors.gpu_cost,
            "network": self.nics * factors.nic_cost * self.nic_cost_factor,
        }


@dataclass
class TcoBreakdown:
    """Lifetime (3-year) TCO split into the components Figure 16 plots."""

    servers: float
    gpus: float
    network: float
    facility: float
    interest: float
    power: float
    opex: float
    maintenance: float

    @property
    def total(self) -> float:
        return (
            self.servers + self.gpus + self.network + self.facility
            + self.interest + self.power + self.opex + self.maintenance
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "servers": self.servers,
            "gpus": self.gpus,
            "network": self.network,
            "facility": self.facility,
            "interest": self.interest,
            "power": self.power,
            "opex": self.opex,
            "maintenance": self.maintenance,
        }


def monthly_loan_payment(principal: float, yearly_rate: float, months: int) -> float:
    """Standard amortized loan payment."""
    if principal < 0:
        raise ValueError("principal must be non-negative")
    if months <= 0:
        raise ValueError("months must be positive")
    monthly_rate = yearly_rate / 12.0
    if monthly_rate == 0:
        return principal / months
    factor = (1 + monthly_rate) ** months
    return principal * monthly_rate * factor / (factor - 1)


def tco(inventory: Inventory, factors: CostFactors = CostFactors()) -> TcoBreakdown:
    """Three-year total cost of ownership of a hardware inventory."""
    hardware = inventory.hardware_cost(factors)
    watts = inventory.watts(factors)
    facility = watts * factors.capex_per_watt
    capex = sum(hardware.values()) + facility

    months = factors.lifetime_months
    payments = monthly_loan_payment(capex, factors.interest_rate_yearly, months) * months
    interest = payments - capex

    power = watts * factors.pue * HOURS_PER_MONTH * months * factors.electricity_per_kwh / 1000.0
    opex = watts * factors.opex_per_watt_month * months
    hw_total = sum(hardware.values())
    maintenance = factors.maintenance_monthly_frac * (hw_total / months) * months

    return TcoBreakdown(
        servers=hardware["servers"],
        gpus=hardware["gpus"],
        network=hardware["network"],
        facility=facility,
        interest=interest,
        power=power,
        opex=opex,
        maintenance=maintenance,
    )
