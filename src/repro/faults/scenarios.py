"""The chaos scenario catalog: named fault plans with known-good shapes.

Each :class:`Scenario` pairs a rule set with the harness configuration it
needs (timeouts below a stall's ``delay_s``, batching on for batch-site
faults, post-load probe rounds for flap schedules).  The catalog is ordered
from "nothing injected" to "everything at once":

* ``baseline`` — no faults; the control run every invariant must pass.
* single-site scenarios — one failure mode each, with a predictable
  client-visible outcome (retried transparently vs. surfaced as one typed
  error) asserted by ``tests/test_chaos.py``.
* ``mixed`` — probability-triggered faults at three sites at once; only
  the end-to-end invariants are asserted, which is the point: whatever
  combination the seed draws, no request may be lost or answered twice.

Event-ordinal comments below rely on the harness's deterministic event
streams: the gateway's startup probe sweep consumes ``server.accept``
events 1..N (N backends) and ``health.probe`` events 1..N before any load,
and each no-fault request contributes two ``INFER_REQUEST`` send events
(client→gateway, then gateway→backend) and two ``INFER_RESPONSE`` send
events (backend→gateway, then gateway→client), in that order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..core.batching import BatchPolicy
from ..core.registry import ModelRegistry
from ..sched import QosConfig
from .harness import ChaosHarness, ChaosReport
from .plan import FaultPlan, FaultRule

__all__ = ["Scenario", "SCENARIOS", "run_scenario"]

#: Small batches + short window keep batching scenarios fast.
_BATCHING = BatchPolicy(max_batch=4, timeout_ms=1.0)


@dataclass(frozen=True)
class Scenario:
    """A named rule set plus the harness knobs it needs to be meaningful."""

    name: str
    description: str
    rules: Tuple[FaultRule, ...]
    #: extra ChaosHarness keyword arguments (timeouts, batching, probes)
    harness: Mapping[str, object] = field(default_factory=dict)

    def plan(self, seed: int = 0) -> FaultPlan:
        return FaultPlan(rules=self.rules, seed=seed, name=self.name)


def _catalog(*scenarios: Scenario) -> Dict[str, Scenario]:
    return {s.name: s for s in scenarios}


SCENARIOS: Dict[str, Scenario] = _catalog(
    Scenario(
        "baseline",
        "No faults at all; every request must succeed.",
        rules=(),
    ),
    Scenario(
        "conn_reset",
        "Gateway→backend sends of requests 1 and 2 die on a connection "
        "reset; the retry budget absorbs both (send events 2 and 5 are the "
        "gateway-side INFER_REQUEST copies).",
        rules=(FaultRule("protocol.send", "reset", scope="INFER_REQUEST",
                         nth=(2, 5)),),
    ),
    Scenario(
        "truncated_response",
        "The gateway's response to request 1 is cut off mid-frame "
        "(INFER_RESPONSE send event 2 is gateway→client); the client sees "
        "one typed connection error and reconnects for request 2.",
        rules=(FaultRule("protocol.send", "truncate", scope="INFER_RESPONSE",
                         nth=(2,), bytes_kept=12),),
    ),
    Scenario(
        "corrupt_response",
        "The first backend→gateway response frame arrives with bad magic; "
        "the gateway treats the protocol desync as a transport failure and "
        "retries on the other backend — invisible to the client.",
        rules=(FaultRule("protocol.send", "corrupt", scope="INFER_RESPONSE",
                         nth=(1,)),),
    ),
    Scenario(
        "corrupt_request",
        "The client's first request frame is corrupted in flight; the "
        "gateway answers with a typed ERROR and drops the connection, so "
        "request 1 fails as a service error and request 2 burns one "
        "connection error finding out before request 3 reconnects.",
        rules=(FaultRule("protocol.send", "corrupt", scope="INFER_REQUEST",
                         nth=(1,)),),
    ),
    Scenario(
        "response_stall_timeout",
        "The first backend→gateway response stalls past the gateway's "
        "backend timeout; the gateway abandons the connection and retries "
        "elsewhere — the late response lands on a closed socket, never a "
        "live one.",
        rules=(FaultRule("protocol.send", "stall", scope="INFER_RESPONSE",
                         nth=(1,), delay_s=0.4),),
        harness={"backend_timeout_s": 0.15},
    ),
    Scenario(
        "client_stall_timeout",
        "The gateway→client response to request 1 stalls past the client's "
        "timeout.  The client MUST tear the connection down: reading the "
        "next frame off that socket would hand request 2 the stale answer "
        "to request 1 (the DjinnClient half-state regression).",
        rules=(FaultRule("protocol.send", "stall", scope="INFER_RESPONSE",
                         nth=(2,), delay_s=0.4),),
        harness={"client_timeout_s": 0.15},
    ),
    Scenario(
        "checkout_refused",
        "Pool checkouts 1 and 3 are refused, marking each backend down in "
        "turn; the second refusal empties the fleet, so the gateway's "
        "fleet-down probe sweep must bring both backends back (2 mark_down "
        "+ 2 mark_up transitions, requests all succeed).",
        rules=(FaultRule("pool.checkout", "refuse", nth=(1, 3)),),
    ),
    Scenario(
        "accept_refused",
        "The backend fleet refuses the gateway's first request-path "
        "connection (accept events 1..2 were the startup probes); the "
        "gateway retries on the other backend.",
        rules=(FaultRule("server.accept", "refuse", scope="djinn", nth=(3,)),),
    ),
    Scenario(
        "backend_crash_mid_batch",
        "With batching on, the forward pass for request 3 dies inside the "
        "batch worker; every waiter on that batch errors, the connection "
        "dies, and the gateway retries the request on the other backend.",
        rules=(FaultRule("batch.execute", "crash", nth=(3,)),),
        harness={"batching": _BATCHING},
    ),
    Scenario(
        "slow_backend",
        "Every executed batch is delayed — a saturated backend.  Nothing "
        "fails; the run just proves delay injection composes with batching "
        "and timeouts that are not hair-triggered.",
        rules=(FaultRule("batch.execute", "delay", every=1, delay_s=0.01),),
        harness={"batching": _BATCHING},
    ),
    Scenario(
        "probe_flap",
        "After the load loop, one probe sweep flaps both backends down "
        "(probe events 3 and 4; 1 and 2 were startup) and the next sweep "
        "recovers them — transitions must equal the injected flaps.",
        rules=(FaultRule("health.probe", "flap", nth=(3, 4)),),
        harness={"probe_rounds": 2},
    ),
    Scenario(
        "recv_reset_client",
        "The client's connection resets while awaiting response 2 — after "
        "the request was sent, so the fleet did the work; the client sees "
        "one typed error and its next request reconnects cleanly.",
        rules=(FaultRule("protocol.recv", "reset", scope="client", nth=(2,)),),
    ),
    Scenario(
        "worker_kill",
        "The shm slot dispatched for request 3 is marked lethal: the "
        "proc-pool worker that draws it dies (os._exit) mid-request.  The "
        "supervisor reaps it, requeues the in-flight slot, and respawns a "
        "replacement — the client sees every request succeed, and the "
        "respawn counter must equal the injected kill count exactly.",
        rules=(FaultRule("proc.dispatch", "kill", nth=(3,)),),
        harness={"workers": "proc:2", "backends": 1},
    ),
    Scenario(
        "stream_drop",
        "Streaming under fire: six sequential 3-chunk streams follow the "
        "unary load; chunk events 2 and 7 are dropped at the backend's "
        "stream.chunk site, aborting streams 1 and 3 with a typed stream "
        "error (the harness stops feeding an aborted stream, so each drop "
        "costs exactly one stream).  The other four streams must finish "
        "with exact transcripts, the client-observed aborts must equal "
        "both the injected drops and djinn_stream_aborted_total, and zero "
        "sessions may remain after the last stream ends.",
        rules=(FaultRule("stream.chunk", "drop", nth=(2, 7)),),
        harness={"requests": 4, "streams": 6, "chunks": 3},
    ),
    Scenario(
        "deadline_storm",
        "QoS under fire: every 4th request carries an impossibly small "
        "deadline (0.0001 ms — already spent by the time any hop sees it) "
        "and is rejected dead-on-arrival at the gateway; two of the "
        "admitted requests are force-shed by the sched.admit fault site.  "
        "Every rejection must be typed (no request lost), and the "
        "client-observed shed/expired counts must equal what the fleet's "
        "counters recorded — a rejection the metrics never saw is a "
        "violation.  Generous 250 ms deadlines on the rest never expire, "
        "keeping the report a pure function of the seed.",
        rules=(FaultRule("sched.admit", "reject", nth=(1, 9)),),
        harness={"batching": _BATCHING, "sched": "adaptive",
                 "qos": QosConfig(admission=True),
                 "deadlines": (250.0, 0.0001, 250.0, 250.0)},
    ),
    Scenario(
        "app_preprocess_poison",
        "Raw-payload serving under fire: six APP_REQUEST frames follow the "
        "unary load, and the server-side preprocess of app requests 2 and 5 "
        "raises on a poisoned payload.  Each poison must surface as exactly "
        "one typed per-request service error — the batch it coalesced into, "
        "the worker serving it, and every other request must be untouched "
        "(lost == 0, all other answers content-checked).",
        rules=(FaultRule("app.preprocess", "error", scope="dig",
                         nth=(2, 5)),),
        harness={"model": "dig", "requests": 4, "app_requests": 6,
                 "batching": _BATCHING},
    ),
    Scenario(
        "cache_poison",
        "The response cache under fire: six byte-identical duplicates of "
        "request 1 follow the unary load with a 4 MiB gateway cache armed, "
        "and the cache probes of duplicates 2 and 5 raise inside the "
        "gateway (probe events 6 and 9; events 1..4 were the unique unary "
        "requests, each a recorded miss).  A poisoned probe must fail "
        "open: the duplicate is forwarded as an uncacheable miss and still "
        "answered correctly, with no hit/miss counter moving — so nothing "
        "may be lost and gateway_cache_hits_total must equal the "
        "duplicates minus the injected probe faults exactly (4 of 6).",
        rules=(FaultRule("cache.probe", "error", nth=(6, 9)),),
        harness={"requests": 4, "dup_requests": 6, "cache_mb": 4.0},
    ),
    Scenario(
        "mixed",
        "Probability-triggered resets, truncations, and checkout refusals "
        "all at once over a longer run; whatever the seed draws, the "
        "end-to-end invariants must hold.",
        rules=(
            FaultRule("protocol.send", "reset", scope="INFER_REQUEST",
                      probability=0.12),
            FaultRule("protocol.send", "truncate", scope="INFER_RESPONSE",
                      probability=0.08, limit=2, bytes_kept=16),
            FaultRule("pool.checkout", "refuse", probability=0.08),
        ),
        harness={"requests": 40},
    ),
)


def run_scenario(name: str, seed: int = 0,
                 registry: Optional[ModelRegistry] = None,
                 requests: Optional[int] = None) -> ChaosReport:
    """Run one catalog scenario and return its invariant report."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown chaos scenario {name!r}; "
                       f"known: {sorted(SCENARIOS)}") from None
    kwargs = dict(scenario.harness)
    if registry is not None:
        kwargs["registry"] = registry
    if requests is not None:
        kwargs["requests"] = requests
    return ChaosHarness(scenario.plan(seed), **kwargs).run()
