"""Deterministic fault plans: what breaks, where, and when.

A :class:`FaultPlan` is a seeded list of :class:`FaultRule` entries.  Each
rule names an injection *site* (one of :data:`SITES`), the *kind* of fault
to inject there, an optional *scope* filter narrowing which events at the
site qualify (message type, backend key, model name, service name — what a
site reports as its event detail), and a *trigger*: explicit 1-based event
ordinals (``nth``), a modulus (``every``), or a ``probability`` drawn from
the plan's own ``random.Random(seed)``.  Two runs of the same plan seed
over the same event sequence inject exactly the same faults — that is what
makes a chaos run replayable by seed.

Arming a plan (``with plan.armed() as injector:``) installs a
:class:`FaultInjector` into :mod:`repro.core.faultsite`; every hook in the
serving stack consults that seam and is a no-op while nothing is armed.

Sites and the kinds they honour
-------------------------------

``protocol.send``  (detail: message-type name, e.g. ``INFER_RESPONSE``)
    ``reset``     raise :class:`InjectedFault` before any bytes move
    ``stall``     sleep ``delay_s`` before sending (drive peer timeouts)
    ``truncate``  send only ``bytes_kept`` bytes of the frame, then kill
                  the connection — the peer sees a mid-frame EOF
    ``corrupt``   flip the frame's magic so the peer raises ProtocolError
``protocol.recv``  (detail: the receiver's role — ``client`` for
                   application clients, ``gateway.client`` for the
                   gateway's pooled backend connections, ``probe`` for
                   health probes, or a server's service name)
    ``reset``, ``stall``
``server.accept``  (detail: service name, ``djinn`` or ``gateway``)
    ``refuse``    close the freshly accepted connection immediately
``pool.checkout``  (detail: backend key ``host:port``)
    ``refuse``    raise DjinnConnectionError from the gateway's checkout
``batch.execute``  (detail: model name)
    ``crash``     raise mid-batch: every waiter errors, connections die
    ``delay``     sleep ``delay_s`` per batch (a slow / saturated backend,
                  the moral equivalent of inflating ``service_floor_s``)
``health.probe``   (detail: backend key ``host:port``)
    ``flap``      force the probe to fail, marking the backend down
``proc.dispatch``  (detail: model name)
    ``kill``      mark the dispatched shm slot so the proc-pool worker that
                  picks it up dies (``os._exit``) mid-request — exercises
                  the supervisor's reap/requeue/respawn path.  Fires at the
                  parent's dispatch ordinal, so it is deterministic no
                  matter which worker draws the slot.
``sched.admit``    (detail: model name)
    ``reject``    force the gateway's admission controller to shed the
                  request (typed OVERLOADED, ``reason="injected"``) —
                  exercises the load-shedding path without real overload
``sched.hedge``    (detail: model name)
    ``delay``     sleep ``delay_s`` in the hedged primary arm before it
                  contacts its backend, forcing the hedge to fire and win
                  deterministically
``app.preprocess`` (detail: model name)
    ``error``     raise ``ValueError`` from the server-side app preprocess
                  stage — a poisoned raw payload.  Must surface as a typed
                  per-request error (the batch it coalesced into, and the
                  worker serving it, keep going) — that isolation is what
                  the ``app_poison`` chaos scenario asserts.
``cache.probe``    (detail: model name)
    ``error``     raise from inside the gateway's response-cache probe.
                  The probe must *fail open*: the request is forwarded as
                  an uncacheable miss, no client ever sees the fault, and
                  no hit/miss counter moves for the poisoned probe — the
                  ``cache_poison`` chaos scenario asserts lost==0 and that
                  served hits still equal ``gateway_cache_hits_total``.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import faultsite
from ..core.client import DjinnConnectionError
from ..core.faultsite import InjectedFault

__all__ = ["SITES", "KINDS_BY_SITE", "FaultRule", "FaultPlan", "FaultInjector",
           "InjectedFault"]

#: Every injection site wired into the serving stack.
SITES = ("protocol.send", "protocol.recv", "server.accept", "pool.checkout",
         "batch.execute", "health.probe", "proc.dispatch", "sched.admit",
         "sched.hedge", "stream.chunk", "app.preprocess", "cache.probe")

#: Fault kinds each site honours (validation happens at plan build time).
KINDS_BY_SITE = {
    "protocol.send": ("reset", "stall", "truncate", "corrupt"),
    "protocol.recv": ("reset", "stall"),
    "server.accept": ("refuse",),
    "pool.checkout": ("refuse",),
    "batch.execute": ("crash", "delay"),
    "health.probe": ("flap",),
    "proc.dispatch": ("kill",),
    "sched.admit": ("reject",),
    "sched.hedge": ("delay",),
    "stream.chunk": ("drop",),
    "app.preprocess": ("error",),
    "cache.probe": ("error",),
}


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: site + kind + trigger.

    The trigger fields compose as an OR: the rule fires on any event whose
    1-based match ordinal is in ``nth``, or divides ``every``, or wins the
    ``probability`` draw.  ``limit`` caps total fires (0 = unlimited).
    """

    site: str
    kind: str
    scope: str = ""               # "" matches every event at the site
    nth: Tuple[int, ...] = ()
    every: int = 0
    probability: float = 0.0
    limit: int = 0
    delay_s: float = 0.0          # stall / delay kinds
    bytes_kept: int = 9           # truncate: header magic+version survive

    def __post_init__(self):
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; known: {SITES}")
        if self.kind not in KINDS_BY_SITE[self.site]:
            raise ValueError(
                f"site {self.site!r} does not honour kind {self.kind!r}; "
                f"it takes {KINDS_BY_SITE[self.site]}")
        if any(n < 1 for n in self.nth):
            raise ValueError(f"nth ordinals are 1-based, got {self.nth}")
        if self.every < 0 or self.limit < 0:
            raise ValueError("every and limit must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.bytes_kept < 1:
            raise ValueError(f"bytes_kept must be >= 1, got {self.bytes_kept}")
        if not (self.nth or self.every or self.probability):
            raise ValueError("rule needs a trigger: nth, every, or probability")

    @property
    def label(self) -> str:
        return f"{self.site}:{self.kind}:{self.scope or '*'}"

    def to_dict(self) -> dict:
        return {"site": self.site, "kind": self.kind, "scope": self.scope,
                "nth": list(self.nth), "every": self.every,
                "probability": self.probability, "limit": self.limit,
                "delay_s": self.delay_s, "bytes_kept": self.bytes_kept}

    @classmethod
    def from_dict(cls, d: dict) -> "FaultRule":
        d = dict(d)
        d["nth"] = tuple(d.get("nth", ()))
        return cls(**d)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable schedule of faults.

    The plan itself holds no mutable state; arming it builds a fresh
    :class:`FaultInjector` (counters zeroed, RNG re-seeded), so the same
    plan object can be replayed any number of times with identical results.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0
    name: str = ""

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))

    @contextmanager
    def armed(self):
        """Install a fresh injector for this plan; disarm on exit."""
        injector = FaultInjector(self)
        faultsite.install(injector)
        try:
            yield injector
        finally:
            faultsite.uninstall()

    def to_dict(self) -> dict:
        return {"name": self.name, "seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        return cls(rules=tuple(FaultRule.from_dict(r) for r in d.get("rules", ())),
                   seed=int(d.get("seed", 0)), name=d.get("name", ""))


class _RuleState:
    __slots__ = ("rule", "seen", "fired")

    def __init__(self, rule: FaultRule):
        self.rule = rule
        self.seen = 0    # matching events observed
        self.fired = 0   # faults actually injected


class FaultInjector:
    """The armed runtime of a :class:`FaultPlan`.

    One lock guards the per-rule counters and the plan RNG, so concurrent
    connection threads observe a single global event order.  Determinism
    therefore extends as far as the caller's event order does — the chaos
    harness drives traffic sequentially for exactly this reason.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._by_site: Dict[str, List[_RuleState]] = {site: [] for site in SITES}
        for rule in plan.rules:
            self._by_site[rule.site].append(_RuleState(rule))

    # ------------------------------------------------------------- matching
    def _fire(self, site: str, detail: str) -> Optional[FaultRule]:
        """Count this event against every matching rule; return the first
        rule that decides to fire (later rules still see the event)."""
        states = self._by_site[site]
        if not states:
            return None
        winner: Optional[FaultRule] = None
        with self._lock:
            for state in states:
                rule = state.rule
                if rule.scope and rule.scope != detail:
                    continue
                state.seen += 1
                fires = (state.seen in rule.nth
                         or (rule.every and state.seen % rule.every == 0)
                         or (rule.probability
                             and self._rng.random() < rule.probability))
                if fires and (not rule.limit or state.fired < rule.limit):
                    state.fired += 1
                    if winner is None:
                        winner = rule
        return winner

    def fires(self) -> Dict[str, int]:
        """Faults injected so far, per rule label (report material)."""
        with self._lock:
            out: Dict[str, int] = {}
            for states in self._by_site.values():
                for state in states:
                    if state.fired:
                        key = state.rule.label
                        out[key] = out.get(key, 0) + state.fired
            return out

    def total_fires(self) -> int:
        return sum(self.fires().values())

    # ------------------------------------------------------- site endpoints
    def on_send(self, sock: socket.socket, type_name: str, frame: bytes) -> bytes:
        """Called by ``send_message`` with the fully serialized frame."""
        rule = self._fire("protocol.send", type_name)
        if rule is None:
            return frame
        if rule.kind == "reset":
            raise InjectedFault(f"injected reset before send of {type_name}")
        if rule.kind == "stall":
            time.sleep(rule.delay_s)
            return frame
        if rule.kind == "truncate":
            keep = min(rule.bytes_kept, max(1, len(frame) - 1))
            try:
                sock.sendall(frame[:keep])
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            raise InjectedFault(
                f"injected truncation of {type_name} after {keep} bytes")
        # corrupt: bad magic — the receiver fails with a typed ProtocolError
        return b"XJNN" + frame[4:]

    def on_recv(self, sock: socket.socket, scope: str) -> None:
        """Called by ``recv_message`` before any bytes are read."""
        rule = self._fire("protocol.recv", scope)
        if rule is None:
            return
        if rule.kind == "reset":
            raise InjectedFault("injected reset before recv")
        time.sleep(rule.delay_s)  # stall

    def on_accept(self, service: str) -> bool:
        """Called by the accept loop; True = drop the new connection."""
        rule = self._fire("server.accept", service)
        return rule is not None  # only kind: refuse

    def on_checkout(self, backend_key: str) -> None:
        """Called by ``BackendHandle.checkout`` before lending a client."""
        rule = self._fire("pool.checkout", backend_key)
        if rule is not None:
            raise DjinnConnectionError(
                f"injected refusal checking out backend {backend_key}")

    def on_batch(self, model: str) -> None:
        """Called by the batching executor before each forward pass."""
        rule = self._fire("batch.execute", model)
        if rule is None:
            return
        if rule.kind == "crash":
            raise InjectedFault(f"injected backend crash mid-batch ({model})")
        time.sleep(rule.delay_s)  # delay: slow backend

    def on_probe(self, backend_key: str) -> bool:
        """Called by ``HealthChecker.probe``; True = force the probe down."""
        rule = self._fire("health.probe", backend_key)
        return rule is not None  # only kind: flap

    def on_dispatch(self, model: str) -> bool:
        """Called by the proc pool as it dispatches a slot; True = mark the
        slot so the worker that picks it up dies (kind ``kill``)."""
        rule = self._fire("proc.dispatch", model)
        return rule is not None

    def on_admit(self, model: str) -> bool:
        """Called by the gateway's admission gate; True = force a shed."""
        rule = self._fire("sched.admit", model)
        return rule is not None  # only kind: reject

    def on_hedge(self, model: str) -> None:
        """Called in the hedged primary arm before it contacts a backend;
        sleeps to force the hedge arm to fire (kind ``delay``)."""
        rule = self._fire("sched.hedge", model)
        if rule is not None:
            time.sleep(rule.delay_s)

    def on_preprocess(self, model: str) -> None:
        """Called once per raw-payload request as the app preprocess stage
        picks it up.  Raises ``ValueError`` (kind ``error``): a poisoned
        payload, which the executor must convert into a typed per-request
        failure without losing the rest of the batch."""
        rule = self._fire("app.preprocess", model)
        if rule is not None:
            raise ValueError(f"injected preprocess error (app {model})")

    def on_cache_probe(self, model: str) -> None:
        """Called inside the gateway's response-cache probe, before the key
        is derived.  Raises (kind ``error``): the gateway must fail open and
        forward the request as an uncacheable miss."""
        rule = self._fire("cache.probe", model)
        if rule is not None:
            raise InjectedFault(f"injected cache probe failure ({model})")

    def on_stream_chunk(self, model: str) -> bool:
        """Called by the server as a stream chunk arrives; True = drop the
        chunk and abort its stream (kind ``drop``)."""
        rule = self._fire("stream.chunk", model)
        return rule is not None
