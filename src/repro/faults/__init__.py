"""Deterministic fault injection and the chaos harness for the DjiNN stack.

A seeded :class:`FaultPlan` schedules faults at injection sites wired
through the serving stack (protocol send/recv, connection accept, pool
checkout, batch execution, health probes — see :data:`SITES`); every hook
is a no-op until a plan is armed.  :class:`ChaosHarness` runs a real
gateway + backend fleet under a plan and distills the run into a
:class:`ChaosReport` whose invariants (no request lost or answered twice,
retries within budget and matching the metrics, traces closed) are what
``tests/test_chaos.py`` and ``djinn chaos`` assert.
"""

from ..core.faultsite import InjectedFault
from .harness import ChaosHarness, ChaosReport, default_registry
from .plan import KINDS_BY_SITE, SITES, FaultInjector, FaultPlan, FaultRule
from .scenarios import SCENARIOS, Scenario, run_scenario

__all__ = [
    "SITES",
    "KINDS_BY_SITE",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "ChaosHarness",
    "ChaosReport",
    "Scenario",
    "SCENARIOS",
    "run_scenario",
    "default_registry",
]
