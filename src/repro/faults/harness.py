"""The chaos harness: run a real gateway + fleet under an armed fault plan
and witness the end-to-end invariants through the observability substrate.

:class:`ChaosHarness` stands up an in-process fleet (via
:class:`repro.gateway.ClusterLauncher`) behind a real
:class:`repro.gateway.GatewayServer`, arms a :class:`FaultPlan`, and drives
a *sequential* load loop: one logical request at a time, each input stamped
with its request ordinal so a stale or misrouted response is detected by
payload, not just by count.  Sequential traffic is deliberate — it is what
makes the fault schedule (and therefore the whole run) a pure function of
the plan seed, so any failure replays from its seed alone.

After the loop, the harness reads the run back through obs surfaces —
``gateway_retries_total`` / ``gateway_retry_exhausted_total`` counters,
``gateway_backend_transitions_total``, structured ``event=retry`` log
records, and the process tracer — and distills everything into a
:class:`ChaosReport` whose :meth:`ChaosReport.check` enforces:

* every request got exactly one response or one typed error — none lost,
  none duplicated/stale (payload-checked);
* retries stayed within the :class:`RetryPolicy` budget and the logged
  retry events equal ``gateway_retries_total``;
* health transitions are consistent with the faults actually injected;
* every trace closed cleanly (a ``client.infer`` root span exists even for
  requests that failed).

Reports contain only counts — no wall-clock times — so two runs of the
same plan seed serialize to byte-identical JSON (the CI determinism gate
diffs exactly that).
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.client import (
    DjinnClient,
    DjinnConnectionError,
    DjinnServiceError,
    DjinnStreamError,
)
from ..core.registry import ModelRegistry
from ..gateway.launcher import ClusterLauncher
from ..gateway.retry import RetryPolicy
from ..gateway.server import GatewayServer
from ..obs.metrics import MetricsRegistry
from ..obs.trace import get_tracer
from .plan import FaultPlan

__all__ = ["ChaosReport", "ChaosHarness", "default_registry"]


def default_registry(model: str = "pos") -> ModelRegistry:
    """The small, fast model the chaos suite exercises by default."""
    from ..models import build_spec

    registry = ModelRegistry()
    registry.register_spec(model, build_spec(model), seed=0)
    return registry


@dataclass
class ChaosReport:
    """Deterministic summary of one chaos run (counts only, no timings)."""

    scenario: str
    seed: int
    requests: int
    ok: int = 0
    #: typed client-visible errors, keyed by exception class name
    errors: Dict[str, int] = field(default_factory=dict)
    #: responses whose payload did not match the request (stale/duplicate)
    mismatched: int = 0
    #: typed QoS rejections, split out of ``errors`` for the SLO invariants:
    #: ``shed`` counts OVERLOADED (admission/backpressure), ``expired``
    #: counts DEADLINE_EXCEEDED.  Each is cross-checked against the metric
    #: the fleet recorded — a shed/expired answer the metrics never saw (or
    #: vice versa) means a rejection path bypassed observability.
    shed: int = 0
    expired: int = 0
    shed_metric: int = 0           # gateway_admission_rejected_total
    expired_metric: int = 0        # gateway_expired_total + backend expiries
    retry_budget: int = 0          # RetryPolicy.max_attempts
    retries_logged: int = 0        # event=retry log records observed
    retries_metric: int = 0        # gateway_retries_total
    retry_exhausted_metric: int = 0
    transitions: Dict[str, int] = field(default_factory=dict)
    injected: Dict[str, int] = field(default_factory=dict)
    #: proc-pool workers the supervisors respawned (``worker_kill`` runs);
    #: must equal the injected ``proc.dispatch:kill`` count — every kill
    #: costs exactly one respawn, and nothing respawns unprovoked.
    worker_respawns: int = 0
    #: distinct traces that closed a ``client.infer`` root span — must equal
    #: ``requests``: even a request that died in transport leaves a closed
    #: root.  Stray late spans from other runs' lingering threads carry
    #: foreign trace IDs with no such root and are deliberately not counted
    #: (their timing is nondeterministic; the report must not be).
    traces: int = 0
    #: scheduling/hedging spans observed over rooted traces — the span-side
    #: mirror of the typed-rejection counts: every shed request must close a
    #: ``sched.admit`` span, every expiry a ``sched.expire`` span, and every
    #: launched hedge arm a ``gateway.hedge`` span
    admit_spans: int = 0
    expire_spans: int = 0
    hedge_spans: int = 0
    hedges_metric: int = 0         # gateway_hedges_total
    #: streaming load (``streams`` sequential streams of ``chunks`` chunks
    #: each): ``stream_ok`` finished with the exact expected transcript,
    #: ``stream_aborted`` died on a typed stream error (the only sanctioned
    #: way for a stream to fail), ``stream_mismatched`` finished with a
    #: wrong transcript.  Cross-checked against the backend-side abort
    #: metric and against the injected ``stream.chunk:drop`` count, and
    #: ``sessions_leaked`` (live sessions after all streams ended) must be
    #: zero — the no-leak invariant.
    streams: int = 0
    chunks: int = 0
    stream_ok: int = 0
    stream_aborted: int = 0
    stream_mismatched: int = 0
    stream_aborted_metric: int = 0  # djinn_stream_aborted_total (fleet sum)
    sessions_leaked: int = 0
    #: raw-payload (protocol v5 APP_REQUEST) load after the unary loop:
    #: ``app_ok`` answered with the locally recomputed application result,
    #: ``app_errors`` died on a typed error, ``app_mismatched`` answered
    #: wrong.  A poisoned preprocess (``app.preprocess:error``) must cost
    #: exactly one typed per-request error — never the whole batch, never a
    #: lost request — so the injected count is cross-checked against the
    #: typed errors, and every app request must close a ``client.app`` root.
    app_requests: int = 0
    app_ok: int = 0
    app_errors: Dict[str, int] = field(default_factory=dict)
    app_mismatched: int = 0
    app_traces: int = 0
    #: duplicate-request load (``dup_requests`` byte-identical replays of
    #: unary request 1's payload, issued right after the unary loop so the
    #: response cache — armed via ``cache_mb`` — must serve every one from
    #: the entry request 1 inserted).  A ``cache.probe:error`` fault fails
    #: the probe *open*: the duplicate is forwarded as an uncacheable miss
    #: and still answered correctly, but no hit/miss counter moves — so
    #: expected hits are ``dup_requests`` minus the injected probe faults,
    #: and hits + misses + poisoned probes must conserve the probed total.
    dup_requests: int = 0
    dup_ok: int = 0
    dup_errors: Dict[str, int] = field(default_factory=dict)
    dup_mismatched: int = 0
    cache_mb: float = 0.0
    cache_hits_metric: int = 0     # gateway_cache_hits_total
    cache_misses_metric: int = 0   # gateway_cache_misses_total

    @property
    def error_total(self) -> int:
        return sum(self.errors.values())

    @property
    def app_lost(self) -> int:
        """App requests that produced neither an answer nor a typed error."""
        return (self.app_requests - self.app_ok
                - sum(self.app_errors.values()) - self.app_mismatched)

    @property
    def dup_lost(self) -> int:
        """Duplicates that produced neither an answer nor a typed error."""
        return (self.dup_requests - self.dup_ok
                - sum(self.dup_errors.values()) - self.dup_mismatched)

    @property
    def lost(self) -> int:
        """Requests that produced neither a response nor a typed error."""
        return self.requests - self.ok - self.error_total - self.mismatched

    @property
    def injected_total(self) -> int:
        return sum(self.injected.values())

    def check(self) -> List[str]:
        """End-to-end invariant violations (empty = the run held up)."""
        violations = []
        if self.lost != 0:
            violations.append(f"{self.lost} request(s) lost: no response and "
                              f"no typed error")
        if self.mismatched != 0:
            violations.append(f"{self.mismatched} response(s) carried the "
                              f"wrong payload (stale/duplicated)")
        if self.retries_logged != self.retries_metric:
            violations.append(
                f"retry log records ({self.retries_logged}) != "
                f"gateway_retries_total ({self.retries_metric})")
        budget = self.requests * max(0, self.retry_budget - 1)
        if self.retries_metric > budget:
            violations.append(
                f"gateway_retries_total ({self.retries_metric}) exceeds the "
                f"RetryPolicy budget ({budget})")
        flaps = sum(count for label, count in self.injected.items()
                    if label.startswith("health.probe:flap"))
        if self.transitions.get("mark_down", 0) < flaps:
            violations.append(
                f"injected {flaps} probe flap(s) but only "
                f"{self.transitions.get('mark_down', 0)} mark_down transition(s)")
        unary = self.requests + self.dup_requests
        if self.traces != unary:
            violations.append(
                f"expected one closed client.infer root per unary request "
                f"({unary}), found {self.traces}")
        if self.shed != self.shed_metric:
            violations.append(
                f"client saw {self.shed} OVERLOADED rejection(s) but the "
                f"gateway recorded {self.shed_metric} in "
                f"gateway_admission_rejected_total")
        if self.expired != self.expired_metric:
            violations.append(
                f"client saw {self.expired} DEADLINE_EXCEEDED rejection(s) "
                f"but the fleet recorded {self.expired_metric} expiries")
        kills = sum(count for label, count in self.injected.items()
                    if label.startswith("proc.dispatch:kill"))
        if self.worker_respawns != kills:
            violations.append(
                f"injected {kills} worker kill(s) but supervisors recorded "
                f"{self.worker_respawns} respawn(s)")
        if self.admit_spans != self.shed:
            violations.append(
                f"client saw {self.shed} shed request(s) but traces closed "
                f"{self.admit_spans} sched.admit span(s)")
        if self.expire_spans != self.expired:
            violations.append(
                f"client saw {self.expired} expired request(s) but traces "
                f"closed {self.expire_spans} sched.expire span(s)")
        if self.hedge_spans != self.hedges_metric:
            violations.append(
                f"gateway launched {self.hedges_metric} hedge arm(s) but "
                f"traces closed {self.hedge_spans} gateway.hedge span(s)")
        stream_lost = (self.streams - self.stream_ok - self.stream_aborted
                       - self.stream_mismatched)
        if stream_lost != 0:
            violations.append(
                f"{stream_lost} stream(s) lost: neither a final transcript "
                f"nor a typed stream error")
        if self.stream_mismatched != 0:
            violations.append(
                f"{self.stream_mismatched} stream(s) finished with the "
                f"wrong transcript")
        drops = sum(count for label, count in self.injected.items()
                    if label.startswith("stream.chunk:drop"))
        if self.stream_aborted != drops:
            violations.append(
                f"injected {drops} chunk drop(s) but the client saw "
                f"{self.stream_aborted} aborted stream(s)")
        if self.stream_aborted_metric != drops:
            violations.append(
                f"injected {drops} chunk drop(s) but the fleet recorded "
                f"{self.stream_aborted_metric} in djinn_stream_aborted_total")
        if self.sessions_leaked != 0:
            violations.append(
                f"{self.sessions_leaked} session(s) still live after every "
                f"stream ended (leak)")
        if self.app_lost != 0:
            violations.append(
                f"{self.app_lost} app request(s) lost: no answer and no "
                f"typed error")
        if self.app_mismatched != 0:
            violations.append(
                f"{self.app_mismatched} app request(s) answered with the "
                f"wrong application result")
        poisons = sum(count for label, count in self.injected.items()
                      if label.startswith("app.preprocess:error"))
        if self.app_errors.get("DjinnServiceError", 0) != poisons:
            violations.append(
                f"injected {poisons} preprocess poison(s) but the client "
                f"saw {self.app_errors.get('DjinnServiceError', 0)} typed "
                f"service error(s) on app requests")
        if self.app_traces != self.app_requests:
            violations.append(
                f"expected one closed client.app root per app request "
                f"({self.app_requests}), found {self.app_traces}")
        if self.dup_lost != 0:
            violations.append(
                f"{self.dup_lost} duplicate request(s) lost: no answer and "
                f"no typed error")
        if self.dup_mismatched != 0:
            violations.append(
                f"{self.dup_mismatched} duplicate request(s) answered with "
                f"the wrong payload")
        if self.cache_mb > 0 and self.dup_requests:
            # only sound when probe poisons land on duplicate ordinals (the
            # cache_poison scenario pins nth past the unique unary range):
            # a poisoned probe fails open, so it moves neither counter
            poisons = sum(count for label, count in self.injected.items()
                          if label.startswith("cache.probe:error"))
            expected_hits = self.dup_requests - poisons
            if self.cache_hits_metric != expected_hits:
                violations.append(
                    f"issued {self.dup_requests} duplicate request(s) with "
                    f"{poisons} poisoned probe(s) but "
                    f"gateway_cache_hits_total recorded "
                    f"{self.cache_hits_metric} (expected {expected_hits})")
            if not (self.shed or self.expired or self.app_requests):
                probed = self.requests + self.dup_requests
                accounted = (self.cache_hits_metric
                             + self.cache_misses_metric + poisons)
                if accounted != probed:
                    violations.append(
                        f"cache probe conservation broke: "
                        f"{self.cache_hits_metric} hit(s) + "
                        f"{self.cache_misses_metric} miss(es) + {poisons} "
                        f"poisoned probe(s) != {probed} probed request(s)")
        return violations

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "requests": self.requests,
            "ok": self.ok,
            "errors": dict(sorted(self.errors.items())),
            "error_total": self.error_total,
            "mismatched": self.mismatched,
            "lost": self.lost,
            "shed": self.shed,
            "expired": self.expired,
            "shed_metric": self.shed_metric,
            "expired_metric": self.expired_metric,
            "retry_budget": self.retry_budget,
            "retries_logged": self.retries_logged,
            "retries_metric": self.retries_metric,
            "retry_exhausted_metric": self.retry_exhausted_metric,
            "transitions": dict(sorted(self.transitions.items())),
            "injected": dict(sorted(self.injected.items())),
            "injected_total": self.injected_total,
            "worker_respawns": self.worker_respawns,
            "traces": self.traces,
            "admit_spans": self.admit_spans,
            "expire_spans": self.expire_spans,
            "hedge_spans": self.hedge_spans,
            "hedges_metric": self.hedges_metric,
            "streams": self.streams,
            "chunks": self.chunks,
            "stream_ok": self.stream_ok,
            "stream_aborted": self.stream_aborted,
            "stream_mismatched": self.stream_mismatched,
            "stream_aborted_metric": self.stream_aborted_metric,
            "sessions_leaked": self.sessions_leaked,
            "app_requests": self.app_requests,
            "app_ok": self.app_ok,
            "app_errors": dict(sorted(self.app_errors.items())),
            "app_mismatched": self.app_mismatched,
            "app_lost": self.app_lost,
            "app_traces": self.app_traces,
            "dup_requests": self.dup_requests,
            "dup_ok": self.dup_ok,
            "dup_errors": dict(sorted(self.dup_errors.items())),
            "dup_mismatched": self.dup_mismatched,
            "dup_lost": self.dup_lost,
            "cache_mb": self.cache_mb,
            "cache_hits_metric": self.cache_hits_metric,
            "cache_misses_metric": self.cache_misses_metric,
            "violations": self.check(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


class _RetryLogCounter(logging.Handler):
    """Counts the gateway's structured retry events as obs would see them."""

    def __init__(self):
        super().__init__(level=logging.DEBUG)
        self.retries = 0
        self.exhausted = 0

    def emit(self, record: logging.LogRecord) -> None:
        message = record.getMessage()
        if message.startswith("event=retry.exhausted"):
            self.exhausted += 1
        elif message.startswith("event=retry "):
            self.retries += 1


def _counter_total(registry: MetricsRegistry, name: str) -> int:
    family = registry.get(name)
    if family is None:
        return 0
    return int(sum(child.value for _, child in family.children()))


def _transition_totals(registry: MetricsRegistry) -> Dict[str, int]:
    """mark_down/mark_up totals, aggregated over (dynamic-port) backends."""
    family = registry.get("gateway_backend_transitions_total")
    totals: Dict[str, int] = {}
    if family is None:
        return totals
    event_at = family.labelnames.index("event")
    for labelvalues, child in family.children():
        event = labelvalues[event_at]
        totals[event] = totals.get(event, 0) + int(child.value)
    return totals


class ChaosHarness:
    """Drive a gateway + fleet under a fault plan; produce a ChaosReport.

    Parameters
    ----------
    plan:
        The fault schedule.  The harness arms it before the gateway's first
        health sweep, so startup probes are already inside the blast radius.
    registry:
        Models to serve; defaults to a fresh single-``pos`` registry
        (tests pass a shared one to amortize materialization).
    requests:
        Length of the sequential load loop.
    backends:
        Fleet size behind the gateway.
    batching:
        Optional :class:`repro.core.BatchPolicy` for the backends — the
        ``batch.execute`` fault site only sees traffic when this is set.
    retry:
        Gateway retry budget; the default keeps backoff sleeps short so a
        full chaos suite stays fast.
    client_timeout_s / backend_timeout_s:
        Socket timeouts for the harness client and the gateway's backend
        connections; stall scenarios set these below their ``delay_s``.
    probe_rounds:
        Health sweeps run *after* the load loop at a deterministic point
        (the background prober is parked at a huge interval), so
        ``health.probe`` flap schedules line up run to run.
    workers:
        ``"proc:N"`` makes every backend front a shared-memory process
        pool; the plan is then *also* armed inside each worker (with a
        per-worker derived seed), so worker-side sites like
        ``proc.dispatch`` and ``batch.execute`` fire in the fleet's
        forked processes, not just the parent.
    sched, qos, deadlines:
        QoS wiring: ``sched`` picks the backends' scheduling policy
        (requires ``batching``), ``qos`` is the gateway's
        :class:`repro.sched.QosConfig`, and ``deadlines`` is a tuple of
        per-request deadline budgets in ms, cycled over the load loop
        (0.0 = no deadline for that request).  With all three at their
        defaults the harness issues exactly the pre-QoS byte stream.
        Determinism note: a deadline either comfortably exceeds the
        service time (never expires) or is impossibly small (always
        expires at the first dead-on-arrival check) — mid-range deadlines
        would make the report racy.
    streams, chunks:
        Streaming load after the unary loop: ``streams`` sequential
        streams of ``chunks`` stamped chunks each, driven through the
        gateway's stream proxy.  Sequential on purpose, like the unary
        loop — the ``stream.chunk`` fault site's event ordinals are then
        a pure function of the plan seed.  A drop at chunk event *k*
        aborts the stream that sent it; the harness stops feeding an
        aborted stream, so each injected drop costs exactly one stream.
    app_requests:
        Raw-payload load after the unary loop: that many sequential
        protocol-v5 APP_REQUEST frames for ``model`` (which must have a
        default serving app — e.g. ``dig``), each answer checked against
        the locally recomputed application result.  The
        ``app.preprocess`` fault site only sees traffic when this is set.
    cache_mb, dup_requests:
        Response-cache load: ``cache_mb`` arms the gateway's
        content-addressed cache, and ``dup_requests`` issues that many
        byte-identical replays of unary request 1's payload right after
        the unary loop (cache-probe events are then contiguous: the
        unique requests probe first, the duplicates after).  Every
        duplicate must be served from the entry request 1 inserted; the
        ``cache.probe`` fault site only sees traffic when ``cache_mb``
        is set, and a poisoned probe must fail open (forwarded miss,
        correct answer, no counter moved).
    """

    def __init__(self, plan: FaultPlan, *,
                 registry: Optional[ModelRegistry] = None,
                 model: str = "pos",
                 requests: int = 24,
                 backends: int = 2,
                 batching=None,
                 retry: Optional[RetryPolicy] = None,
                 client_timeout_s: float = 5.0,
                 backend_timeout_s: float = 5.0,
                 probe_rounds: int = 0,
                 service_floor_s: float = 0.0,
                 workers: Optional[str] = None,
                 sched=None,
                 qos=None,
                 deadlines: tuple = (),
                 streams: int = 0,
                 chunks: int = 3,
                 app_requests: int = 0,
                 cache_mb: float = 0.0,
                 dup_requests: int = 0):
        if requests < 1:
            raise ValueError(f"requests must be >= 1, got {requests}")
        if app_requests < 0:
            raise ValueError(
                f"app_requests must be >= 0, got {app_requests}")
        if cache_mb < 0 or dup_requests < 0:
            raise ValueError(
                f"cache_mb and dup_requests must be >= 0, got "
                f"cache_mb={cache_mb} dup_requests={dup_requests}")
        if any(d < 0 for d in deadlines):
            raise ValueError(f"deadlines must be >= 0, got {deadlines}")
        if streams < 0 or chunks < 1:
            raise ValueError(
                f"streams must be >= 0 and chunks >= 1, got "
                f"streams={streams} chunks={chunks}")
        self.plan = plan
        self.registry = registry if registry is not None else default_registry(model)
        self.model = model
        self.requests = requests
        self.backends = backends
        self.batching = batching
        self.retry = retry or RetryPolicy(max_attempts=4, base_delay_s=0.005,
                                          max_delay_s=0.02)
        self.client_timeout_s = client_timeout_s
        self.backend_timeout_s = backend_timeout_s
        self.probe_rounds = probe_rounds
        self.service_floor_s = service_floor_s
        self.workers = workers
        self.sched = sched
        self.qos = qos
        self.deadlines = tuple(deadlines)
        self.streams = streams
        self.chunks = chunks
        self.app_requests = app_requests
        self.cache_mb = cache_mb
        self.dup_requests = dup_requests

    # ----------------------------------------------------------------- load
    def _input(self, index: int, shape) -> np.ndarray:
        """A payload that names its request: stamp the ordinal into the
        tensor so a response can be matched to exactly one request."""
        x = np.full((1,) + tuple(shape), 0.25, dtype=np.float32)
        x.reshape(-1)[0] = float(index + 1)
        return x

    def _app_raw(self, index: int, shape) -> np.ndarray:
        """A stamped uint8 raw payload (pixels on the wire, protocol v5)."""
        raw = np.full(tuple(shape), 64, dtype=np.uint8)
        raw.reshape(-1)[0] = np.uint8(index + 1)
        return raw

    def _run_dup_requests(self, client: DjinnClient, net,
                          report: ChaosReport) -> None:
        """Sequential byte-identical replays of unary request 1's payload.

        With the cache armed every replay probes the entry request 1's
        miss inserted; a poisoned probe (``cache.probe:error``) fails
        open, so the answer must still be correct either way — the only
        trace of the fault is the hit the counters never recorded.
        """
        x = self._input(0, net.input_shape)
        expected = net.forward(x)
        for _ in range(self.dup_requests):
            try:
                out = client.infer(self.model, x)
            except (DjinnConnectionError, DjinnServiceError) as exc:
                kind = type(exc).__name__
                report.dup_errors[kind] = report.dup_errors.get(kind, 0) + 1
            else:
                if (out.shape == expected.shape
                        and np.allclose(out, expected, rtol=1e-4, atol=1e-5)):
                    report.dup_ok += 1
                else:
                    report.dup_mismatched += 1

    def _run_app_requests(self, client: DjinnClient,
                          report: ChaosReport) -> None:
        """Sequential raw-payload loop; answers checked against the app's
        own kernels run locally (preprocess → forward → postprocess), so a
        cross-wired or stale application answer is caught by content."""
        from ..tonic.serve import build_default_apps, raw_item_shape

        app = build_default_apps(self.registry)[self.model]
        net = self.registry.get(self.model)
        shape = raw_item_shape(self.model, net.input_shape)
        for i in range(self.app_requests):
            raw_u8 = self._app_raw(i, shape)
            # the server decodes KIND_U8 as float32/255; recompute from the
            # same quantized bytes so the comparison is exact
            raw = raw_u8.astype(np.float32) / np.float32(255.0)
            expected = app.postprocess(net.forward(app.preprocess(raw)), raw)
            try:
                result = client.infer_app(self.model, raw_u8)
            except (DjinnConnectionError, DjinnServiceError) as exc:
                kind = type(exc).__name__
                report.app_errors[kind] = report.app_errors.get(kind, 0) + 1
            else:
                if result == expected:
                    report.app_ok += 1
                else:
                    report.app_mismatched += 1

    def _run_stream(self, client: DjinnClient, net, stream_index: int,
                    report: ChaosReport) -> None:
        """One sequential stream: stamped chunks, transcript-checked final.

        The expected transcript is computed locally (argmax of the net's
        own forward pass per chunk), so a stale, reordered, or cross-wired
        partial shows up as a mismatch — the streaming analogue of the
        unary loop's payload stamping.
        """
        expected = []
        try:
            stream = client.open_stream(self.model)
            for c_idx in range(self.chunks):
                x = self._input(stream_index * self.chunks + c_idx,
                                net.input_shape)
                expected.append(int(np.argmax(net.forward(x))))
                partial = stream.send(x)
                if partial.data.get("count") != c_idx + 1:
                    report.stream_mismatched += 1
                    stream.close()
                    return
            final = stream.close()
            if (final.final and final.data.get("count") == self.chunks
                    and list(final.data.get("labels", ())) == expected):
                report.stream_ok += 1
            else:
                report.stream_mismatched += 1
        except DjinnStreamError:
            # typed stream death (injected drop): sanctioned abort — the
            # session must be gone server-side, which the leak check proves
            report.stream_aborted += 1
        except (DjinnConnectionError, DjinnServiceError) as exc:
            kind = type(exc).__name__
            report.errors[kind] = report.errors.get(kind, 0) + 1

    def run(self) -> ChaosReport:
        net = self.registry.get(self.model)
        report = ChaosReport(scenario=self.plan.name or "custom",
                             seed=self.plan.seed, requests=self.requests,
                             retry_budget=self.retry.max_attempts,
                             streams=self.streams,
                             chunks=self.chunks if self.streams else 0,
                             app_requests=self.app_requests,
                             dup_requests=self.dup_requests,
                             cache_mb=self.cache_mb)

        tracer = get_tracer()
        was_enabled = tracer.enabled
        tracer.clear()
        tracer.enable()
        gw_logger = logging.getLogger("repro.gateway")
        retry_counter = _RetryLogCounter()
        old_level = gw_logger.level
        gw_logger.addHandler(retry_counter)
        gw_logger.setLevel(logging.INFO)
        try:
            with ClusterLauncher(self.registry, backends=self.backends,
                                 batching=self.batching, sched=self.sched,
                                 service_floor_s=self.service_floor_s,
                                 workers=self.workers,
                                 worker_fault_plan=(self.plan if self.workers
                                                    else None)) as cluster:
                gateway = GatewayServer(
                    cluster.addresses, policy="round_robin", retry=self.retry,
                    health_interval_s=3600.0,  # probes only where scheduled
                    backend_timeout_s=self.backend_timeout_s,
                    qos=self.qos,
                    cache_mb=self.cache_mb,
                )
                with self.plan.armed() as injector:
                    gateway.start()
                    client = None
                    try:
                        host, port = gateway.address
                        client = DjinnClient(host, port,
                                             timeout_s=self.client_timeout_s)
                        for i in range(self.requests):
                            x = self._input(i, net.input_shape)
                            expected = net.forward(x)
                            deadline_ms = (self.deadlines[i % len(self.deadlines)]
                                           if self.deadlines else 0.0)
                            try:
                                out = client.infer(self.model, x,
                                                   deadline_ms=deadline_ms)
                            except (DjinnConnectionError,
                                    DjinnServiceError) as exc:
                                kind = type(exc).__name__
                                report.errors[kind] = report.errors.get(kind, 0) + 1
                            else:
                                if (out.shape == expected.shape
                                        and np.allclose(out, expected,
                                                        rtol=1e-4, atol=1e-5)):
                                    report.ok += 1
                                else:
                                    report.mismatched += 1
                        if self.dup_requests:
                            self._run_dup_requests(client, net, report)
                        if self.app_requests:
                            self._run_app_requests(client, report)
                        for s_idx in range(self.streams):
                            self._run_stream(client, net, s_idx, report)
                        if self.streams:
                            report.stream_aborted_metric = sum(
                                _counter_total(server.metrics,
                                               "djinn_stream_aborted_total")
                                for server in cluster.servers)
                            report.sessions_leaked = sum(
                                server.sessions.count()
                                for server in cluster.servers)
                        for _ in range(self.probe_rounds):
                            gateway.health.probe_all()
                        report.retries_metric = _counter_total(
                            gateway.metrics, "gateway_retries_total")
                        report.retry_exhausted_metric = _counter_total(
                            gateway.metrics, "gateway_retry_exhausted_total")
                        report.transitions = _transition_totals(gateway.metrics)
                        report.injected = injector.fires()
                        report.shed = report.errors.get(
                            "DjinnOverloadedError", 0)
                        report.expired = report.errors.get(
                            "DjinnDeadlineError", 0)
                        report.shed_metric = _counter_total(
                            gateway.metrics, "gateway_admission_rejected_total")
                        report.expired_metric = _counter_total(
                            gateway.metrics, "gateway_expired_total") + sum(
                            _counter_total(server.metrics,
                                           "djinn_sched_expired_total")
                            for server in cluster.servers)
                        report.worker_respawns = sum(
                            _counter_total(server.metrics,
                                           "djinn_proc_worker_respawns_total")
                            for server in cluster.servers)
                        report.hedges_metric = _counter_total(
                            gateway.metrics, "gateway_hedges_total")
                        report.cache_hits_metric = _counter_total(
                            gateway.metrics, "gateway_cache_hits_total")
                        report.cache_misses_metric = _counter_total(
                            gateway.metrics, "gateway_cache_misses_total")
                    finally:
                        if client is not None:
                            client.close()
                        gateway.stop()
        finally:
            gw_logger.removeHandler(retry_counter)
            gw_logger.setLevel(old_level)
            report.retries_logged = retry_counter.retries
            # even a request that died in transport must leave a closed
            # client.infer root span — that is the "traces close cleanly"
            # invariant, read straight off the tracer
            spans = tracer.spans()
            rooted = {s.trace_id for s in spans
                      if s.name == "client.infer" and s.end_s is not None}
            report.traces = len(rooted)
            report.app_traces = len({s.trace_id for s in spans
                                     if s.name == "client.app"
                                     and s.end_s is not None})
            # span-side mirror of the typed QoS outcomes, counted only over
            # rooted traces (foreign late spans must not perturb the report)
            span_counts = {"sched.admit": 0, "sched.expire": 0,
                           "gateway.hedge": 0}
            for s in spans:
                if (s.name in span_counts and s.end_s is not None
                        and s.trace_id in rooted):
                    span_counts[s.name] += 1
            report.admit_spans = span_counts["sched.admit"]
            report.expire_spans = span_counts["sched.expire"]
            report.hedge_spans = span_counts["gateway.hedge"]
            tracer.clear()
            if not was_enabled:
                tracer.disable()
        return report
