"""Vocabulary, word embeddings, and SENNA window features.

SENNA's word-embedding lookup and discrete-feature extraction happen in the
*application* (preprocessing), not the DNN service — the paper's Table 3
shows the NLP services receiving already-vectorized word windows.  This
module is that preprocessing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..models.senna import FEATURE_DIM, WINDOW, WORD_DIM

__all__ = ["Vocabulary", "WindowFeaturizer", "PAD_TOKEN", "UNK_TOKEN"]

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"


class Vocabulary:
    """A closed vocabulary with seeded dense embeddings.

    SENNA's embeddings came from two months of Wikipedia pre-training; ours
    are seeded random vectors that the taggers' training shapes indirectly
    (the window network learns on top of fixed embeddings, as SENNA does in
    its frozen-embedding configuration).
    """

    def __init__(self, words: Iterable[str], dim: int = WORD_DIM, seed: int = 7):
        uniq: List[str] = [PAD_TOKEN, UNK_TOKEN]
        seen = set(uniq)
        for word in words:
            token = word.lower()
            if token not in seen:
                uniq.append(token)
                seen.add(token)
        self._index: Dict[str, int] = {w: i for i, w in enumerate(uniq)}
        self.words = uniq
        self.dim = dim
        rng = np.random.default_rng(seed)
        self.embeddings = rng.normal(0.0, 0.3, size=(len(uniq), dim)).astype(np.float32)
        self.embeddings[0] = 0.0  # pad embeds to zero

    def __len__(self) -> int:
        return len(self.words)

    def index(self, word: str) -> int:
        return self._index.get(word.lower(), self._index[UNK_TOKEN])

    def embed(self, word: str) -> np.ndarray:
        return self.embeddings[self.index(word)]


def _caps_feature(word: str) -> int:
    """SENNA's capitalization feature: 0 lower, 1 upper-initial, 2 all-caps, 3 other."""
    if word.islower() or not any(c.isalpha() for c in word):
        return 0
    if word.isupper():
        return 2
    if word[0].isupper():
        return 1
    return 3


class WindowFeaturizer:
    """Turn a sentence into per-word 5x(50+10)-dim window vectors.

    The 10-dim discrete-feature slot encodes capitalization for POS/NER; for
    CHK it instead encodes the POS tag predicted by the chained POS request
    (paper §3.2.3: CHK "internally makes a POS service request, updates the
    tags for its input, and then makes its own DNN service request").
    """

    def __init__(self, vocab: Vocabulary, feature_vocab_size: int = 64, seed: int = 13):
        self.vocab = vocab
        rng = np.random.default_rng(seed)
        self.feature_embeddings = rng.normal(
            0.0, 0.3, size=(feature_vocab_size, FEATURE_DIM)
        ).astype(np.float32)
        self.feature_vocab_size = feature_vocab_size

    @property
    def window_dim(self) -> int:
        return WINDOW * (self.vocab.dim + FEATURE_DIM)

    def _token_vector(self, word: str, feature_id: int) -> np.ndarray:
        if word == PAD_TOKEN:
            return np.zeros(self.vocab.dim + FEATURE_DIM, dtype=np.float32)
        feat = self.feature_embeddings[feature_id % self.feature_vocab_size]
        return np.concatenate([self.vocab.embed(word), feat])

    def featurize(
        self, words: Sequence[str], feature_ids: Sequence[int] = None
    ) -> np.ndarray:
        """Window vectors for every word: shape (len(words), window_dim).

        ``feature_ids`` supplies one discrete feature per word (defaults to
        the capitalization feature).
        """
        if feature_ids is None:
            feature_ids = [_caps_feature(w) for w in words]
        if len(feature_ids) != len(words):
            raise ValueError("feature_ids must align with words")
        half = WINDOW // 2
        padded_words = [PAD_TOKEN] * half + [w for w in words] + [PAD_TOKEN] * half
        padded_feats = [0] * half + list(feature_ids) + [0] * half
        token_vecs = np.stack(
            [self._token_vector(w, f) for w, f in zip(padded_words, padded_feats)]
        )
        rows = [token_vecs[i : i + WINDOW].reshape(-1) for i in range(len(words))]
        return np.stack(rows) if rows else np.zeros((0, self.window_dim), dtype=np.float32)
