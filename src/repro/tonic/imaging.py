"""Image preprocessing: bilinear resize, center crop, channel stats.

The Tonic image applications receive photos of arbitrary geometry; the
service networks want fixed retinas (AlexNet 3x227x227, DeepFace
3x152x152).  This module is the resize/crop stage of that preprocessing —
pure numpy, CHW layout, float images in [0, 1].
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["bilinear_resize", "center_crop", "fit_to", "per_channel_standardize"]


def bilinear_resize(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Resize a (C, H, W) image with bilinear interpolation."""
    if image.ndim != 3:
        raise ValueError(f"expected (C, H, W) image, got shape {image.shape}")
    if out_h < 1 or out_w < 1:
        raise ValueError("output size must be positive")
    c, h, w = image.shape
    if (h, w) == (out_h, out_w):
        return image.astype(np.float32, copy=True)
    # align-corners=False sampling grid (the common convention)
    ys = (np.arange(out_h) + 0.5) * h / out_h - 0.5
    xs = (np.arange(out_w) + 0.5) * w / out_w - 0.5
    y0 = np.clip(np.floor(ys).astype(int), 0, h - 1)
    x0 = np.clip(np.floor(xs).astype(int), 0, w - 1)
    y1 = np.clip(y0 + 1, 0, h - 1)
    x1 = np.clip(x0 + 1, 0, w - 1)
    wy = np.clip(ys - y0, 0.0, 1.0)[None, :, None]
    wx = np.clip(xs - x0, 0.0, 1.0)[None, None, :]

    top = image[:, y0][:, :, x0] * (1 - wx) + image[:, y0][:, :, x1] * wx
    bottom = image[:, y1][:, :, x0] * (1 - wx) + image[:, y1][:, :, x1] * wx
    return (top * (1 - wy) + bottom * wy).astype(np.float32)


def center_crop(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Crop the central (out_h, out_w) window of a (C, H, W) image."""
    if image.ndim != 3:
        raise ValueError(f"expected (C, H, W) image, got shape {image.shape}")
    c, h, w = image.shape
    if out_h > h or out_w > w:
        raise ValueError(f"crop {out_h}x{out_w} exceeds image {h}x{w}")
    top = (h - out_h) // 2
    left = (w - out_w) // 2
    return image[:, top : top + out_h, left : left + out_w]


def fit_to(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Resize-then-center-crop to exactly (out_h, out_w), preserving aspect.

    The standard Caffe deployment transform: scale the short side to the
    target, crop the rest.
    """
    c, h, w = image.shape
    scale = max(out_h / h, out_w / w)
    resized = bilinear_resize(image, max(out_h, int(round(h * scale))),
                              max(out_w, int(round(w * scale))))
    return center_crop(resized, out_h, out_w)


def per_channel_standardize(image: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance per channel (a training-time transform)."""
    if image.ndim != 3:
        raise ValueError(f"expected (C, H, W) image, got shape {image.shape}")
    mean = image.mean(axis=(1, 2), keepdims=True)
    std = image.std(axis=(1, 2), keepdims=True)
    return ((image - mean) / np.maximum(std, 1e-6)).astype(np.float32)
