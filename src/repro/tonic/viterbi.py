"""Generic Viterbi decoding in log space.

The same dynamic program serves both postprocessing stages the paper
describes: ASR's "most likely sequence of text" search over acoustic
posteriors (§3.2.2) and the NLP tasks' "most likely sequence of tagged
words" (§3.2.3, SENNA's sentence-level inference).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["viterbi", "viterbi_score", "beam_search"]

NEG_INF = -1e30


def viterbi(
    log_emissions: np.ndarray,
    log_transitions: np.ndarray,
    log_initial: np.ndarray = None,
) -> Tuple[List[int], float]:
    """Most likely state path through a lattice.

    Parameters
    ----------
    log_emissions:
        (T, S) per-step state scores.
    log_transitions:
        (S, S) scores; ``log_transitions[i, j]`` scores moving i -> j.
    log_initial:
        (S,) scores for the first state; uniform if omitted.

    Returns the best path (length T) and its total log score.
    """
    emissions = np.asarray(log_emissions, dtype=np.float64)
    trans = np.asarray(log_transitions, dtype=np.float64)
    if emissions.ndim != 2:
        raise ValueError(f"log_emissions must be (T, S), got {emissions.shape}")
    steps, states = emissions.shape
    if trans.shape != (states, states):
        raise ValueError(
            f"log_transitions must be ({states}, {states}), got {trans.shape}"
        )
    if steps == 0:
        return [], 0.0
    if log_initial is None:
        score = emissions[0].copy()
    else:
        init = np.asarray(log_initial, dtype=np.float64)
        if init.shape != (states,):
            raise ValueError(f"log_initial must be ({states},), got {init.shape}")
        score = init + emissions[0]

    backptr = np.zeros((steps, states), dtype=np.int64)
    for t in range(1, steps):
        candidate = score[:, None] + trans  # (from, to)
        backptr[t] = np.argmax(candidate, axis=0)
        score = candidate[backptr[t], np.arange(states)] + emissions[t]

    best_last = int(np.argmax(score))
    best_score = float(score[best_last])
    path = [best_last]
    for t in range(steps - 1, 0, -1):
        path.append(int(backptr[t, path[-1]]))
    path.reverse()
    return path, best_score


def beam_search(
    log_emissions: np.ndarray,
    log_transitions: np.ndarray,
    log_initial: np.ndarray = None,
    beam_width: int = 8,
) -> Tuple[List[int], float]:
    """Approximate best-path search keeping only ``beam_width`` live states.

    This is how production decoders (Kaldi's included) trade exactness for
    speed on large state spaces: at each step only the highest-scoring
    states are extended.  With ``beam_width >= S`` it degenerates to exact
    Viterbi; the tests quantify how quickly the approximation converges.
    """
    if beam_width < 1:
        raise ValueError(f"beam_width must be >= 1, got {beam_width}")
    emissions = np.asarray(log_emissions, dtype=np.float64)
    trans = np.asarray(log_transitions, dtype=np.float64)
    if emissions.ndim != 2:
        raise ValueError(f"log_emissions must be (T, S), got {emissions.shape}")
    steps, states = emissions.shape
    if trans.shape != (states, states):
        raise ValueError(f"log_transitions must be ({states}, {states})")
    if steps == 0:
        return [], 0.0

    score = emissions[0].copy()
    if log_initial is not None:
        score = score + np.asarray(log_initial, dtype=np.float64)
    width = min(beam_width, states)
    live = np.argpartition(score, -width)[-width:]

    backptr = np.zeros((steps, states), dtype=np.int64)
    pruned = np.full(states, -np.inf)
    pruned[live] = score[live]
    score = pruned
    for t in range(1, steps):
        candidate = score[live][:, None] + trans[live]      # (beam, S)
        best_src = np.argmax(candidate, axis=0)
        backptr[t] = live[best_src]
        stepped = candidate[best_src, np.arange(states)] + emissions[t]
        live = np.argpartition(stepped, -width)[-width:]
        live = live[np.isfinite(stepped[live])]
        if live.size == 0:  # everything pruned to -inf: fall back to best
            live = np.array([int(np.argmax(stepped))])
        score = np.full(states, -np.inf)
        score[live] = stepped[live]

    best_last = int(live[np.argmax(score[live])])
    best_score = float(score[best_last])
    path = [best_last]
    for t in range(steps - 1, 0, -1):
        path.append(int(backptr[t, path[-1]]))
    path.reverse()
    return path, best_score


def viterbi_score(
    path: List[int],
    log_emissions: np.ndarray,
    log_transitions: np.ndarray,
    log_initial: np.ndarray = None,
) -> float:
    """Log score of a specific path (for testing optimality properties)."""
    emissions = np.asarray(log_emissions, dtype=np.float64)
    trans = np.asarray(log_transitions, dtype=np.float64)
    if len(path) != len(emissions):
        raise ValueError("path length must equal number of steps")
    if not path:
        return 0.0
    total = emissions[0, path[0]]
    if log_initial is not None:
        total += log_initial[path[0]]
    for t in range(1, len(path)):
        total += trans[path[t - 1], path[t]] + emissions[t, path[t]]
    return float(total)
