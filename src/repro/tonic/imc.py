"""IMC — Image Classification (AlexNet, 1000 ImageNet classes).

Paper §3.2.1: "image classification sends an image to the DjiNN service and
a prediction of what the image contains is sent to the application"; the
image tasks have no pre/post-processing beyond shipping the pixels and
reading the top prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .app import DnnBackend, TonicApp
from .imaging import fit_to

__all__ = ["ImcApp", "Classification"]


@dataclass(frozen=True)
class Classification:
    """Top-1 prediction with its probability and top-5 alternatives."""

    label: str
    index: int
    probability: float
    top5: Tuple[Tuple[str, float], ...]


class ImcApp(TonicApp):
    """Image classification over 3x227x227 float images in [0, 1]."""

    INPUT_SHAPE = (3, 227, 227)
    #: Caffe's per-channel ImageNet means, scaled to [0, 1] pixel range.
    CHANNEL_MEANS = np.array([0.408, 0.459, 0.482], dtype=np.float32)

    def __init__(self, backend: DnnBackend, labels: Optional[Sequence[str]] = None,
                 num_classes: int = 1000):
        super().__init__("imc", backend)
        self.labels = list(labels) if labels else [f"class_{i:04d}" for i in range(num_classes)]

    def preprocess(self, raw: np.ndarray) -> np.ndarray:
        image = np.asarray(raw, dtype=np.float32)
        if image.ndim != 3 or image.shape[0] != 3:
            raise ValueError(f"IMC expects one (3, H, W) image, got {image.shape}")
        if image.shape != self.INPUT_SHAPE:
            # arbitrary photo geometry: scale-and-crop to AlexNet's retina
            image = fit_to(image, *self.INPUT_SHAPE[1:])
        return (image - self.CHANNEL_MEANS[:, None, None])[None]

    def postprocess(self, outputs: np.ndarray, raw) -> Classification:
        probs = outputs[0]
        order = np.argsort(probs)[::-1][:5]
        top5 = tuple((self.labels[i], float(probs[i])) for i in order)
        best = int(order[0])
        return Classification(self.labels[best], best, float(probs[best]), top5)
