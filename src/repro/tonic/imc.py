"""IMC — Image Classification (AlexNet, 1000 ImageNet classes).

Paper §3.2.1: "image classification sends an image to the DjiNN service and
a prediction of what the image contains is sent to the application"; the
image tasks have no pre/post-processing beyond shipping the pixels and
reading the top prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .app import DnnBackend, TonicApp
from .imaging import fit_to

__all__ = ["ImcApp", "Classification"]


@dataclass(frozen=True)
class Classification:
    """Top-1 prediction with its probability and top-5 alternatives."""

    label: str
    index: int
    probability: float
    top5: Tuple[Tuple[str, float], ...]


class ImcApp(TonicApp):
    """Image classification over 3x227x227 float images in [0, 1]."""

    INPUT_SHAPE = (3, 227, 227)
    #: Caffe's per-channel ImageNet means, scaled to [0, 1] pixel range.
    CHANNEL_MEANS = np.array([0.408, 0.459, 0.482], dtype=np.float32)

    def __init__(self, backend: DnnBackend, labels: Optional[Sequence[str]] = None,
                 num_classes: int = 1000):
        super().__init__("imc", backend)
        self.labels = list(labels) if labels else [f"class_{i:04d}" for i in range(num_classes)]

    def _canonical(self, raw: np.ndarray) -> np.ndarray:
        image = np.asarray(raw, dtype=np.float32)
        if image.ndim != 3 or image.shape[0] != 3:
            raise ValueError(f"IMC expects one (3, H, W) image, got {image.shape}")
        if image.shape != self.INPUT_SHAPE:
            # arbitrary photo geometry: scale-and-crop to AlexNet's retina
            image = fit_to(image, *self.INPUT_SHAPE[1:])
        return image

    def preprocess(self, raw: np.ndarray) -> np.ndarray:
        return (self._canonical(raw) - self.CHANNEL_MEANS[:, None, None])[None]

    def preprocess_batch(self, raws):
        # one stack + one broadcast subtract over the whole batch
        images = [self._canonical(raw) for raw in raws]
        if not images:
            return np.empty((0,) + self.INPUT_SHAPE, dtype=np.float32), []
        batch = np.stack(images) - self.CHANNEL_MEANS[None, :, None, None]
        return batch, [1] * len(images)

    def postprocess(self, outputs: np.ndarray, raw) -> Classification:
        probs = outputs[0]
        order = np.argsort(probs)[::-1][:5]
        top5 = tuple((self.labels[i], float(probs[i])) for i in order)
        best = int(order[0])
        return Classification(self.labels[best], best, float(probs[best]), top5)

    def postprocess_batch(self, outputs, raws, counts) -> List[Classification]:
        # one argsort over the whole block, then cheap per-row label lookups
        order = np.argsort(outputs, axis=1)[:, ::-1][:, :5]
        results = []
        for probs, idx in zip(outputs, order):
            top5 = tuple((self.labels[i], float(probs[i])) for i in idx)
            best = int(idx[0])
            results.append(
                Classification(self.labels[best], best, float(probs[best]), top5))
        return results
