"""TonicApp: the common shape of every Tonic Suite application.

Each application is *preprocess -> DNN -> postprocess* (paper Figure 3).
The DNN stage is pluggable: a local :class:`repro.nn.Net`, or a
:class:`repro.core.client.DjinnClient` request to a running DjiNN service —
the application code is identical either way, which is the paper's central
service-architecture point.

``run`` times the three stages, producing the measured counterpart of the
paper's Figure 4 cycle breakdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.network import Net

__all__ = ["StageTiming", "DnnBackend", "LocalBackend", "TonicApp"]


@dataclass
class StageTiming:
    """Wall-clock seconds spent in each stage of one query."""

    pre_s: float = 0.0
    dnn_s: float = 0.0
    post_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.pre_s + self.dnn_s + self.post_s

    @property
    def dnn_fraction(self) -> float:
        total = self.total_s
        return self.dnn_s / total if total > 0 else 0.0

    def __add__(self, other: "StageTiming") -> "StageTiming":
        return StageTiming(
            self.pre_s + other.pre_s,
            self.dnn_s + other.dnn_s,
            self.post_s + other.post_s,
        )


class DnnBackend:
    """Anything that can evaluate a named model on a batch of inputs."""

    def infer(self, model: str, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class LocalBackend(DnnBackend):
    """Run inference in-process on a materialized net (no service).

    ``plan_batch`` compiles and attaches an arena-backed execution plan
    covering batches up to that size (see :meth:`repro.nn.Net.compile_plan`),
    so repeated queries reuse one set of buffers instead of reallocating
    activations per call.
    """

    def __init__(self, net: Net, plan_batch: Optional[int] = None):
        if not net.materialized:
            raise ValueError(f"net {net.name!r} must be materialized for a LocalBackend")
        self.net = net
        if plan_batch is not None:
            net.compile_plan(plan_batch)

    def infer(self, model: str, inputs: np.ndarray) -> np.ndarray:
        return self.net.forward(inputs)


class TonicApp:
    """Base class; subclasses implement ``preprocess`` and ``postprocess``.

    Parameters
    ----------
    app:
        Application key (``imc``, ``dig``, ...), also the model name
        requested from the DjiNN service.
    backend:
        Where the DNN stage runs.
    """

    def __init__(self, app: str, backend: DnnBackend):
        self.app = app
        self.backend = backend

    # ------------------------------------------------------------- pipeline
    def preprocess(self, raw: Any) -> np.ndarray:
        """Turn a raw query into the (n, *input_shape) DNN input batch."""
        raise NotImplementedError

    def postprocess(self, outputs: np.ndarray, raw: Any) -> Any:
        """Turn DNN outputs into the application's answer."""
        raise NotImplementedError

    # ------------------------------------------------------- batched pipeline
    def preprocess_batch(
        self, raws: Sequence[Any]
    ) -> Tuple[np.ndarray, List[int]]:
        """Preprocess many raw queries into one row-concatenated DNN batch.

        Returns ``(inputs, counts)`` where ``counts[i]`` is the number of
        DNN rows query ``i`` contributed — a query is not always one row
        (DIG packs many images per query, NLP one row per word, ASR one
        row per audio frame).  The base implementation is the per-item
        loop; subclasses override it with vectorized kernels that must
        produce the same bytes (property-tested in
        ``tests/test_tonic_batch.py``).
        """
        parts = [self.preprocess(raw) for raw in raws]
        counts = [len(p) for p in parts]
        if not parts:
            return np.empty((0,), dtype=np.float32), []
        if len(parts) == 1:
            return parts[0], counts
        return np.concatenate(parts, axis=0), counts

    def postprocess_batch(
        self, outputs: np.ndarray, raws: Sequence[Any], counts: Sequence[int]
    ) -> List[Any]:
        """Split one concatenated output block back into per-query answers.

        ``counts`` is the row layout returned by :meth:`preprocess_batch`.
        The base implementation slices and loops :meth:`postprocess`;
        subclasses hoist the row-wise math (softmax logs, argmax, prior
        subtraction) out of the loop.
        """
        results: List[Any] = []
        offset = 0
        for raw, count in zip(raws, counts):
            results.append(self.postprocess(outputs[offset:offset + count], raw))
            offset += count
        return results

    def run(self, raw: Any) -> Any:
        """Process one query end to end."""
        result, _ = self.run_timed(raw)
        return result

    def run_timed(self, raw: Any):
        """Process one query, returning ``(result, StageTiming)``."""
        t0 = time.monotonic()
        inputs = self.preprocess(raw)
        t1 = time.monotonic()
        outputs = self.backend.infer(self.app, inputs)
        t2 = time.monotonic()
        result = self.postprocess(outputs, raw)
        t3 = time.monotonic()
        return result, StageTiming(pre_s=t1 - t0, dnn_s=t2 - t1, post_s=t3 - t2)
