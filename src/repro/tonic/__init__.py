"""``repro.tonic`` — the Tonic Suite: 7 end-to-end DNN applications.

Image tasks (IMC, DIG, FACE), speech (ASR with a real filterbank frontend
and Viterbi decoder), and NLP (POS, CHK, NER with window features and
sentence-level tag search).  Every app follows the paper's
preprocess -> DNN service -> postprocess structure and can run its DNN
stage either in-process or against a live DjiNN server.
"""

from .app import DnnBackend, LocalBackend, StageTiming, TonicApp
from .asr import (
    AsrApp,
    AsrStream,
    EndpointConfig,
    HmmTopology,
    OnlineViterbi,
    Transcript,
    acoustic_training_set,
    frame_state_labels,
    words_from_phones,
)
from .datasets import (
    digit_dataset,
    face_images,
    imagenet_like_images,
    render_digit,
    sentence_queries,
    speech_queries,
    with_duplicates,
)
from .dig import DigApp
from .dsp import FrontendConfig, StreamingFrontend, fbank_features, mfcc, splice
from .face import FaceApp, Identification
from .imaging import bilinear_resize, center_crop, fit_to, per_channel_standardize
from .imc import Classification, ImcApp
from .metrics import edit_distance, iob_spans, span_f1, tagging_accuracy, word_error_rate
from .nlp import ChkApp, NerApp, NlpApp, PosApp, TagTransitions, tagging_training_set
from .serve import build_default_apps, decode_raw, jsonable_result, raw_item_shape
from .speechsynth import LEXICON, PHONES, synthesize_words
from .textgen import TaggedSentence, generate_corpus, generate_sentence
from .viterbi import beam_search, viterbi, viterbi_score
from .vocab import Vocabulary, WindowFeaturizer

__all__ = [
    "DnnBackend",
    "LocalBackend",
    "StageTiming",
    "TonicApp",
    "AsrApp",
    "AsrStream",
    "EndpointConfig",
    "OnlineViterbi",
    "HmmTopology",
    "Transcript",
    "acoustic_training_set",
    "frame_state_labels",
    "words_from_phones",
    "digit_dataset",
    "face_images",
    "imagenet_like_images",
    "render_digit",
    "sentence_queries",
    "speech_queries",
    "with_duplicates",
    "DigApp",
    "FrontendConfig",
    "StreamingFrontend",
    "fbank_features",
    "mfcc",
    "splice",
    "FaceApp",
    "Identification",
    "Classification",
    "ImcApp",
    "bilinear_resize",
    "center_crop",
    "fit_to",
    "per_channel_standardize",
    "edit_distance",
    "word_error_rate",
    "tagging_accuracy",
    "iob_spans",
    "span_f1",
    "ChkApp",
    "NerApp",
    "NlpApp",
    "PosApp",
    "TagTransitions",
    "tagging_training_set",
    "build_default_apps",
    "decode_raw",
    "jsonable_result",
    "raw_item_shape",
    "LEXICON",
    "PHONES",
    "synthesize_words",
    "TaggedSentence",
    "generate_corpus",
    "generate_sentence",
    "viterbi",
    "viterbi_score",
    "beam_search",
    "Vocabulary",
    "WindowFeaturizer",
]
