"""Synthetic tagged text corpus for the NLP tasks.

The paper's SENNA models were trained on Wikipedia for two months; we have
neither the corpus nor the budget, so the reproduction generates sentences
from a small phrase grammar in which every token carries gold POS, chunk
(IOB2) and named-entity (IOB2) tags.  The three SENNA window networks are
then genuinely trained on this corpus (they reach well over the paper's
"89% accuracy" bar on held-out sentences — the task is easier, which is fine:
what the evaluation needs is the real pipeline, not Wikipedia).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["TaggedSentence", "LEXICON", "generate_sentence", "generate_corpus"]


@dataclass(frozen=True)
class TaggedSentence:
    """A sentence with aligned gold annotations for all three NLP tasks."""

    words: Tuple[str, ...]
    pos: Tuple[str, ...]       # Penn Treebank POS tags
    chunks: Tuple[str, ...]    # IOB2 chunk tags (B-NP, I-NP, B-VP, ..., O)
    entities: Tuple[str, ...]  # IOB2 NER tags (B-PER, I-LOC, ..., O)

    def __post_init__(self):
        n = len(self.words)
        if not (len(self.pos) == len(self.chunks) == len(self.entities) == n):
            raise ValueError("annotation lengths disagree with word count")

    def __len__(self) -> int:
        return len(self.words)


# word -> POS tag, grouped by grammatical role
_DETERMINERS = {"the": "DT", "a": "DT", "this": "DT", "every": "DT"}
_ADJECTIVES = {w: "JJ" for w in ("quick", "lazy", "red", "large", "old", "busy", "deep", "warm")}
_NOUNS = {
    w: "NN"
    for w in ("fox", "dog", "server", "query", "network", "image", "model", "engineer",
              "datacenter", "request", "service", "cluster")
}
_PLURAL_NOUNS = {w: "NNS" for w in ("queries", "servers", "models", "images", "networks")}
_VERBS_Z = {w: "VBZ" for w in ("runs", "sends", "processes", "serves", "loads", "sees", "builds")}
_VERBS_D = {w: "VBD" for w in ("ran", "sent", "processed", "served", "loaded", "saw", "built")}
_ADVERBS = {w: "RB" for w in ("quickly", "slowly", "reliably", "often")}
_PREPOSITIONS = {w: "IN" for w in ("in", "on", "over", "under", "near", "through")}

# proper nouns with entity types, for NER
_PEOPLE = ("alice", "bob", "carol", "johann", "yiping", "trevor")
_ORGS = ("google", "michigan", "nvidia", "facebook", "claritylab")
_LOCS = ("detroit", "portland", "seattle", "chicago")

LEXICON: Dict[str, str] = {}
for table in (_DETERMINERS, _ADJECTIVES, _NOUNS, _PLURAL_NOUNS, _VERBS_Z, _VERBS_D,
              _ADVERBS, _PREPOSITIONS):
    LEXICON.update(table)
for name in _PEOPLE + _ORGS + _LOCS:
    LEXICON[name] = "NNP"

_ENTITY_TYPE = {name: "PER" for name in _PEOPLE}
_ENTITY_TYPE.update({name: "ORG" for name in _ORGS})
_ENTITY_TYPE.update({name: "LOC" for name in _LOCS})


def _pick(rng: np.random.Generator, table: Dict[str, str]) -> Tuple[str, str]:
    word = list(table)[rng.integers(len(table))]
    return word, table[word]


def _noun_phrase(rng: np.random.Generator) -> Tuple[List[str], List[str], List[str], List[str]]:
    """Returns (words, pos, chunk, ner) for one NP."""
    if rng.random() < 0.3:  # proper-noun NP, possibly two tokens (ORG person)
        name = (_PEOPLE + _ORGS + _LOCS)[rng.integers(len(_PEOPLE) + len(_ORGS) + len(_LOCS))]
        etype = _ENTITY_TYPE[name]
        words, pos = [name], ["NNP"]
        ner = [f"B-{etype}"]
        if etype == "PER" and rng.random() < 0.3:
            surname = _PEOPLE[rng.integers(len(_PEOPLE))]
            words.append(surname)
            pos.append("NNP")
            ner.append("I-PER")
        chunk = ["B-NP"] + ["I-NP"] * (len(words) - 1)
        return words, pos, chunk, ner
    words, pos = [], []
    det, det_tag = _pick(rng, _DETERMINERS)
    words.append(det)
    pos.append(det_tag)
    for _ in range(int(rng.integers(0, 3))):
        adj, adj_tag = _pick(rng, _ADJECTIVES)
        words.append(adj)
        pos.append(adj_tag)
    noun_table = _NOUNS if rng.random() < 0.8 else _PLURAL_NOUNS
    noun, noun_tag = _pick(rng, noun_table)
    words.append(noun)
    pos.append(noun_tag)
    chunk = ["B-NP"] + ["I-NP"] * (len(words) - 1)
    ner = ["O"] * len(words)
    return words, pos, chunk, ner


def _prep_phrase(rng) -> Tuple[List[str], List[str], List[str], List[str]]:
    prep, prep_tag = _pick(rng, _PREPOSITIONS)
    np_words, np_pos, np_chunk, np_ner = _noun_phrase(rng)
    return ([prep] + np_words, [prep_tag] + np_pos, ["B-PP"] + np_chunk, ["O"] + np_ner)


def generate_sentence(rng: np.random.Generator) -> TaggedSentence:
    """One sentence from the template grammar S -> NP VP (PP)."""
    words, pos, chunks, ner = _noun_phrase(rng)

    verb_table = _VERBS_Z if rng.random() < 0.7 else _VERBS_D
    verb, verb_tag = _pick(rng, verb_table)
    words.append(verb)
    pos.append(verb_tag)
    chunks.append("B-VP")
    ner.append("O")
    if rng.random() < 0.4:
        adv, adv_tag = _pick(rng, _ADVERBS)
        words.append(adv)
        pos.append(adv_tag)
        chunks.append("I-VP")
        ner.append("O")

    obj = _noun_phrase(rng)
    for acc, part in zip((words, pos, chunks, ner), obj):
        acc.extend(part)

    if rng.random() < 0.5:
        pp = _prep_phrase(rng)
        for acc, part in zip((words, pos, chunks, ner), pp):
            acc.extend(part)

    return TaggedSentence(tuple(words), tuple(pos), tuple(chunks), tuple(ner))


def generate_corpus(count: int, seed: int = 0) -> List[TaggedSentence]:
    """A reproducible corpus of ``count`` tagged sentences."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = np.random.default_rng(seed)
    return [generate_sentence(rng) for _ in range(count)]
