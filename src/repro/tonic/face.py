"""FACE — Facial Recognition (DeepFace retargeted to PubFig83's 83 identities).

Paper §3.2.1: "the facial recognition application predicts the identity of
faces using the DjiNN webservice"; one aligned 152x152 face per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .app import DnnBackend, TonicApp
from .imaging import fit_to

__all__ = ["FaceApp", "Identification"]


@dataclass(frozen=True)
class Identification:
    identity: str
    index: int
    probability: float


class FaceApp(TonicApp):
    """Identity prediction over 3x152x152 aligned-face float images."""

    INPUT_SHAPE = (3, 152, 152)

    def __init__(self, backend: DnnBackend, identities: Optional[Sequence[str]] = None,
                 num_identities: int = 83):
        super().__init__("face", backend)
        self.identities = (
            list(identities) if identities else [f"celebrity_{i:02d}" for i in range(num_identities)]
        )

    def _canonical(self, raw: np.ndarray) -> np.ndarray:
        image = np.asarray(raw, dtype=np.float32)
        if image.ndim != 3 or image.shape[0] != 3:
            raise ValueError(f"FACE expects one (3, H, W) image, got {image.shape}")
        if image.shape != self.INPUT_SHAPE:
            image = fit_to(image, *self.INPUT_SHAPE[1:])
        return image

    def preprocess(self, raw: np.ndarray) -> np.ndarray:
        return (self._canonical(raw) - 0.5)[None]

    def preprocess_batch(self, raws):
        # one stack + one subtract over the whole batch
        images = [self._canonical(raw) for raw in raws]
        if not images:
            return np.empty((0,) + self.INPUT_SHAPE, dtype=np.float32), []
        return np.stack(images) - np.float32(0.5), [1] * len(images)

    def postprocess(self, outputs: np.ndarray, raw) -> Identification:
        probs = outputs[0]
        best = int(np.argmax(probs))
        return Identification(self.identities[best], best, float(probs[best]))

    def postprocess_batch(self, outputs, raws, counts) -> List[Identification]:
        # one argmax over the whole block
        best = np.argmax(outputs, axis=1)
        return [
            Identification(self.identities[b], int(b), float(outputs[i, b]))
            for i, b in enumerate(best)
        ]
