"""NLP tasks — POS tagging, word chunking, named-entity recognition (SENNA).

Paper §3.2.3: "the text is preprocessed into word vector representations
before being sent to DjiNN.  After receiving the word predictions from the
DNN service, the postprocessing step searches for the most likely sequence
of tagged words."  CHK additionally chains a POS request first and feeds the
predicted tags into its own features.

The "most likely sequence" search is SENNA's sentence-level Viterbi over a
tag-transition matrix; here the transition scores are estimated from the
training corpus (:func:`TagTransitions.fit`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..models.senna import CHUNK_TAGS, NER_TAGS, POS_TAGS
from .app import DnnBackend, TonicApp
from .textgen import TaggedSentence
from .viterbi import viterbi
from .vocab import Vocabulary, WindowFeaturizer

__all__ = ["TagTransitions", "NlpApp", "PosApp", "ChkApp", "NerApp", "TASK_TAGS"]

TASK_TAGS = {"pos": tuple(POS_TAGS), "chk": tuple(CHUNK_TAGS), "ner": tuple(NER_TAGS)}


class TagTransitions:
    """Log transition scores between tags, estimated by add-one counting."""

    def __init__(self, tags: Sequence[str]):
        self.tags = tuple(tags)
        self.index = {t: i for i, t in enumerate(self.tags)}
        n = len(self.tags)
        self.log_trans = np.zeros((n, n))  # uniform until fitted
        self.log_init = np.zeros(n)

    def fit(self, tag_sequences: Sequence[Sequence[str]]) -> "TagTransitions":
        n = len(self.tags)
        counts = np.ones((n, n))
        init = np.ones(n)
        for seq in tag_sequences:
            ids = [self.index[t] for t in seq]
            if ids:
                init[ids[0]] += 1
            for a, b in zip(ids, ids[1:]):
                counts[a, b] += 1
        self.log_trans = np.log(counts / counts.sum(axis=1, keepdims=True))
        self.log_init = np.log(init / init.sum())
        return self


class NlpApp(TonicApp):
    """Shared pipeline for the three taggers.

    Parameters
    ----------
    task:
        ``"pos"``, ``"chk"`` or ``"ner"``.
    featurizer:
        Word-window featurizer (embeds words + discrete features).
    transitions:
        Tag-transition model used by the Viterbi postprocess; defaults to
        uniform transitions (pure per-word argmax behaviour).
    """

    def __init__(
        self,
        task: str,
        backend: DnnBackend,
        featurizer: WindowFeaturizer,
        transitions: Optional[TagTransitions] = None,
    ):
        if task not in TASK_TAGS:
            raise ValueError(f"unknown NLP task {task!r}; known: {sorted(TASK_TAGS)}")
        super().__init__(task, backend)
        self.task = task
        self.tags = TASK_TAGS[task]
        self.featurizer = featurizer
        self.transitions = transitions or TagTransitions(self.tags)

    def _words(self, raw) -> List[str]:
        if isinstance(raw, TaggedSentence):
            return list(raw.words)
        if isinstance(raw, str):
            return raw.split()
        return list(raw)

    def _feature_ids(self, words: List[str]) -> Optional[List[int]]:
        return None  # default: capitalization feature

    def preprocess(self, raw) -> np.ndarray:
        words = self._words(raw)
        if not words:
            raise ValueError(f"{self.task.upper()} query must contain at least one word")
        return self.featurizer.featurize(words, self._feature_ids(words))

    def postprocess(self, outputs: np.ndarray, raw) -> List[str]:
        log_emissions = np.log(np.maximum(outputs, 1e-12))
        path, _ = viterbi(
            log_emissions, self.transitions.log_trans, self.transitions.log_init
        )
        return [self.tags[i] for i in path]

    def postprocess_batch(self, outputs, raws, counts) -> List[List[str]]:
        # the emission log runs once over the whole concatenated block; only
        # the (inherently per-sentence) Viterbi search stays in the loop
        log_emissions = np.log(np.maximum(outputs, 1e-12))
        results, offset = [], 0
        for count in counts:
            path, _ = viterbi(
                log_emissions[offset:offset + count],
                self.transitions.log_trans, self.transitions.log_init,
            )
            results.append([self.tags[i] for i in path])
            offset += count
        return results


class PosApp(NlpApp):
    """Part-of-speech tagging (45 Penn Treebank tags)."""

    def __init__(self, backend, featurizer, transitions=None):
        super().__init__("pos", backend, featurizer, transitions)


class NerApp(NlpApp):
    """Named-entity recognition (CoNLL-2003 IOB2 tags)."""

    def __init__(self, backend, featurizer, transitions=None):
        super().__init__("ner", backend, featurizer, transitions)


class ChkApp(NlpApp):
    """Word chunking (CoNLL-2000 IOB2 tags), chained behind POS.

    As in the paper, a CHK query first runs the POS application and encodes
    the predicted POS tags as the discrete feature of its own windows — so
    one CHK query costs two DNN service requests.
    """

    def __init__(self, backend, featurizer, pos_app: PosApp, transitions=None):
        super().__init__("chk", backend, featurizer, transitions)
        self.pos_app = pos_app
        # POS tag -> feature id, offset past the caps features (0-3)
        self._pos_feature = {tag: 4 + i for i, tag in enumerate(POS_TAGS)}

    def _feature_ids(self, words: List[str]) -> List[int]:
        pos_tags = self.pos_app.run(words)
        return [self._pos_feature[t] for t in pos_tags]


def tagging_training_set(
    task: str,
    corpus: Sequence[TaggedSentence],
    featurizer: WindowFeaturizer,
    pos_app: Optional[PosApp] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """(window vectors, tag labels) over a corpus, for training a tagger.

    For CHK, gold POS tags are used as the chained feature (teacher forcing);
    at inference the app uses predicted tags instead.
    """
    tags = TASK_TAGS[task]
    tag_index = {t: i for i, t in enumerate(tags)}
    gold = {"pos": lambda s: s.pos, "chk": lambda s: s.chunks, "ner": lambda s: s.entities}[task]
    pos_feature = {tag: 4 + i for i, tag in enumerate(POS_TAGS)}
    xs: List[np.ndarray] = []
    ys: List[int] = []
    for sentence in corpus:
        feature_ids = None
        if task == "chk":
            feature_ids = [pos_feature[t] for t in sentence.pos]
        xs.append(featurizer.featurize(list(sentence.words), feature_ids))
        ys.extend(tag_index[t] for t in gold(sentence))
    return np.concatenate(xs), np.asarray(ys, dtype=np.int64)
