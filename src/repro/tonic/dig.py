"""DIG — Digit Recognition (LeNet-5).

Paper Table 3: a DIG query carries **100 images** and returns 100
classifications.  Preprocessing pads the 28x28 digits to LeNet-5's 32x32
retina and normalizes, as the original MNIST pipeline does.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .app import DnnBackend, TonicApp

__all__ = ["DigApp"]


class DigApp(TonicApp):
    """Digit recognition over batches of 1x28x28 float images in [0, 1]."""

    RAW_SHAPE = (1, 28, 28)
    IMAGES_PER_QUERY = 100  # Table 3

    def __init__(self, backend: DnnBackend):
        super().__init__("dig", backend)

    def _images(self, raw: np.ndarray) -> np.ndarray:
        images = np.asarray(raw, dtype=np.float32)
        if images.ndim == 3:
            images = images[None]
        if images.ndim != 4 or images.shape[1:] != self.RAW_SHAPE:
            raise ValueError(
                f"DIG expects (n, 1, 28, 28) images, got {np.asarray(raw).shape}"
            )
        return images

    def preprocess(self, raw: np.ndarray) -> np.ndarray:
        padded = np.pad(self._images(raw), ((0, 0), (0, 0), (2, 2), (2, 2)))
        return (padded - 0.5) * 2.0  # center to [-1, 1] for the tanh net

    def preprocess_batch(self, raws):
        # concatenate all queries' images, then one pad + one scale pass
        blocks = [self._images(raw) for raw in raws]
        counts = [len(b) for b in blocks]
        if not blocks:
            return np.empty((0, 1, 32, 32), dtype=np.float32), []
        stacked = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
        padded = np.pad(stacked, ((0, 0), (0, 0), (2, 2), (2, 2)))
        return (padded - 0.5) * 2.0, counts

    def postprocess(self, outputs: np.ndarray, raw) -> List[int]:
        return [int(i) for i in np.argmax(outputs, axis=1)]

    def postprocess_batch(self, outputs, raws, counts) -> List[List[int]]:
        # one argmax over the whole block, split back by per-query counts
        best = np.argmax(outputs, axis=1)
        results, offset = [], 0
        for count in counts:
            results.append([int(i) for i in best[offset:offset + count]])
            offset += count
        return results
