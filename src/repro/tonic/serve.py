"""Serving glue: raw wire payloads in, JSON-able application results out.

The v5 ``APP_REQUEST`` frame carries a Tonic application's *raw* input —
pixel bytes, audio samples, token text — and the server runs the whole
preprocess → DNN → postprocess pipeline (see ``docs/service_protocol.md``).
This module is the seam between the wire and :class:`repro.tonic.TonicApp`:
decoding typed payloads into the raw values ``preprocess`` expects,
rendering app results as JSON, and building the default app table for a
server's registry.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..core.protocol import KIND_TEXT, KIND_U8
from .asr import AsrApp, Transcript
from .dig import DigApp
from .face import FaceApp, Identification
from .imc import Classification, ImcApp

__all__ = ["decode_raw", "jsonable_result", "build_default_apps",
           "raw_item_shape"]


def decode_raw(message) -> Any:
    """Wire payload -> the raw value a TonicApp's ``preprocess`` expects.

    ``KIND_U8`` tensors are pixel/sample bytes, scaled to [0, 1] float32 —
    the domain every image app ingests.  This is the dispatch-slimming
    payoff: a u8 IMC image is a quarter the wire bytes of its float
    equivalent and ~16x smaller than the preprocessed mean-subtracted
    tensor.  ``KIND_TENSOR`` passes through as the float32 array,
    ``KIND_TEXT`` as the UTF-8 string (NLP apps split it into words).
    """
    if message.payload_kind == KIND_TEXT:
        return message.text
    tensor = message.tensor
    if message.payload_kind == KIND_U8:
        return tensor.astype(np.float32) * np.float32(1.0 / 255.0)
    return tensor


def jsonable_result(result: Any) -> Any:
    """Render one app answer (or a list of them) as JSON-able data."""
    if isinstance(result, Classification):
        return {
            "label": result.label,
            "index": result.index,
            "probability": result.probability,
            "top5": [[label, prob] for label, prob in result.top5],
        }
    if isinstance(result, Identification):
        return {
            "identity": result.identity,
            "index": result.index,
            "probability": result.probability,
        }
    if isinstance(result, Transcript):
        return {
            "text": result.text,
            "words": list(result.words),
            "phones": list(result.phones),
            "log_score": result.log_score,
        }
    if isinstance(result, (list, tuple)):
        return [jsonable_result(item) for item in result]
    if isinstance(result, np.integer):
        return int(result)
    if isinstance(result, np.floating):
        return float(result)
    return result


def build_default_apps(registry) -> Dict[str, object]:
    """Default app table for a registry: one TonicApp per recognized model.

    Models named after the stateless Tonic apps (``imc``, ``dig``,
    ``face``, ``asr``) get apps sized to the registered net's output
    width, so small test models work as well as the full-fidelity ones.
    The NLP taggers are *not* auto-built — their featurizer and transition
    model are trained state the server cannot derive from the net alone,
    so they are passed explicitly via the server's ``apps`` parameter.
    Only the pre/postprocess kernels of these apps are used server-side;
    the DNN stage runs through the serving executor, not ``app.backend``.
    """
    apps: Dict[str, object] = {}
    for name in registry.names():
        app = _default_app(name, registry.get(name))
        if app is not None:
            apps[name] = app
    return apps


def raw_item_shape(name: str, in_shape) -> Optional[Tuple[int, ...]]:
    """Slot shape of one *raw* payload item for in-worker preprocess.

    Only apps whose preprocess maps one fixed-shape raw item to exactly
    one DNN row qualify for the proc pool's raw dispatch (the worker
    process preprocesses inside its shm slot): the image apps, at their
    canonical raw sizes, against a net with the full-fidelity input shape.
    Text and audio payloads are ragged and stay parent-side.  Returns
    ``None`` when the model does not qualify.
    """
    in_shape = tuple(int(d) for d in in_shape)
    if name == "imc" and in_shape == (3, 227, 227):
        return (3, 227, 227)
    if name == "face" and in_shape == (3, 152, 152):
        return (3, 152, 152)
    if name == "dig" and in_shape == (1, 32, 32):
        return (1, 28, 28)
    return None


def _default_app(name: str, net) -> Optional[object]:
    width = int(np.prod(net.output_shape))
    if name == "imc":
        return ImcApp(backend=None, num_classes=width)
    if name == "dig":
        return DigApp(backend=None)
    if name == "face":
        return FaceApp(backend=None, num_identities=width)
    if name == "asr":
        try:
            return AsrApp(backend=None, num_senones=width)
        except ValueError:
            return None  # output too narrow to cover the HMM states
    return None
