"""Synthetic speech: a formant-style phone synthesizer.

The paper's ASR inputs are real voice recordings; we have none, so queries
are synthesized.  Each phone is a fixed pair of formant frequencies (plus a
noise floor for fricatives); a word is its lexicon phone sequence rendered
as a concatenation of formant segments with amplitude envelopes.  The result
is not human speech, but it exercises the identical code path: real audio
samples -> filterbank frontend -> acoustic DNN -> Viterbi decode, and a
small acoustic model trained on this synthesizer decodes it back to words
with high accuracy (see ``examples/asr_pipeline.py``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["PHONES", "LEXICON", "phone_formants", "synthesize_phone", "synthesize_words", "SAMPLE_RATE"]

SAMPLE_RATE = 16000

#: Phone inventory: a compact ARPAbet-like set.
PHONES: Tuple[str, ...] = (
    "sil", "aa", "eh", "iy", "ow", "uw", "b", "d", "g", "k", "l", "m", "n", "r", "s", "t",
)

#: (F1, F2) formant frequencies in Hz per phone; fricatives get noise energy.
_FORMANTS: Dict[str, Tuple[float, float, float]] = {
    # phone: (f1, f2, noise_mix)
    "sil": (0.0, 0.0, 0.0),
    "aa": (730.0, 1090.0, 0.0),
    "eh": (530.0, 1840.0, 0.0),
    "iy": (270.0, 2290.0, 0.0),
    "ow": (570.0, 840.0, 0.0),
    "uw": (300.0, 870.0, 0.0),
    "b": (400.0, 1100.0, 0.2),
    "d": (450.0, 1700.0, 0.2),
    "g": (350.0, 2000.0, 0.2),
    "k": (500.0, 2200.0, 0.4),
    "l": (380.0, 1200.0, 0.0),
    "m": (280.0, 1000.0, 0.0),
    "n": (320.0, 1400.0, 0.0),
    "r": (420.0, 1300.0, 0.0),
    "s": (2500.0, 4500.0, 0.8),
    "t": (1800.0, 3500.0, 0.6),
}

#: Word pronunciation lexicon for the synthetic task vocabulary.
LEXICON: Dict[str, Tuple[str, ...]] = {
    "go": ("g", "ow"),
    "stop": ("s", "t", "aa", "b"),
    "left": ("l", "eh", "t"),
    "right": ("r", "aa", "iy", "t"),
    "up": ("aa", "b"),
    "down": ("d", "aa", "n"),
    "on": ("aa", "n"),
    "off": ("aa", "s"),
    "read": ("r", "iy", "d"),
    "mail": ("m", "eh", "l"),
    "call": ("k", "aa", "l"),
    "mom": ("m", "aa", "m"),
    "no": ("n", "ow"),
    "yes": ("iy", "eh", "s"),
    "music": ("m", "uw", "s", "iy", "k"),
    "lights": ("l", "aa", "iy", "t", "s"),
}


def phone_formants(phone: str) -> Tuple[float, float, float]:
    """(F1, F2, noise mix) for a phone; raises on unknown phones."""
    try:
        return _FORMANTS[phone]
    except KeyError:
        raise ValueError(f"unknown phone {phone!r}; known: {sorted(_FORMANTS)}") from None


def synthesize_phone(
    phone: str,
    duration_s: float,
    rng: np.random.Generator,
    sample_rate: int = SAMPLE_RATE,
) -> np.ndarray:
    """Render one phone as formant sinusoids + noise with a smooth envelope."""
    f1, f2, noise_mix = phone_formants(phone)
    n = max(1, int(duration_s * sample_rate))
    t = np.arange(n) / sample_rate
    if phone == "sil":
        return rng.normal(0.0, 0.002, size=n)
    # small per-utterance formant jitter: no two speakers are identical
    jitter = rng.normal(1.0, 0.02, size=2)
    tone = 0.6 * np.sin(2 * np.pi * f1 * jitter[0] * t) + 0.4 * np.sin(
        2 * np.pi * f2 * jitter[1] * t + rng.uniform(0, 2 * np.pi)
    )
    noise = rng.normal(0.0, 1.0, size=n)
    signal = (1.0 - noise_mix) * tone + noise_mix * noise
    ramp = min(n // 4, int(0.005 * sample_rate)) or 1
    envelope = np.ones(n)
    envelope[:ramp] = np.linspace(0.0, 1.0, ramp)
    envelope[-ramp:] = np.linspace(1.0, 0.0, ramp)
    return signal * envelope * 0.3


def synthesize_words(
    words: Sequence[str],
    seed: int = 0,
    phone_duration_s: float = 0.08,
    sample_rate: int = SAMPLE_RATE,
) -> Tuple[np.ndarray, List[Tuple[str, int, int]]]:
    """Render a word sequence to audio.

    Returns ``(signal, alignment)`` where alignment lists
    ``(phone, start_sample, end_sample)`` — the supervision used to train
    the small functional acoustic model.
    """
    rng = np.random.default_rng(seed)
    pieces: List[np.ndarray] = []
    alignment: List[Tuple[str, int, int]] = []
    cursor = 0

    def emit(phone: str, duration: float) -> None:
        nonlocal cursor
        seg = synthesize_phone(phone, duration, rng, sample_rate)
        pieces.append(seg)
        alignment.append((phone, cursor, cursor + len(seg)))
        cursor += len(seg)

    emit("sil", 0.1)
    for word in words:
        if word not in LEXICON:
            raise ValueError(f"word {word!r} not in lexicon; known: {sorted(LEXICON)}")
        for phone in LEXICON[word]:
            emit(phone, phone_duration_s * rng.uniform(0.8, 1.3))
        emit("sil", 0.06)
    return np.concatenate(pieces), alignment
