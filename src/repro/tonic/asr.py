"""ASR — Automatic Speech Recognition (Kaldi-style hybrid DNN/HMM).

Paper §3.2.2: the app "requires preprocessing to generate feature vectors
describing the speech input that are sent to the DjiNN webservice.  The
service returns predictions for each feature vector that are postprocessed
to find the most likely sequence of text."

Reproduction pipeline:

* preprocess  — filterbank frontend + frame splicing (:mod:`repro.tonic.dsp`)
* DNN service — per-frame senone posteriors from the acoustic model
* postprocess — posterior-to-likelihood conversion, Viterbi over a 3-state
  left-to-right phone HMM, then a lexicon dynamic program that segments the
  phone string into words

The full-fidelity acoustic model (Table 1: 3483 senones, ~30M parameters) is
used by the performance model; the *functional* pipeline defaults to the
compact tying below (16 phones x 3 states = 48 senones) so a small acoustic
model trained on the synthesizer really decodes text (see
``examples/asr_pipeline.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .app import DnnBackend, TonicApp
from .dsp import FrontendConfig, StreamingFrontend, fbank_features, splice
from .metrics import edit_distance
from .speechsynth import LEXICON, PHONES
from .viterbi import beam_search, viterbi

__all__ = [
    "AsrApp",
    "AsrStream",
    "EndpointConfig",
    "OnlineViterbi",
    "HmmTopology",
    "Transcript",
    "words_from_phones",
    "frame_state_labels",
    "acoustic_training_set",
    "STATES_PER_PHONE",
]

#: Left-to-right states per phone (standard 3-state topology).
STATES_PER_PHONE = 3


@dataclass(frozen=True)
class Transcript:
    """Decoded text plus the intermediate phone path for inspection."""

    words: Tuple[str, ...]
    phones: Tuple[str, ...]
    log_score: float

    @property
    def text(self) -> str:
        return " ".join(self.words)


class HmmTopology:
    """3-state left-to-right HMM over the phone inventory.

    Builds the (S, S) log-transition matrix used by Viterbi decoding:
    self-loops, within-phone advances, and uniform phone-to-phone bigrams at
    phone exits.
    """

    def __init__(self, phones: Sequence[str] = PHONES, self_loop: float = 0.6):
        if not 0.0 < self_loop < 1.0:
            raise ValueError(f"self_loop must be in (0, 1), got {self_loop}")
        self.phones = tuple(phones)
        self.num_states = len(self.phones) * STATES_PER_PHONE
        advance = 1.0 - self_loop
        bigram = advance / len(self.phones)
        trans = np.full((self.num_states, self.num_states), -np.inf)
        for p in range(len(self.phones)):
            for s in range(STATES_PER_PHONE):
                state = p * STATES_PER_PHONE + s
                trans[state, state] = np.log(self_loop)
                if s + 1 < STATES_PER_PHONE:
                    trans[state, state + 1] = np.log(advance)
                else:  # phone exit: enter any phone's first state
                    for q in range(len(self.phones)):
                        trans[state, q * STATES_PER_PHONE] = np.log(bigram)
        self.log_transitions = trans
        # start in any phone's first state
        init = np.full(self.num_states, -np.inf)
        init[:: STATES_PER_PHONE] = -np.log(len(self.phones))
        self.log_initial = init

    def state_phone(self, state: int) -> str:
        return self.phones[state // STATES_PER_PHONE]


def _collapse_path(topology: HmmTopology, path: List[int]) -> List[str]:
    """State path -> phone sequence: collapse runs, drop silence."""
    phones: List[str] = []
    prev_phone_idx = -1
    for state in path:
        phone_idx = state // STATES_PER_PHONE
        if phone_idx != prev_phone_idx:
            phones.append(topology.phones[phone_idx])
            prev_phone_idx = phone_idx
    return [p for p in phones if p != "sil"]


def words_from_phones(
    phones: Sequence[str],
    lexicon: Dict[str, Tuple[str, ...]] = LEXICON,
    slack: int = 1,
    unmatched_cost: float = 3.0,
) -> List[str]:
    """Segment a phone string into lexicon words by dynamic programming.

    ``dp[i]`` = cheapest parse of ``phones[:i]``; each word may consume a
    segment within ``slack`` of its pronunciation length at a cost equal to
    the segment/pronunciation edit distance; a phone may also be skipped at
    ``unmatched_cost`` (decoder insertions).
    """
    n = len(phones)
    INF = float("inf")
    cost = [INF] * (n + 1)
    parse: List[List[str]] = [[] for _ in range(n + 1)]
    cost[0] = 0.0
    for i in range(n):
        if cost[i] == INF:
            continue
        # skip one phone
        if cost[i] + unmatched_cost < cost[i + 1]:
            cost[i + 1] = cost[i] + unmatched_cost
            parse[i + 1] = parse[i]
        for word, pron in lexicon.items():
            for seg_len in range(max(1, len(pron) - slack), len(pron) + slack + 1):
                j = i + seg_len
                if j > n:
                    continue
                c = cost[i] + edit_distance(phones[i:j], pron)
                if c < cost[j]:
                    cost[j] = c
                    parse[j] = parse[i] + [word]
    return list(parse[n])


class AsrApp(TonicApp):
    """Speech-to-text over raw mono audio at 16 kHz.

    Parameters
    ----------
    backend:
        DNN backend; its model must output one posterior row per input
        frame with ``num_senones`` columns.
    num_senones:
        Output width of the acoustic model.  When it exceeds the HMM state
        count, senones are tied to states by ``senone % num_states``
        (a synthetic tying that stands in for Kaldi's tree, documented in
        DESIGN.md); when equal, the mapping is identity.
    log_priors:
        Senone log-priors for posterior -> likelihood conversion (uniform
        when omitted; supply training-set frequencies for trained models).
    beam_width:
        When set, decode with beam search (the Kaldi-style approximate
        search) instead of exact Viterbi.
    """

    def __init__(
        self,
        backend: DnnBackend,
        num_senones: int = len(PHONES) * STATES_PER_PHONE,
        frontend: FrontendConfig = FrontendConfig(),
        topology: Optional[HmmTopology] = None,
        log_priors: Optional[np.ndarray] = None,
        lexicon: Dict[str, Tuple[str, ...]] = LEXICON,
        beam_width: Optional[int] = None,
    ):
        super().__init__("asr", backend)
        self.frontend = frontend
        self.topology = topology or HmmTopology()
        if num_senones < self.topology.num_states:
            raise ValueError(
                f"num_senones ({num_senones}) must cover the "
                f"{self.topology.num_states} HMM states"
            )
        self.num_senones = num_senones
        if log_priors is not None and log_priors.shape != (num_senones,):
            raise ValueError(f"log_priors must have shape ({num_senones},)")
        self.log_priors = log_priors
        self.lexicon = dict(lexicon)
        if beam_width is not None and beam_width < 1:
            raise ValueError(f"beam_width must be >= 1, got {beam_width}")
        self.beam_width = beam_width

    # ------------------------------------------------------------- pipeline
    def preprocess(self, raw: np.ndarray) -> np.ndarray:
        features = fbank_features(np.asarray(raw, dtype=np.float64), self.frontend)
        return splice(features).astype(np.float32)

    def emissions(self, outputs: np.ndarray) -> np.ndarray:
        """Posterior rows -> per-state log emission scores (tied classes)."""
        log_post = np.log(np.maximum(outputs, 1e-12))
        if self.log_priors is not None:
            log_post = log_post - self.log_priors[None, :]
        states = self.topology.num_states
        if self.num_senones == states:
            return log_post
        # synthetic tying: fold senones onto states by modulo, taking the
        # best-scoring senone in each tied class
        emissions = np.full((log_post.shape[0], states), -np.inf)
        for state in range(states):
            emissions[:, state] = log_post[:, state::states].max(axis=1)
        return emissions

    def _decode(self, emissions: np.ndarray) -> Transcript:
        if self.beam_width is not None:
            path, score = beam_search(
                emissions, self.topology.log_transitions,
                self.topology.log_initial, beam_width=self.beam_width,
            )
        else:
            path, score = viterbi(
                emissions, self.topology.log_transitions, self.topology.log_initial
            )
        phones = _collapse_path(self.topology, path)
        words = words_from_phones(phones, self.lexicon)
        return Transcript(tuple(words), tuple(phones), score)

    def postprocess(self, outputs: np.ndarray, raw) -> Transcript:
        return self._decode(self.emissions(outputs))

    def postprocess_batch(self, outputs, raws, counts) -> List[Transcript]:
        # posterior -> likelihood conversion (log, prior subtract, senone
        # tying fold) is row-wise, so it runs once over the whole block;
        # each utterance then decodes from its own slice
        emissions = self.emissions(outputs)
        results: List[Transcript] = []
        offset = 0
        for count in counts:
            results.append(self._decode(emissions[offset:offset + count]))
            offset += count
        return results


# ---------------------------------------------------------------------------
# Streaming decode
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EndpointConfig:
    """Energy-based end-of-utterance detection.

    A stream is *endpointed* once it has accumulated at least
    ``min_speech_ms`` of frames above ``energy_floor`` (mean squared
    amplitude of the pre-emphasized, windowed frame) followed by at least
    ``silence_ms`` of consecutive trailing frames below it.
    """

    energy_floor: float = 1e-5
    silence_ms: float = 300.0
    min_speech_ms: float = 100.0


class OnlineViterbi:
    """Viterbi forward pass that accepts emission rows incrementally.

    Keeps the running per-state score vector and the backpointer history;
    :meth:`best_path` runs a traceback from the current best state, so a
    provisional path is available after every chunk without re-scanning
    earlier frames.
    """

    def __init__(self, log_transitions: np.ndarray, log_initial: np.ndarray):
        self._trans = np.asarray(log_transitions, dtype=np.float64)
        self._init = np.asarray(log_initial, dtype=np.float64)
        self._score: Optional[np.ndarray] = None
        self._backptr: List[np.ndarray] = []

    @property
    def steps(self) -> int:
        return len(self._backptr) + (0 if self._score is None else 1)

    def step(self, emissions: np.ndarray) -> None:
        """Advance by ``(k, S)`` emission rows."""
        emissions = np.asarray(emissions, dtype=np.float64)
        for row in emissions:
            if self._score is None:
                self._score = self._init + row
                continue
            candidate = self._score[:, None] + self._trans
            self._backptr.append(np.argmax(candidate, axis=0))
            self._score = candidate.max(axis=0) + row

    def best_path(self) -> Tuple[List[int], float]:
        """Traceback of the best path through every frame seen so far."""
        if self._score is None:
            return [], 0.0
        state = int(np.argmax(self._score))
        score = float(self._score[state])
        path = [state]
        for backptr in reversed(self._backptr):
            state = int(backptr[state])
            path.append(state)
        path.reverse()
        return path, score


class AsrStream:
    """Incremental ASR decode over chunked audio.

    Chunks of raw 16 kHz mono samples go through the incremental frontend
    (:class:`repro.tonic.dsp.StreamingFrontend`), the acoustic model, and an
    :class:`OnlineViterbi` pass, producing a provisional partial transcript
    per chunk.  Two frame populations are deliberately distinct:

    * *Partial* decode consumes causally-normalized features spliced only
      up to the last frame with full right context (+/-5), so every frame
      is scored exactly once as it becomes decodable — the carry-over
      context is the frontend's sample tail, the undecoded feature rows,
      and the Viterbi state.
    * :meth:`finish` re-scores the utterance with exact (full mean/variance)
      normalization, so the final transcript equals the unary
      :class:`AsrApp` transcript on the same audio.

    Energy endpointing (:class:`EndpointConfig`) flips :attr:`endpointed`
    once trailing silence follows speech; the serving layer finalizes the
    stream at that point without waiting for an explicit close.

    ``dnn`` is the acoustic-model evaluation hook — on a server this routes
    through the shared batching executor, so stream chunks ride the same
    EDF queue as unary work.
    """

    SPLICE_CONTEXT = 5

    def __init__(
        self,
        app: AsrApp,
        dnn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        endpoint: EndpointConfig = EndpointConfig(),
    ):
        self.app = app
        self._dnn = dnn if dnn is not None else (
            lambda x: app.backend.infer(app.app, x))
        self.endpoint = endpoint
        self.frontend = StreamingFrontend(app.frontend)
        self.decoder = OnlineViterbi(
            app.topology.log_transitions, app.topology.log_initial)
        self._features: List[np.ndarray] = []  # causal rows, decoded + pending
        self._decoded = 0                      # rows consumed by the decoder
        self.endpointed = False
        frame_ms = app.frontend.hop_ms
        self._silence_frames = max(1, int(round(endpoint.silence_ms / frame_ms)))
        self._min_speech_frames = max(1, int(round(endpoint.min_speech_ms / frame_ms)))

    # ------------------------------------------------------------- pipeline
    def _spliceable(self) -> int:
        """Frames currently decodable: all with full right splice context."""
        return max(0, len(self._features) - self.SPLICE_CONTEXT)

    def _splice_rows(self, start: int, stop: int) -> np.ndarray:
        """Splice rows [start, stop) with left-edge clamping.

        Right context always exists for spliceable rows; the left edge
        clamps to frame 0, matching the batch :func:`splice` replication.
        """
        ctx = self.SPLICE_CONTEXT
        feats = self._features
        rows = []
        for t in range(start, stop):
            window = [feats[max(0, min(t + o, len(feats) - 1))]
                      for o in range(-ctx, ctx + 1)]
            rows.append(np.concatenate(window))
        return np.asarray(rows, dtype=np.float32)

    def feed(self, chunk: np.ndarray) -> dict:
        """Consume one chunk of samples; return the partial result."""
        if self.endpointed:
            raise RuntimeError("stream already endpointed; no more chunks")
        new = self.frontend.feed(np.asarray(chunk, dtype=np.float64))
        if len(new):
            self._features.extend(np.asarray(new, dtype=np.float64))
        ready = self._spliceable()
        if ready > self._decoded:
            spliced = self._splice_rows(self._decoded, ready)
            posteriors = self._dnn(spliced)
            self.decoder.step(self.app.emissions(posteriors))
            self._decoded = ready
        self._check_endpoint()
        path, score = self.decoder.best_path()
        phones = _collapse_path(self.app.topology, path)
        words = words_from_phones(phones, self.app.lexicon)
        return {
            "partial": " ".join(words),
            "frames": self._decoded,
            "endpoint": self.endpointed,
        }

    def _check_endpoint(self) -> None:
        if self.endpointed:
            return
        energies = self.frontend.energies
        floor = self.endpoint.energy_floor
        trailing = 0
        for e in reversed(energies):
            if e >= floor:
                break
            trailing += 1
        speech = sum(1 for e in energies[:len(energies) - trailing]
                     if e >= floor)
        if (speech >= self._min_speech_frames
                and trailing >= self._silence_frames):
            self.endpointed = True

    def finish(self) -> dict:
        """Exact final decode; equals the unary transcript on this audio."""
        features = self.frontend.finalize()
        if not len(features):
            transcript = Transcript((), (), 0.0)
        else:
            spliced = splice(features).astype(np.float32)
            posteriors = self._dnn(spliced)
            transcript = self.app.postprocess(posteriors, None)
        return {
            "transcript": transcript.text,
            "phones": list(transcript.phones),
            "log_score": transcript.log_score,
            "frames": self.frontend.num_frames,
            "endpoint": self.endpointed,
        }


# ---------------------------------------------------------------------------
# Training supervision from the synthesizer's alignments
# ---------------------------------------------------------------------------

def frame_state_labels(
    alignment: List[Tuple[str, int, int]],
    num_frames: int,
    frontend: FrontendConfig = FrontendConfig(),
    topology: Optional[HmmTopology] = None,
) -> np.ndarray:
    """Per-frame tied-state labels from a synthesizer phone alignment.

    A frame's label is the phone active at its center sample; the substate
    (0/1/2) is the relative position within that phone segment.
    """
    topo = topology or HmmTopology()
    phone_index = {p: i for i, p in enumerate(topo.phones)}
    labels = np.zeros(num_frames, dtype=np.int64)
    half = frontend.frame_len // 2
    seg = 0
    for t in range(num_frames):
        center = t * frontend.hop_len + half
        while seg + 1 < len(alignment) and center >= alignment[seg][2]:
            seg += 1
        phone, start, end = alignment[seg]
        rel = (center - start) / max(1, end - start)
        substate = min(STATES_PER_PHONE - 1, int(rel * STATES_PER_PHONE))
        labels[t] = phone_index[phone] * STATES_PER_PHONE + substate
    return labels


def acoustic_training_set(
    utterances: Sequence[Tuple[np.ndarray, List[Tuple[str, int, int]]]],
    frontend: FrontendConfig = FrontendConfig(),
    topology: Optional[HmmTopology] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """(spliced features, state labels) over a set of aligned utterances."""
    feats: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    for audio, alignment in utterances:
        f = splice(fbank_features(audio, frontend)).astype(np.float32)
        feats.append(f)
        labels.append(frame_state_labels(alignment, len(f), frontend, topology))
    return np.concatenate(feats), np.concatenate(labels)
