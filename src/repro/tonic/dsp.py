"""Speech DSP frontend for the ASR task (the Kaldi-style preprocessing the
paper counts as ASR's substantial non-DNN work, Figure 4).

Pipeline: pre-emphasis -> 25ms/10ms Hamming-windowed frames -> FFT power
spectrum -> mel filterbank -> log -> (optional DCT to MFCC) -> mean/variance
normalization -> +/-5 frame splicing into the 440-dim vectors the acoustic
model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FrontendConfig", "frame_signal", "mel_filterbank", "fbank_features", "mfcc", "splice"]


@dataclass(frozen=True)
class FrontendConfig:
    """Feature-extraction parameters (Kaldi defaults of the era)."""

    sample_rate: int = 16000
    frame_ms: float = 25.0
    hop_ms: float = 10.0
    preemphasis: float = 0.97
    num_mel: int = 40
    low_hz: float = 20.0
    high_hz: float = 7800.0

    @property
    def frame_len(self) -> int:
        return int(round(self.sample_rate * self.frame_ms / 1000.0))

    @property
    def hop_len(self) -> int:
        return int(round(self.sample_rate * self.hop_ms / 1000.0))

    @property
    def fft_size(self) -> int:
        n = 1
        while n < self.frame_len:
            n *= 2
        return n


def frame_signal(signal: np.ndarray, config: FrontendConfig) -> np.ndarray:
    """Pre-emphasize and slice ``signal`` into Hamming-windowed frames."""
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1:
        raise ValueError(f"expected mono signal, got shape {signal.shape}")
    emphasized = np.empty_like(signal)
    emphasized[0] = signal[0]
    emphasized[1:] = signal[1:] - config.preemphasis * signal[:-1]
    flen, hop = config.frame_len, config.hop_len
    if len(emphasized) < flen:
        emphasized = np.pad(emphasized, (0, flen - len(emphasized)))
    count = 1 + (len(emphasized) - flen) // hop
    idx = np.arange(flen)[None, :] + hop * np.arange(count)[:, None]
    return emphasized[idx] * np.hamming(flen)[None, :]


def _hz_to_mel(hz):
    return 2595.0 * np.log10(1.0 + np.asarray(hz) / 700.0)


def _mel_to_hz(mel):
    return 700.0 * (np.power(10.0, np.asarray(mel) / 2595.0) - 1.0)


def mel_filterbank(config: FrontendConfig) -> np.ndarray:
    """Triangular mel filterbank matrix of shape (num_mel, fft_bins)."""
    bins = config.fft_size // 2 + 1
    mel_points = np.linspace(
        _hz_to_mel(config.low_hz), _hz_to_mel(config.high_hz), config.num_mel + 2
    )
    hz_points = _mel_to_hz(mel_points)
    bin_points = np.floor((config.fft_size + 1) * hz_points / config.sample_rate).astype(int)
    bin_points = np.clip(bin_points, 0, bins - 1)
    fb = np.zeros((config.num_mel, bins))
    for m in range(1, config.num_mel + 1):
        left, center, right = bin_points[m - 1], bin_points[m], bin_points[m + 1]
        if center > left:
            fb[m - 1, left:center] = (np.arange(left, center) - left) / (center - left)
        if right > center:
            fb[m - 1, center:right] = (right - np.arange(center, right)) / (right - center)
        fb[m - 1, center] = 1.0
    return fb


def fbank_features(signal: np.ndarray, config: FrontendConfig = FrontendConfig()) -> np.ndarray:
    """Log-mel filterbank features, mean/variance normalized per utterance.

    Returns shape (frames, num_mel).
    """
    frames = frame_signal(signal, config)
    spectrum = np.abs(np.fft.rfft(frames, n=config.fft_size, axis=1)) ** 2
    mel = spectrum @ mel_filterbank(config).T
    logmel = np.log(np.maximum(mel, 1e-10))
    mean = logmel.mean(axis=0, keepdims=True)
    std = logmel.std(axis=0, keepdims=True)
    return (logmel - mean) / np.maximum(std, 1e-3)


def mfcc(signal: np.ndarray, config: FrontendConfig = FrontendConfig(), num_ceps: int = 13) -> np.ndarray:
    """MFCCs via DCT-II of the log-mel energies (kept for completeness)."""
    from scipy.fftpack import dct

    logmel = fbank_features(signal, config)
    return dct(logmel, type=2, axis=1, norm="ortho")[:, :num_ceps]


def splice(features: np.ndarray, context: int = 5) -> np.ndarray:
    """Stack ``context`` frames either side of each frame (edge-replicated).

    (frames, d) -> (frames, (2*context+1)*d); this produces the acoustic
    model's 11x40 = 440-dim input vectors.
    """
    if features.ndim != 2:
        raise ValueError(f"expected (frames, dims) features, got {features.shape}")
    frames = len(features)
    padded = np.pad(features, ((context, context), (0, 0)), mode="edge")
    stacked = [padded[i : i + frames] for i in range(2 * context + 1)]
    return np.concatenate(stacked, axis=1)
