"""Speech DSP frontend for the ASR task (the Kaldi-style preprocessing the
paper counts as ASR's substantial non-DNN work, Figure 4).

Pipeline: pre-emphasis -> 25ms/10ms Hamming-windowed frames -> FFT power
spectrum -> mel filterbank -> log -> (optional DCT to MFCC) -> mean/variance
normalization -> +/-5 frame splicing into the 440-dim vectors the acoustic
model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FrontendConfig",
    "frame_signal",
    "mel_filterbank",
    "fbank_features",
    "mfcc",
    "splice",
    "StreamingFrontend",
]


@dataclass(frozen=True)
class FrontendConfig:
    """Feature-extraction parameters (Kaldi defaults of the era)."""

    sample_rate: int = 16000
    frame_ms: float = 25.0
    hop_ms: float = 10.0
    preemphasis: float = 0.97
    num_mel: int = 40
    low_hz: float = 20.0
    high_hz: float = 7800.0

    @property
    def frame_len(self) -> int:
        return int(round(self.sample_rate * self.frame_ms / 1000.0))

    @property
    def hop_len(self) -> int:
        return int(round(self.sample_rate * self.hop_ms / 1000.0))

    @property
    def fft_size(self) -> int:
        n = 1
        while n < self.frame_len:
            n *= 2
        return n


def frame_signal(signal: np.ndarray, config: FrontendConfig) -> np.ndarray:
    """Pre-emphasize and slice ``signal`` into Hamming-windowed frames."""
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1:
        raise ValueError(f"expected mono signal, got shape {signal.shape}")
    emphasized = np.empty_like(signal)
    emphasized[0] = signal[0]
    emphasized[1:] = signal[1:] - config.preemphasis * signal[:-1]
    flen, hop = config.frame_len, config.hop_len
    if len(emphasized) < flen:
        emphasized = np.pad(emphasized, (0, flen - len(emphasized)))
    count = 1 + (len(emphasized) - flen) // hop
    idx = np.arange(flen)[None, :] + hop * np.arange(count)[:, None]
    return emphasized[idx] * np.hamming(flen)[None, :]


def _hz_to_mel(hz):
    return 2595.0 * np.log10(1.0 + np.asarray(hz) / 700.0)


def _mel_to_hz(mel):
    return 700.0 * (np.power(10.0, np.asarray(mel) / 2595.0) - 1.0)


def mel_filterbank(config: FrontendConfig) -> np.ndarray:
    """Triangular mel filterbank matrix of shape (num_mel, fft_bins)."""
    bins = config.fft_size // 2 + 1
    mel_points = np.linspace(
        _hz_to_mel(config.low_hz), _hz_to_mel(config.high_hz), config.num_mel + 2
    )
    hz_points = _mel_to_hz(mel_points)
    bin_points = np.floor((config.fft_size + 1) * hz_points / config.sample_rate).astype(int)
    bin_points = np.clip(bin_points, 0, bins - 1)
    fb = np.zeros((config.num_mel, bins))
    for m in range(1, config.num_mel + 1):
        left, center, right = bin_points[m - 1], bin_points[m], bin_points[m + 1]
        if center > left:
            fb[m - 1, left:center] = (np.arange(left, center) - left) / (center - left)
        if right > center:
            fb[m - 1, center:right] = (right - np.arange(center, right)) / (right - center)
        fb[m - 1, center] = 1.0
    return fb


def fbank_features(signal: np.ndarray, config: FrontendConfig = FrontendConfig()) -> np.ndarray:
    """Log-mel filterbank features, mean/variance normalized per utterance.

    Returns shape (frames, num_mel).
    """
    frames = frame_signal(signal, config)
    spectrum = np.abs(np.fft.rfft(frames, n=config.fft_size, axis=1)) ** 2
    mel = spectrum @ mel_filterbank(config).T
    logmel = np.log(np.maximum(mel, 1e-10))
    mean = logmel.mean(axis=0, keepdims=True)
    std = logmel.std(axis=0, keepdims=True)
    return (logmel - mean) / np.maximum(std, 1e-3)


def mfcc(signal: np.ndarray, config: FrontendConfig = FrontendConfig(), num_ceps: int = 13) -> np.ndarray:
    """MFCCs via DCT-II of the log-mel energies (kept for completeness)."""
    from scipy.fftpack import dct

    logmel = fbank_features(signal, config)
    return dct(logmel, type=2, axis=1, norm="ortho")[:, :num_ceps]


class StreamingFrontend:
    """Incremental counterpart of :func:`fbank_features` for chunked audio.

    Framing, pre-emphasis, and per-frame log-mel are computed exactly once
    per frame as chunks arrive (each frame's value is bit-identical to the
    batch path: both are row-independent operations).  The one genuinely
    utterance-level step — mean/variance normalization — is handled two
    ways:

    * :meth:`feed` normalizes each *new* frame with the running statistics
      available when it arrives (causal normalization, frozen thereafter).
      These feed the provisional partial decode.
    * :meth:`finalize` re-runs the batch pipeline over the retained raw
      audio, reproducing ``fbank_features(signal)`` on the concatenated
      chunks bit-for-bit — the exact features the unary path would compute,
      which is what makes a stream's final transcript equal to the unary
      transcript.  (Recomputing is deliberate: batched FFT/filterbank
      arithmetic differs from the chunked arithmetic in the last float
      bits, so renormalizing the incremental log-mel rows would be merely
      *close* to the unary features, not equal.)

    ``energies`` records each frame's mean squared amplitude (pre-emphasized,
    windowed) for the endpointer.
    """

    def __init__(self, config: FrontendConfig = FrontendConfig()):
        self.config = config
        self._fb_t = mel_filterbank(config).T
        self._window = np.hamming(config.frame_len)
        self._buf = np.zeros(0, dtype=np.float64)   # emphasized, unframed tail
        self._prev_raw: float = 0.0
        self._first = True
        self._raw: list = []                        # chunks, for exact finalize
        self._mean = np.zeros(config.num_mel)
        self._m2 = np.zeros(config.num_mel)         # running mean of squares
        self.energies: list = []
        self.num_frames = 0
        self.num_samples = 0

    def feed(self, samples: np.ndarray) -> np.ndarray:
        """Consume one chunk; return causally-normalized new frames.

        Returns shape ``(new_frames, num_mel)`` (possibly empty when the
        chunk is too short to complete a frame).
        """
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 1:
            raise ValueError(f"expected mono chunk, got shape {samples.shape}")
        if not len(samples):
            return np.zeros((0, self.config.num_mel))
        self._raw.append(samples)
        emphasized = np.empty_like(samples)
        if self._first:
            emphasized[0] = samples[0]
            self._first = False
        else:
            emphasized[0] = samples[0] - self.config.preemphasis * self._prev_raw
        emphasized[1:] = samples[1:] - self.config.preemphasis * samples[:-1]
        self._prev_raw = float(samples[-1])
        self.num_samples += len(samples)
        self._buf = np.concatenate([self._buf, emphasized])
        flen, hop = self.config.frame_len, self.config.hop_len
        if len(self._buf) < flen:
            return np.zeros((0, self.config.num_mel))
        count = 1 + (len(self._buf) - flen) // hop
        idx = np.arange(flen)[None, :] + hop * np.arange(count)[:, None]
        frames = self._buf[idx] * self._window[None, :]
        self._buf = self._buf[count * hop:]
        return self._absorb(frames)

    def _absorb(self, frames: np.ndarray) -> np.ndarray:
        spectrum = np.abs(np.fft.rfft(frames, n=self.config.fft_size, axis=1)) ** 2
        logmel = np.log(np.maximum(spectrum @ self._fb_t, 1e-10))
        self.energies.extend((frames ** 2).mean(axis=1).tolist())
        self.num_frames += len(logmel)
        # running (population) stats over every frame seen so far; each new
        # frame is normalized once, with the stats current at its arrival
        self._mean += (logmel.sum(axis=0) - len(logmel) * self._mean) / self.num_frames
        total_sq = self._m2 * (self.num_frames - len(logmel)) + (logmel ** 2).sum(axis=0)
        self._m2 = total_sq / self.num_frames
        std = np.sqrt(np.maximum(self._m2 - self._mean ** 2, 0.0))
        return (logmel - self._mean[None, :]) / np.maximum(std, 1e-3)[None, :]

    def finalize(self) -> np.ndarray:
        """Exact utterance features, bit-identical to the unary frontend."""
        if not self.num_samples:
            return np.zeros((0, self.config.num_mel))
        return fbank_features(np.concatenate(self._raw), self.config)


def splice(features: np.ndarray, context: int = 5) -> np.ndarray:
    """Stack ``context`` frames either side of each frame (edge-replicated).

    (frames, d) -> (frames, (2*context+1)*d); this produces the acoustic
    model's 11x40 = 440-dim input vectors.
    """
    if features.ndim != 2:
        raise ValueError(f"expected (frames, dims) features, got {features.shape}")
    frames = len(features)
    padded = np.pad(features, ((context, context), (0, 0)), mode="edge")
    stacked = [padded[i : i + frames] for i in range(2 * context + 1)]
    return np.concatenate(stacked, axis=1)
