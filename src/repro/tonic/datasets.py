"""Synthetic workload generators for every Tonic application.

The paper drives DjiNN with real images, recordings and sentences; we have
no datasets, so each generator produces seeded synthetic inputs with the
same shapes and wire sizes as the paper's Table 3.  The digit renderer and
the text grammar produce *learnable* data (labels derive from the content),
so DIG and the NLP taggers can be genuinely trained and evaluated;
IMC/FACE inputs are procedural patterns whose labels parameterize the
generator (enough to exercise the full pipeline and, for FACE, to separate
identities).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.duplication import apply_duplicates
from .speechsynth import LEXICON as SPEECH_LEXICON
from .speechsynth import synthesize_words
from .textgen import TaggedSentence, generate_corpus

__all__ = [
    "render_digit",
    "digit_dataset",
    "imagenet_like_images",
    "face_images",
    "speech_queries",
    "sentence_queries",
    "with_duplicates",
]


# ---------------------------------------------------------------------------
# Duplication: production query streams repeat (same photo re-shared, same
# query re-issued through a different crop/encode), which batching, caches
# and admission control all see very differently from i.i.d. inputs.
# ---------------------------------------------------------------------------

def with_duplicates(
    images: np.ndarray,
    labels: np.ndarray = None,
    dup_frac: float = 0.0,
    seed: int = 0,
    jitter: float = 0.01,
):
    """Replace a seeded ``dup_frac`` fraction of items with near-duplicates.

    Each selected item (never the first) becomes a copy of a uniformly
    chosen *earlier* item plus ``jitter``-scaled gaussian noise — the
    "same photo, different JPEG" shape of real duplicate traffic.  Float
    images are re-clipped to [0, 1].  With ``labels`` given, the source
    item's label rides along and ``(images, labels)`` is returned;
    otherwise just the images.  ``dup_frac=0`` returns the inputs
    untouched.

    The plan and jitter come from :mod:`repro.core.duplication` — the
    same seeded semantics the open-loop load generator draws, so a given
    ``(seed, count, dup_frac)`` names one duplicate stream across both
    surfaces.
    """
    clip = ((0.0, 1.0)
            if np.issubdtype(np.asarray(images).dtype, np.floating) else None)
    return apply_duplicates(images, labels, dup_frac=dup_frac, seed=seed,
                            jitter=jitter, clip=clip)

# ---------------------------------------------------------------------------
# DIG: seven-segment-style rendered digits (learnable: LeNet-5 trains to >98%)
# ---------------------------------------------------------------------------

# segment name -> (row0, row1, col0, col1) on a 28x28 canvas
_SEGMENTS = {
    "A": (4, 6, 9, 19),     # top bar
    "B": (5, 14, 17, 19),   # top-right
    "C": (14, 23, 17, 19),  # bottom-right
    "D": (22, 24, 9, 19),   # bottom bar
    "E": (14, 23, 9, 11),   # bottom-left
    "F": (5, 14, 9, 11),    # top-left
    "G": (13, 15, 9, 19),   # middle bar
}

_DIGIT_SEGMENTS = {
    0: "ABCDEF",
    1: "BC",
    2: "ABGED",
    3: "ABGCD",
    4: "FGBC",
    5: "AFGCD",
    6: "AFGECD",
    7: "ABC",
    8: "ABCDEFG",
    9: "ABCFGD",
}


def render_digit(digit: int, rng: np.random.Generator, noise: float = 0.15) -> np.ndarray:
    """Render one hand-written-style digit as a 28x28 float image in [0, 1]."""
    if digit not in _DIGIT_SEGMENTS:
        raise ValueError(f"digit must be 0-9, got {digit}")
    canvas = np.zeros((28, 28), dtype=np.float32)
    for seg in _DIGIT_SEGMENTS[digit]:
        r0, r1, c0, c1 = _SEGMENTS[seg]
        canvas[r0:r1, c0:c1] = 1.0
    # random translation (the "handwriting")
    dr, dc = rng.integers(-2, 3, size=2)
    canvas = np.roll(canvas, (dr, dc), axis=(0, 1))
    # light blur: 3x3 box filter
    padded = np.pad(canvas, 1)
    blurred = sum(
        padded[1 + i : 29 + i, 1 + j : 29 + j] for i in (-1, 0, 1) for j in (-1, 0, 1)
    ) / 9.0
    blurred = 0.5 * canvas + 0.5 * blurred
    blurred += rng.normal(0.0, noise, size=blurred.shape).astype(np.float32)
    return np.clip(blurred, 0.0, 1.0)


def digit_dataset(count: int, seed: int = 0, noise: float = 0.15,
                  dup_frac: float = 0.0,
                  dup_jitter: float = 0.01) -> Tuple[np.ndarray, np.ndarray]:
    """(images, labels): ``count`` 1x28x28 digits with balanced labels.

    ``dup_frac`` replaces that fraction of the stream with seeded
    near-duplicates of earlier queries (see :func:`with_duplicates`).
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 10, size=count)
    images = np.stack([render_digit(int(d), rng, noise) for d in labels])
    return with_duplicates(images[:, None, :, :].astype(np.float32),
                           labels.astype(np.int64),
                           dup_frac=dup_frac, seed=seed + 1,
                           jitter=dup_jitter)


# ---------------------------------------------------------------------------
# IMC: procedural 3x227x227 "photos" (class determines texture statistics)
# ---------------------------------------------------------------------------

def imagenet_like_images(
    count: int, num_classes: int = 1000, seed: int = 0, size: int = 227,
    dup_frac: float = 0.0, dup_jitter: float = 0.01
) -> Tuple[np.ndarray, np.ndarray]:
    """(images, labels): class-parameterized gratings + blobs + noise.

    Each image is 604KB on the wire as float32 (3 * 227 * 227 * 4 bytes),
    matching Table 3's IMC input size.  ``dup_frac`` replaces that
    fraction of the stream with seeded near-duplicates of earlier queries.
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=count)
    yy, xx = np.mgrid[0:size, 0:size] / size
    images = np.empty((count, 3, size, size), dtype=np.float32)
    for i, label in enumerate(labels):
        crng = np.random.default_rng(int(label))
        freqs = crng.uniform(2, 14, size=3)
        phases = crng.uniform(0, 2 * np.pi, size=3)
        angle = crng.uniform(0, np.pi)
        coord = xx * np.cos(angle) + yy * np.sin(angle)
        for ch in range(3):
            images[i, ch] = 0.5 + 0.4 * np.sin(2 * np.pi * freqs[ch] * coord + phases[ch])
        images[i] += rng.normal(0, 0.05, size=(3, size, size)).astype(np.float32)
    return with_duplicates(np.clip(images, 0.0, 1.0),
                           labels.astype(np.int64),
                           dup_frac=dup_frac, seed=seed + 1,
                           jitter=dup_jitter)


# ---------------------------------------------------------------------------
# FACE: procedural 3x152x152 aligned "faces" (identity sets the geometry)
# ---------------------------------------------------------------------------

def face_images(
    count: int, num_identities: int = 83, seed: int = 0, size: int = 152,
    dup_frac: float = 0.0, dup_jitter: float = 0.01
) -> Tuple[np.ndarray, np.ndarray]:
    """(images, labels): ellipse head + identity-specific features + noise.

    Each image is ~271KB on the wire as float32 (3 * 152 * 152 * 4 bytes),
    matching Table 3's FACE input size.  ``dup_frac`` replaces that
    fraction of the stream with seeded near-duplicates of earlier queries.
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_identities, size=count)
    yy, xx = np.mgrid[0:size, 0:size]
    cy = cx = size / 2.0
    images = np.empty((count, 3, size, size), dtype=np.float32)
    for i, identity in enumerate(labels):
        irng = np.random.default_rng(1000 + int(identity))
        head_w = irng.uniform(0.30, 0.42) * size
        head_h = irng.uniform(0.38, 0.48) * size
        eye_dx = irng.uniform(0.10, 0.16) * size
        eye_y = cy - irng.uniform(0.05, 0.12) * size
        mouth_w = irng.uniform(0.08, 0.18) * size
        skin = irng.uniform(0.5, 0.9, size=3)
        img = np.zeros((3, size, size), dtype=np.float32)
        head = ((xx - cx) / head_w) ** 2 + ((yy - cy) / head_h) ** 2 <= 1.0
        for ch in range(3):
            img[ch][head] = skin[ch]
        for ex in (cx - eye_dx, cx + eye_dx):
            eye = (xx - ex) ** 2 + (yy - eye_y) ** 2 <= (0.03 * size) ** 2
            img[:, eye] = 0.05
        mouth = (np.abs(xx - cx) <= mouth_w) & (np.abs(yy - (cy + 0.18 * size)) <= 0.015 * size)
        img[:, mouth] = 0.2
        img += rng.normal(0, 0.04, size=img.shape).astype(np.float32)
        images[i] = np.clip(img, 0.0, 1.0)
    return with_duplicates(images, labels.astype(np.int64),
                           dup_frac=dup_frac, seed=seed + 1,
                           jitter=dup_jitter)


# ---------------------------------------------------------------------------
# ASR: synthesized utterances
# ---------------------------------------------------------------------------

def speech_queries(
    count: int, words_per_query: int = 3, seed: int = 0
) -> List[Tuple[np.ndarray, List[str]]]:
    """``count`` (audio, transcript) pairs from the speech lexicon."""
    rng = np.random.default_rng(seed)
    vocabulary = sorted(SPEECH_LEXICON)
    queries = []
    for i in range(count):
        words = [vocabulary[int(rng.integers(len(vocabulary)))] for _ in range(words_per_query)]
        audio, _ = synthesize_words(words, seed=seed * 10007 + i)
        queries.append((audio, words))
    return queries


# ---------------------------------------------------------------------------
# NLP: tagged sentences (shared across POS / CHK / NER)
# ---------------------------------------------------------------------------

def sentence_queries(count: int, seed: int = 0) -> List[TaggedSentence]:
    """``count`` gold-tagged sentences (Table 3's 28-word queries batch
    several of these per request; see :mod:`repro.gpusim.appmodel`)."""
    return generate_corpus(count, seed=seed)
