"""Evaluation metrics for the Tonic tasks.

Word error rate for ASR (the metric Kaldi's benchmarks quote), tagging
accuracy, and span-level F1 over IOB2 annotations (the CoNLL metric for
chunking and NER — per-token accuracy flatters taggers that break spans).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

import numpy as np

__all__ = ["edit_distance", "word_error_rate", "tagging_accuracy", "iob_spans", "span_f1"]


def edit_distance(a: Sequence, b: Sequence) -> int:
    """Levenshtein distance between two sequences."""
    dist = np.arange(len(b) + 1)
    for i, item_a in enumerate(a, 1):
        prev_diag = dist[0]
        dist[0] = i
        for j, item_b in enumerate(b, 1):
            cur = dist[j]
            dist[j] = min(dist[j] + 1, dist[j - 1] + 1, prev_diag + (item_a != item_b))
            prev_diag = cur
    return int(dist[-1])


def word_error_rate(hypotheses: Sequence[Sequence[str]],
                    references: Sequence[Sequence[str]]) -> float:
    """Corpus WER: total edit distance over total reference words."""
    if len(hypotheses) != len(references):
        raise ValueError("hypotheses and references disagree on length")
    errors = sum(edit_distance(h, r) for h, r in zip(hypotheses, references))
    words = sum(len(r) for r in references)
    if words == 0:
        raise ValueError("empty reference corpus")
    return errors / words


def tagging_accuracy(predicted: Sequence[Sequence[str]],
                     gold: Sequence[Sequence[str]]) -> float:
    """Per-token accuracy over a tagged corpus."""
    correct = total = 0
    for pred, ref in zip(predicted, gold):
        if len(pred) != len(ref):
            raise ValueError("prediction/gold length mismatch within a sentence")
        correct += sum(p == g for p, g in zip(pred, ref))
        total += len(ref)
    if total == 0:
        raise ValueError("empty corpus")
    return correct / total


def iob_spans(tags: Sequence[str]) -> Set[Tuple[int, int, str]]:
    """Extract (start, end, type) spans from an IOB2 tag sequence.

    ``end`` is exclusive.  An I- tag without a compatible open span starts a
    new one (the standard lenient reading).
    """
    spans: Set[Tuple[int, int, str]] = set()
    start, kind = None, None
    for i, tag in enumerate(tags):
        if tag.startswith("B-"):
            if start is not None:
                spans.add((start, i, kind))
            start, kind = i, tag[2:]
        elif tag.startswith("I-"):
            if start is None or kind != tag[2:]:
                if start is not None:
                    spans.add((start, i, kind))
                start, kind = i, tag[2:]
        else:  # "O"
            if start is not None:
                spans.add((start, i, kind))
            start, kind = None, None
    if start is not None:
        spans.add((start, len(tags), kind))
    return spans


@dataclass(frozen=True)
class _F1:
    precision: float
    recall: float
    f1: float


def span_f1(predicted: Sequence[Sequence[str]], gold: Sequence[Sequence[str]]) -> _F1:
    """CoNLL-style span precision/recall/F1 over IOB2 corpora."""
    tp = pred_count = gold_count = 0
    for pred, ref in zip(predicted, gold):
        pred_spans = iob_spans(pred)
        gold_spans = iob_spans(ref)
        tp += len(pred_spans & gold_spans)
        pred_count += len(pred_spans)
        gold_count += len(gold_spans)
    precision = tp / pred_count if pred_count else 0.0
    recall = tp / gold_count if gold_count else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return _F1(precision=precision, recall=recall, f1=f1)
