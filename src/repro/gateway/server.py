"""The gateway front-end: one address that speaks for a DjiNN fleet.

Speaks the existing DjiNN wire protocol, so :class:`repro.core.DjinnClient`
and :class:`repro.core.RemoteBackend` work against it unchanged:

* ``INFER_REQUEST`` — routed to a healthy backend under the configured
  policy; transport failures burn the retry budget (exponential backoff +
  jitter, failing over to the next candidate) before an ERROR frame is
  surfaced.  Model-level errors pass through immediately — retrying a
  request the model rejected wastes the fleet's time.
* ``APP_REQUEST`` — same routing, retry, admission, and hedging machinery
  as INFER, but the frame is relayed verbatim (raw payload and all, with
  the *remaining* deadline budget re-stamped) so the backend runs the
  whole Tonic preprocess → DNN → postprocess pipeline server-side.  Apps
  are named after their models, so routing needs no extra table.
* ``LIST_REQUEST`` — union of model names across healthy backends.
* ``STATS_REQUEST`` — per-model stats merged across the fleet (counts and
  qps summed, latency moments weighted by request count), with the
  gateway's own end-to-end view under ``gateway:<model>`` keys.
* ``STREAM_OPEN`` / ``STREAM_CHUNK`` / ``STREAM_CLOSE`` — proxied to one
  backend pinned for the stream's lifetime (rendezvous affinity over the
  healthy fleet): session state lives server-side, so chunks cannot fail
  over mid-stream.  Each stream holds a dedicated upstream connection;
  closing the client connection closes the upstreams, which lets the
  backends reap their sessions as disconnects.
* ``SHUTDOWN`` — stops the gateway (backends are owned by their launcher).
"""

from __future__ import annotations

import json
import logging
import random
import socket
import threading
import time
from contextlib import nullcontext
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import faultsite
from ..core.client import (
    DjinnConnectionError,
    DjinnDeadlineError,
    DjinnOverloadedError,
    DjinnServiceError,
)
from ..core.protocol import Message, MessageType
from ..core.server import TcpServiceBase
from ..core.stats import ServiceStats
from ..obs.metrics import MetricsRegistry, merge_dumps
from ..obs.slo import BurnRateMonitor
from ..obs.trace import Tracer, get_tracer, log_event
from ..sched import AdmissionController, LatencyModel, QosConfig, Rejection
from .cache import ResponseCache, response_key
from .health import HealthChecker
from .pool import BackendHandle, BackendPool
from .retry import RetryPolicy
from .router import Router

__all__ = ["GatewayServer", "merge_stats"]

logger = logging.getLogger("repro.gateway")


def _overloaded_message(request: Message, error: str, reason: str,
                        retry_after_ms: float) -> Message:
    """Backpressure frame: typed OVERLOADED with a machine-readable body."""
    return Message(
        MessageType.OVERLOADED,
        text=json.dumps({"error": error, "reason": reason,
                         "retry_after_ms": retry_after_ms}),
        trace_id=request.trace_id, span_id=request.span_id)


class _HedgeArm:
    """Cancellation handle for one arm of a hedged request.

    Tracks the arm's in-flight client so the winning arm can interrupt a
    roundtrip the loser is still blocked in; a cancel that lands before the
    client is set fires as soon as it is.
    """

    __slots__ = ("_lock", "_client", "backend_key", "_cancelled")

    def __init__(self):
        self._lock = threading.Lock()
        self._client = None
        self.backend_key = ""
        self._cancelled = False

    def set(self, client, backend_key: str) -> None:
        with self._lock:
            self._client = client
            self.backend_key = backend_key
            cancelled = self._cancelled
        if cancelled and client is not None:
            client.interrupt()

    def clear(self) -> None:
        with self._lock:
            self._client = None

    def cancel(self) -> None:
        with self._lock:
            self._cancelled = True
            client = self._client
        if client is not None:
            client.interrupt()


def merge_stats(snapshots: Sequence[Dict[str, Dict[str, float]]]) -> Dict[str, Dict[str, float]]:
    """Merge per-backend ``ServiceStats.snapshot()`` dicts into a fleet view.

    ``requests``/``inputs``/``qps``/``window`` add across backends; the
    latency moments (mean and percentiles) are combined as
    request-count-weighted means — exact for ``mean_ms``, the standard
    frontend approximation for the percentiles (true fleet percentiles
    would need the raw windows on the wire); ``max_ms`` takes the fleet
    maximum.  ``backends`` counts how many replicas reported the model.
    """
    sums: Dict[str, Dict[str, float]] = {}
    for snap in snapshots:
        for model, stats in snap.items():
            acc = sums.setdefault(model, {
                "requests": 0.0, "inputs": 0.0, "qps": 0.0, "backends": 0.0,
                "_wsum": {}, "_max": None, "_window": None,
            })
            weight = float(stats.get("requests", 0.0))
            acc["requests"] += weight
            acc["inputs"] += float(stats.get("inputs", 0.0))
            acc["qps"] += float(stats.get("qps", 0.0))
            acc["backends"] += 1.0
            if "max_ms" in stats:
                current = acc["_max"]
                acc["_max"] = (float(stats["max_ms"]) if current is None
                               else max(current, float(stats["max_ms"])))
            if "window" in stats:
                acc["_window"] = (acc["_window"] or 0.0) + float(stats["window"])
            for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
                if key in stats:
                    acc["_wsum"][key] = acc["_wsum"].get(key, 0.0) + weight * stats[key]
    merged: Dict[str, Dict[str, float]] = {}
    for model, acc in sums.items():
        weighted = acc.pop("_wsum")
        maximum = acc.pop("_max")
        window = acc.pop("_window")
        out = dict(acc)
        for key, total in weighted.items():
            out[key] = total / acc["requests"] if acc["requests"] else 0.0
        if maximum is not None:
            out["max_ms"] = maximum
        if window is not None:
            out["window"] = window
        merged[model] = out
    return merged


class _ProxyStream:
    """One client stream pinned to one backend connection for its lifetime."""

    __slots__ = ("backend", "client", "model", "lock")

    def __init__(self, backend: BackendHandle, client, model: str):
        self.backend = backend
        self.client = client
        self.model = model
        # stream frames are strictly ordered per stream; the lock guards
        # against a misbehaving client pipelining frames for one stream id
        # across the connection's reader thread and the disconnect path
        self.lock = threading.Lock()


class GatewayServer(TcpServiceBase):
    """Sharded, fault-tolerant TCP front-end for N DjiNN backends.

    Parameters
    ----------
    backends:
        ``(host, port)`` addresses of the fleet (e.g.
        :attr:`ClusterLauncher.addresses`).
    policy:
        Routing policy name — see :data:`repro.gateway.router.POLICIES`.
    retry:
        Transport-failure retry budget; defaults to 3 attempts with
        20 ms base backoff.
    health_interval_s:
        Period of the background LIST_REQUEST probes.  ``start()`` always
        runs one synchronous probe sweep so routing begins informed.
    clock:
        Monotonic time source for latency accounting (injected for
        testability; the stack standardizes on ``time.monotonic``).
    tracer:
        Span collector; defaults to the process tracer (disabled until
        enabled).  Traced requests get ``gateway.infer`` → ``gateway.queue``
        / ``gateway.backend`` spans, and the trace context is forwarded to
        the chosen backend on the wire.
    qos:
        Optional :class:`repro.sched.QosConfig` arming the QoS surface:
        admission control (requests predicted to miss their deadline are
        shed with a typed OVERLOADED + ``retry_after_ms`` instead of
        queueing to die), per-tenant token buckets, and hedged requests
        (``hedge_ms``: a second backend is tried when the primary is slow;
        first response wins, the loser's roundtrip is interrupted).  With
        ``qos=None`` the gateway still *propagates* deadlines and passes
        typed DEADLINE_EXCEEDED / OVERLOADED responses through un-retried —
        retrying a spent budget wastes the fleet's time.
    cache_mb:
        Bytes budget (in MiB) of the content-addressed response cache;
        ``0`` (the default) disables it entirely — no cache metrics are
        registered and every frame takes exactly the uncached path.  When
        enabled, unary INFER/APP requests are probed after admission (the
        QoS gate still sheds and expires exactly as before) and answered
        from the cache when the (model, payload) content key hits; stream
        frames always bypass.  See :mod:`repro.gateway.cache`.

    Health and retry events (mark-down, mark-up, per-request retries,
    exhausted budgets) increment labeled counters in :attr:`metrics` and
    emit structured ``event=…`` log lines on the ``repro.gateway`` logger.
    """

    service_name = "gateway"

    def __init__(
        self,
        backends: Sequence[Tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        policy: str = "round_robin",
        retry: Optional[RetryPolicy] = None,
        health_interval_s: float = 0.5,
        backend_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[Tracer] = None,
        qos: Optional[QosConfig] = None,
        cache_mb: float = 0.0,
    ):
        super().__init__(host=host, port=port)
        self._clock = clock
        self.tracer = tracer if tracer is not None else get_tracer()
        self.metrics = MetricsRegistry()
        self._transitions = self.metrics.counter(
            "gateway_backend_transitions_total",
            "Backend health transitions observed by the gateway.",
            ("backend", "event"))
        self._retries = self.metrics.counter(
            "gateway_retries_total",
            "Transport-failure retries spent, per model.", ("model",))
        self._exhausted = self.metrics.counter(
            "gateway_retry_exhausted_total",
            "Requests failed after the whole retry budget, per model.",
            ("model",))
        self._shed = self.metrics.counter(
            "gateway_admission_rejected_total",
            "Requests shed at admission, per model and reason.",
            ("model", "reason"))
        self._gw_expired = self.metrics.counter(
            "gateway_expired_total",
            "Requests whose deadline was already spent at the gateway.",
            ("model",))
        self._hedges = self.metrics.counter(
            "gateway_hedges_total",
            "Hedge arms actually launched, per model.", ("model",))
        self._hedge_wins = self.metrics.counter(
            "gateway_hedge_wins_total",
            "Hedged requests won, per model and arm.", ("model", "winner"))
        self._slo = self.metrics.counter(
            "gateway_slo_requests_total",
            "Deadline-carrying requests, per model and outcome "
            "(met|missed|expired|shed|failed).", ("model", "outcome"))
        self._stage_seconds = self.metrics.counter(
            "gateway_stage_seconds_total",
            "Seconds spent per gateway stage, per model "
            "(successful forwards).", ("model", "stage"))
        #: content-addressed response cache (None = disabled; the metric
        #: families below are only registered when it exists, so a cache-off
        #: gateway's metrics dump is byte-identical to pre-cache builds)
        self.cache = (ResponseCache(int(cache_mb * 1024 * 1024))
                      if cache_mb > 0 else None)
        if self.cache is not None:
            self._cache_hits = self.metrics.counter(
                "gateway_cache_hits_total",
                "Response-cache hits, per model.", ("model",))
            self._cache_misses = self.metrics.counter(
                "gateway_cache_misses_total",
                "Response-cache misses (collisions included), per model.",
                ("model",))
            self._cache_evictions = self.metrics.counter(
                "gateway_cache_evictions_total",
                "Response-cache entries evicted past the bytes budget.")
            self._cache_bytes = self.metrics.gauge(
                "gateway_cache_bytes",
                "Response payload bytes currently retained in the cache.")
        #: multi-window error-budget burn over end-to-end attainment (the
        #: client-visible SLO, gating on everything the fleet did)
        self.slo_monitor = BurnRateMonitor(clock=clock, logger=logger)
        self.qos = qos
        #: fleet-level latency curve (refined by every successful forward)
        #: driving admission predictions and derived hedge delays
        self.latency = LatencyModel()
        self._admission = (
            AdmissionController(qos, self.latency, clock)
            if qos is not None and qos.admission else None)
        self.pool = BackendPool(backends, timeout_s=backend_timeout_s,
                                observer=self._on_transition,
                                tracer=self.tracer)
        self.router = Router(self.pool, policy=policy)
        self.retry = retry or RetryPolicy()
        self.health = HealthChecker(self.pool, interval_s=health_interval_s,
                                    probe_timeout_s=backend_timeout_s)
        self.stats = ServiceStats(clock=clock, registry=self.metrics,
                                  prefix="gateway")
        self._rng = random.Random(0x6A7E)
        self._rng_lock = threading.Lock()
        self._gw_streams = self.metrics.counter(
            "gateway_streams_total",
            "Streams proxied, per model and outcome "
            "(completed|aborted|rejected).", ("model", "outcome"))
        self._gw_stream_frames = self.metrics.counter(
            "gateway_stream_frames_total",
            "Stream chunk frames proxied, per model.", ("model",))
        #: (id(conn), stream_id) -> live proxied stream
        self._streams: Dict[Tuple[int, int], _ProxyStream] = {}
        self._streams_lock = threading.Lock()

    # -------------------------------------------------------------- events
    def _on_transition(self, event: str, backend: BackendHandle) -> None:
        self._transitions.labels(backend=backend.key, event=event).inc()
        log_event(
            logger, f"backend.{event}",
            level=logging.WARNING if event == "mark_down" else logging.INFO,
            backend=backend.key, failures=backend.failures,
        )

    # ------------------------------------------------------------ lifecycle
    def _on_start(self) -> None:
        self.health.probe_all()
        self.health.start()

    def _on_stop(self) -> None:
        self.health.stop()
        self.pool.close()

    # ------------------------------------------------------------- serving
    def _handle(self, conn: socket.socket, request: Message) -> bool:
        if request.type in (MessageType.INFER_REQUEST,
                            MessageType.APP_REQUEST):
            self._safe_send(conn, self._forward_infer(request))
            return True
        if request.type == MessageType.STREAM_OPEN:
            self._safe_send(conn, self._stream_open(conn, request))
            return True
        if request.type in (MessageType.STREAM_CHUNK, MessageType.STREAM_CLOSE):
            self._safe_send(conn, self._stream_forward(conn, request))
            return True
        if request.type == MessageType.LIST_REQUEST:
            if not self.pool.model_names():
                self.health.probe_all()  # nothing cached yet (or fleet was down)
            self._safe_send(
                conn,
                Message(MessageType.LIST_RESPONSE,
                        text="\n".join(self.pool.model_names())),
            )
            return True
        if request.type == MessageType.STATS_REQUEST:
            self._safe_send(
                conn,
                Message(MessageType.STATS_RESPONSE,
                        text=json.dumps(self._aggregate_stats())),
            )
            return True
        if request.type == MessageType.METRICS_REQUEST:
            self._safe_send(
                conn,
                Message(MessageType.METRICS_RESPONSE,
                        text=json.dumps(self._aggregate_metrics())),
            )
            return True
        if request.type == MessageType.SHUTDOWN:
            self._safe_send(conn, Message(MessageType.SHUTDOWN))
            threading.Thread(target=self.stop, daemon=True).start()
            return False
        self._safe_send(
            conn, Message(MessageType.ERROR, text=f"unexpected message type {request.type}")
        )
        return True

    # ------------------------------------------------------------ streaming
    def _stream_error(self, request: Message, text: str) -> Message:
        return Message(MessageType.ERROR, text=text,
                       stream_id=request.stream_id,
                       trace_id=request.trace_id, span_id=request.span_id)

    def _stream_open(self, conn: socket.socket, request: Message) -> Message:
        """Pin a new stream to one backend and relay the open handshake."""
        model = request.name
        key = (id(conn), request.stream_id)
        with self._streams_lock:
            if key in self._streams:
                return self._stream_error(
                    request, f"stream {request.stream_id} is already open")
        candidates = self.router.route_stream(model, f"{key[0]}:{key[1]}")
        if not candidates:
            self.health.probe_all()
            candidates = self.router.route_stream(model, f"{key[0]}:{key[1]}")
        for backend in candidates:
            try:
                client = backend.checkout()
            except DjinnConnectionError:
                backend.mark_down()
                continue
            try:
                reply = client.exchange(request)
            except DjinnConnectionError:
                backend.checkin(client, ok=False)
                backend.mark_down()
                continue
            if reply.type == MessageType.STREAM_OPEN:
                with self._streams_lock:
                    self._streams[key] = _ProxyStream(backend, client, model)
                log_event(logger, "stream.open", model=model,
                          stream=request.stream_id, backend=backend.key)
                return reply
            # typed rejection (SESSION_LIMIT or ERROR): the connection is
            # fine, the backend said no — relay it and pool the connection
            backend.checkin(client, ok=True)
            self._gw_streams.labels(model=model, outcome="rejected").inc()
            return reply
        self._gw_streams.labels(model=model, outcome="rejected").inc()
        return self._stream_error(
            request, f"no healthy backend for stream of {model!r}")

    def _stream_forward(self, conn: socket.socket, request: Message) -> Message:
        """Relay one chunk/close frame over the stream's pinned connection."""
        key = (id(conn), request.stream_id)
        with self._streams_lock:
            stream = self._streams.get(key)
        if stream is None:
            return self._stream_error(
                request, f"unknown or closed stream {request.stream_id}")
        if request.type == MessageType.STREAM_CHUNK:
            self._gw_stream_frames.labels(model=stream.model).inc()
        with stream.lock:
            try:
                reply = stream.client.exchange(request)
            except DjinnConnectionError as exc:
                # the pinned backend died mid-stream; session state is gone
                # with it, so the stream cannot fail over — surface a typed
                # stream error and let the client reopen (rendezvous will
                # pick the next backend once this one is marked down)
                self._teardown_stream(key, ok=False, outcome="aborted")
                stream.backend.mark_down()
                return self._stream_error(
                    request, f"stream backend lost: {exc}")
        if reply.type == MessageType.ERROR:
            self._teardown_stream(key, ok=True, outcome="aborted")
        elif reply.type == MessageType.STREAM_RESULT and reply.stream_final:
            self._teardown_stream(key, ok=True, outcome="completed")
        return reply

    def _teardown_stream(self, key: Tuple[int, int], ok: bool,
                         outcome: str) -> None:
        with self._streams_lock:
            stream = self._streams.pop(key, None)
        if stream is None:
            return
        stream.backend.checkin(stream.client, ok=ok)
        self._gw_streams.labels(model=stream.model, outcome=outcome).inc()

    def _on_disconnect(self, conn: socket.socket) -> None:
        """Close upstreams of a departed client so backends reap sessions."""
        conn_key = id(conn)
        with self._streams_lock:
            dropped = [key for key in self._streams if key[0] == conn_key]
        for key in dropped:
            # ok=False discards the upstream connection instead of pooling
            # it: the backend sees a disconnect and reaps the session
            self._teardown_stream(key, ok=False, outcome="aborted")
            log_event(logger, "stream.disconnect", level=logging.WARNING,
                      stream=key[1])

    # ---------------------------------------------------------- forwarding
    def _forward_infer(self, request: Message) -> Message:
        if request.type == MessageType.INFER_REQUEST and request.tensor is None:
            return Message(MessageType.ERROR, text="inference request carries no tensor",
                           trace_id=request.trace_id, span_id=request.span_id)
        if request.type == MessageType.APP_REQUEST and not request.payload_kind:
            # a text app payload legitimately has no tensor, but every APP
            # frame must declare a payload kind — an untyped one is malformed
            return Message(MessageType.ERROR, text="app request carries no payload",
                           trace_id=request.trace_id, span_id=request.span_id)
        clock = self._clock
        tracer = self.tracer
        traced = bool(request.trace_id) and tracer.enabled
        span_cm = (
            tracer.span("gateway.infer", category="gateway",
                        trace_id=request.trace_id, parent_id=request.span_id,
                        model=request.name)
            if traced else nullcontext(None)
        )
        with span_cm as span:
            start = clock()
            if traced and request.has_qos:
                span.set(deadline_ms=request.deadline_ms,
                         priority=request.priority, tenant=request.tenant)
            # re-anchor the wire's remaining budget on this host's clock
            deadline_s = (start + request.deadline_ms / 1e3
                          if request.deadline_ms else None)
            response = None
            if self.qos is not None:
                response = self._admission_gate(request, deadline_s,
                                                span, traced)
            cache_key = None
            if response is None and self.cache is not None:
                # probe after admission so shed/expire behavior is
                # unchanged; a hit never reaches the fleet
                cache_key, response = self._cache_probe(request, span,
                                                        traced, start)
            if response is None:
                if (self._hedge_delay_s(request.name) > 0
                        and len(self.pool.healthy()) > 1):
                    response = self._forward_hedged(request, span, traced,
                                                    start, deadline_s)
                else:
                    response = self._forward_attempts(request, span, traced,
                                                      start, deadline_s)
                    response = self._record_outcome(request, start, response)
                self._cache_insert(cache_key, request, response)
            if deadline_s is not None:
                self._record_slo(request.name, response, deadline_s)
            return response

    _SLO_OUTCOMES = {
        MessageType.INFER_RESPONSE: "met",       # demoted to missed when late
        MessageType.APP_RESPONSE: "met",
        MessageType.DEADLINE_EXCEEDED: "expired",
        MessageType.OVERLOADED: "shed",
    }

    def _record_slo(self, model: str, response: Message,
                    deadline_s: float) -> None:
        """Account one deadlined request's end-to-end outcome; re-check burn."""
        outcome = self._SLO_OUTCOMES.get(response.type, "failed")
        if outcome == "met" and self._clock() > deadline_s:
            outcome = "missed"
        self._slo.labels(model=model or "?", outcome=outcome).inc()
        self.slo_monitor.record(model or "?", attained=outcome == "met")
        self.slo_monitor.check()

    # ----------------------------------------------------------- QoS gate
    def _admission_gate(self, request: Message, deadline_s: Optional[float],
                        span=None, traced: bool = False) -> Optional[Message]:
        """Shed-or-admit decision; a Message means the request is refused.

        Refusals are visible in the trace: a spent budget closes with a
        ``sched.expire`` span, a shed request with a ``sched.admit`` span
        carrying the rejection reason.
        """
        model = request.name
        gate_start = self._clock()
        if deadline_s is not None and gate_start >= deadline_s:
            # dead on arrival: the budget was spent in transit, so answer
            # with the same typed rejection the backend scheduler would
            self._gw_expired.labels(model=model).inc()
            if traced:
                self.tracer.add_span(
                    "sched.expire", gate_start, self._clock(),
                    span.trace_id, span.span_id, category="sched",
                    model=model,
                    late_ms=round((gate_start - deadline_s) * 1e3, 3))
            return Message(
                MessageType.DEADLINE_EXCEEDED,
                text=(f"deadline exceeded for {model!r}: budget already "
                      f"spent at the gateway"),
                trace_id=request.trace_id, span_id=request.span_id)
        rejection: Optional[Rejection] = None
        if faultsite.active is not None and faultsite.active.on_admit(model):
            rejection = Rejection(
                reason="injected",
                message=f"injected admission rejection for {model!r}",
                retry_after_ms=0.0)
        elif self._admission is not None:
            healthy = len(self.pool.healthy())
            total_outstanding = sum(b.outstanding for b in self.pool.backends)
            # outstanding work drains across the fleet in parallel; charge
            # this request the per-backend share, rounded pessimistically
            per_backend = (-(-total_outstanding // healthy)
                           if healthy else total_outstanding)
            rejection = self._admission.admit(model, deadline_s,
                                              request.tenant, per_backend)
        if rejection is None:
            return None
        self._shed.labels(model=model, reason=rejection.reason).inc()
        if traced:
            self.tracer.add_span(
                "sched.admit", gate_start, self._clock(),
                span.trace_id, span.span_id, category="sched", model=model,
                decision="shed", reason=rejection.reason,
                retry_after_ms=round(rejection.retry_after_ms, 3))
        log_event(logger, "admission.shed", level=logging.WARNING,
                  model=model, reason=rejection.reason,
                  retry_after_ms=round(rejection.retry_after_ms, 3))
        return _overloaded_message(request, rejection.message,
                                   rejection.reason, rejection.retry_after_ms)

    def _hedge_delay_s(self, model: str) -> float:
        qos = self.qos
        if qos is None or not qos.hedge_ms:
            return 0.0
        if qos.hedge_ms > 0:
            return qos.hedge_ms / 1e3
        # hedge_ms == -1: derive from the measured curve — hedge once the
        # request has waited ~2x the expected service time
        est = self.latency.estimate_s(model, 1)
        return max(2.0 * est, 1e-3)

    def _record_outcome(self, request: Message, start: float,
                        response: Optional[Message]) -> Message:
        """Account a finished request; fold None (cancelled arm) to ERROR."""
        if response is None:  # only reachable through a cancelled hedge arm
            return Message(MessageType.ERROR,
                           text=f"request for {request.name!r} was cancelled",
                           trace_id=request.trace_id, span_id=request.span_id)
        if response.type in (MessageType.INFER_RESPONSE,
                             MessageType.APP_RESPONSE):
            elapsed = self._clock() - start
            exemplar = (f"{request.trace_id:016x}"
                        if request.trace_id and self.tracer.enabled else None)
            inputs = (len(request.tensor)
                      if request.type == MessageType.INFER_REQUEST else 1)
            self.stats.record(request.name, elapsed,
                              inputs=inputs, exemplar=exemplar)
            self.latency.observe(request.name, 1, elapsed)
        return response

    # ------------------------------------------------------ response cache
    def _cache_probe(self, request: Message, span, traced: bool,
                     start: float):
        """Probe the response cache for one unary request.

        Returns ``(key, response)``: the content key to insert the
        eventual answer under after a miss, and the rebuilt response on a
        hit.  Any probe failure — including the ``cache.probe`` fault
        site — fails open to an uncacheable miss (``(None, None)``) so the
        request is simply forwarded as if the cache did not exist.
        """
        model = request.name
        probe_start = self._clock()
        try:
            if faultsite.active is not None:
                faultsite.active.on_cache_probe(model)
            payload = (request.tensor if request.tensor is not None
                       else (request.text or ""))
            key = response_key(model, request.payload_kind, payload)
            entry = self.cache.get(key, model, request.payload_kind)
        except Exception as exc:
            log_event(logger, "cache.probe_failed", level=logging.WARNING,
                      model=model, error=str(exc))
            return None, None
        probe_end = self._clock()
        if traced:
            self.tracer.add_span(
                "gateway.cache", probe_start, probe_end,
                span.trace_id, span.span_id, category="gateway",
                model=model, outcome="miss" if entry is None else "hit")
        self._stage_seconds.labels(model=model, stage="gateway.cache").inc(
            max(0.0, probe_end - probe_start))
        if entry is None:
            self._cache_misses.labels(model=model).inc()
            return key, None
        self._cache_hits.labels(model=model).inc()
        if entry.response_kind == int(MessageType.APP_RESPONSE):
            response = Message(MessageType.APP_RESPONSE, name=model,
                               text=entry.text,
                               payload_kind=entry.response_payload_kind,
                               trace_id=request.trace_id,
                               span_id=request.span_id)
        else:
            response = Message(MessageType.INFER_RESPONSE, name=model,
                               tensor=entry.tensor,
                               trace_id=request.trace_id,
                               span_id=request.span_id)
        # a hit counts toward throughput stats but never feeds the latency
        # model: near-zero hit latencies would poison the admission and
        # hedging estimates of backend service time
        elapsed = self._clock() - start
        exemplar = (f"{request.trace_id:016x}"
                    if request.trace_id and self.tracer.enabled else None)
        inputs = (len(request.tensor)
                  if request.type == MessageType.INFER_REQUEST else 1)
        self.stats.record(model, elapsed, inputs=inputs, exemplar=exemplar)
        return key, response

    def _cache_insert(self, key, request: Message,
                      response: Message) -> None:
        """Retain one successful unary response under its content key."""
        if self.cache is None or key is None:
            return
        if response.type == MessageType.INFER_RESPONSE:
            evicted = self.cache.put(
                key, request.name, request.payload_kind,
                tensor=response.tensor, response_kind=int(response.type))
        elif response.type == MessageType.APP_RESPONSE:
            evicted = self.cache.put(
                key, request.name, request.payload_kind,
                text=response.text, response_kind=int(response.type),
                response_payload_kind=response.payload_kind)
        else:
            return  # errors and typed rejections are never cacheable
        if evicted:
            self._cache_evictions.inc(evicted)
        self._cache_bytes.set(float(self.cache.bytes))

    # ------------------------------------------------------- attempt loop
    def _backend_roundtrip(self, client, request: Message,
                           qos_kwargs: dict) -> Message:
        """One typed roundtrip against a checked-out backend connection.

        INFER requests go through the client's tensor lane; APP requests
        are relayed as the same v5 frame — raw payload untouched, the
        *remaining* budget from ``qos_kwargs`` stamped on — so the backend
        runs the full preprocess → DNN → postprocess pipeline.  Typed
        rejections raise exactly as :meth:`DjinnClient.infer` raises, which
        is what the attempt loop's pass-through handlers expect.
        """
        if request.type == MessageType.APP_REQUEST:
            reply = client.roundtrip(Message(
                MessageType.APP_REQUEST, name=request.name,
                tensor=request.tensor, text=request.text,
                payload_kind=request.payload_kind,
                trace_id=request.trace_id, span_id=request.span_id,
                **qos_kwargs))
            if reply.type != MessageType.APP_RESPONSE:
                raise DjinnServiceError(
                    f"unexpected response type {reply.type}")
            return Message(MessageType.APP_RESPONSE, name=request.name,
                           text=reply.text, payload_kind=reply.payload_kind,
                           trace_id=request.trace_id,
                           span_id=request.span_id)
        outputs = client.infer(request.name, request.tensor, **qos_kwargs)
        return Message(MessageType.INFER_RESPONSE, name=request.name,
                       tensor=outputs, trace_id=request.trace_id,
                       span_id=request.span_id)

    def _forward_attempts(self, request: Message, span, traced: bool,
                          start: float, deadline_s: Optional[float],
                          avoid: frozenset = frozenset(),
                          cancel: Optional[threading.Event] = None,
                          inflight: Optional[_HedgeArm] = None) -> Optional[Message]:
        """Route, retry, and forward one request; the original retry loop.

        ``avoid`` seeds the tried-set (a hedge arm avoids the primary's
        backend); ``cancel``/``inflight`` wire first-wins cancellation: a
        cancelled arm returns ``None`` without burning retries or marking
        backends down on its self-inflicted transport error.
        """
        clock = self._clock
        tried: set = set(avoid)
        last_error = "no healthy backends"
        for attempt in range(self.retry.max_attempts):
            if cancel is not None and cancel.is_set():
                return None
            if attempt:
                self._retries.labels(model=request.name).inc()
                with self._rng_lock:
                    delay = self.retry.delay_s(attempt - 1, self._rng)
                log_event(logger, "retry", level=logging.WARNING,
                          model=request.name, attempt=attempt,
                          delay_ms=round(delay * 1e3, 3), error=last_error)
                time.sleep(delay)
            if deadline_s is not None and clock() >= deadline_s:
                # budget burnt in backoff/routing: stop before another hop
                self._gw_expired.labels(model=request.name).inc()
                if traced:
                    now = clock()
                    self.tracer.add_span(
                        "sched.expire", start, now, span.trace_id,
                        span.span_id, category="sched", model=request.name,
                        late_ms=round((now - deadline_s) * 1e3, 3),
                        attempts=attempt + 1)
                return Message(
                    MessageType.DEADLINE_EXCEEDED,
                    text=(f"deadline exceeded for {request.name!r}: budget "
                          f"spent after {attempt + 1} gateway attempt(s)"),
                    trace_id=request.trace_id, span_id=request.span_id)
            candidates = self.router.route(request.name)
            if not candidates:
                # whole fleet marked down — probe for recoveries right away
                self.health.probe_all()
                candidates = self.router.route(request.name)
                if not candidates:
                    continue
            # prefer backends this request hasn't burned yet
            fresh = [b for b in candidates if b.key not in tried] or candidates
            backend = fresh[0]
            tried.add(backend.key)
            try:
                client = backend.checkout()
            except DjinnConnectionError as exc:
                backend.mark_down()
                last_error = str(exc)
                continue
            if inflight is not None:
                inflight.set(client, backend.key)
            ok = False
            try:
                kwargs = {}
                if request.has_qos:
                    remaining_ms = 0.0
                    if deadline_s is not None:
                        # forward the *remaining* budget (floored at 1 µs so
                        # a spent budget still reads as deadlined on the
                        # wire and gets the backend's typed rejection)
                        remaining_ms = max((deadline_s - clock()) * 1e3, 1e-3)
                    kwargs = dict(deadline_ms=remaining_ms,
                                  priority=request.priority,
                                  tenant=request.tenant)
                rpc_start = clock()
                if traced:
                    # routing + any backoff so far is the gateway's
                    # "queue" share of the request's timeline
                    tracer = self.tracer
                    tracer.add_span("gateway.queue", start, rpc_start,
                                    span.trace_id, span.span_id,
                                    category="queue", attempts=attempt + 1)
                    with tracer.span("gateway.backend", category="gateway",
                                     trace_id=span.trace_id,
                                     parent_id=span.span_id,
                                     backend=backend.key):
                        response = self._backend_roundtrip(client, request,
                                                           kwargs)
                else:
                    response = self._backend_roundtrip(client, request,
                                                       kwargs)
                rpc_end = clock()
                ok = True
            except DjinnConnectionError as exc:
                if cancel is not None and cancel.is_set():
                    # the other arm won and interrupted this roundtrip; the
                    # backend did nothing wrong — do not mark it down
                    return None
                backend.mark_down()
                last_error = str(exc)
                continue
            except DjinnDeadlineError as exc:
                ok = True  # typed rejection: pass through, never retry
                return Message(MessageType.DEADLINE_EXCEEDED, text=str(exc),
                               trace_id=request.trace_id,
                               span_id=request.span_id)
            except DjinnOverloadedError as exc:
                ok = True  # backpressure: pass through with its retry hint
                return _overloaded_message(request, str(exc), exc.reason,
                                           exc.retry_after_ms)
            except DjinnServiceError as exc:
                ok = True  # the connection is fine; the model said no
                return Message(MessageType.ERROR, text=str(exc),
                               trace_id=request.trace_id,
                               span_id=request.span_id)
            finally:
                if inflight is not None:
                    inflight.clear()
                backend.checkin(client, ok=ok)
            # always-on stage accounting for the successful forward: the
            # routing/backoff share and the backend roundtrip share
            self._stage_seconds.labels(
                model=request.name, stage="gateway.queue").inc(
                    max(0.0, rpc_start - start))
            self._stage_seconds.labels(
                model=request.name, stage="gateway.rpc").inc(
                    max(0.0, rpc_end - rpc_start))
            return response
        self._exhausted.labels(model=request.name).inc()
        log_event(logger, "retry.exhausted", level=logging.ERROR,
                  model=request.name, attempts=self.retry.max_attempts,
                  error=last_error)
        return Message(
            MessageType.ERROR,
            text=(f"request for {request.name!r} failed after "
                  f"{self.retry.max_attempts} attempts: {last_error}"),
            trace_id=request.trace_id, span_id=request.span_id,
        )

    # ------------------------------------------------------------- hedging
    def _forward_hedged(self, request: Message, span, traced: bool,
                        start: float, deadline_s: Optional[float]) -> Message:
        """Tail-latency hedging: race a second backend, first response wins.

        The primary arm runs the normal attempt loop; if it has not
        finished within the hedge delay, a second arm fires against a
        different backend.  The first arm to produce a response wins,
        records the request, and interrupts the loser's in-flight roundtrip
        (its connection is discarded on checkin, not returned to the pool).
        """
        model = request.name
        done = threading.Event()
        hedged = threading.Event()  # did the second arm actually launch?
        results: List[Tuple[int, Message]] = []
        results_lock = threading.Lock()
        arms = (_HedgeArm(), _HedgeArm())

        def finish(arm_idx: int, response: Optional[Message]) -> None:
            if response is None:
                return  # cancelled arm: the other one already finished
            with results_lock:
                if results:
                    return
                results.append((arm_idx, response))
            done.set()
            arms[1 - arm_idx].cancel()

        def run_primary() -> None:
            try:
                if faultsite.active is not None:
                    faultsite.active.on_hedge(model)  # injected slowness
                finish(0, self._forward_attempts(
                    request, span, traced, start, deadline_s,
                    cancel=done, inflight=arms[0]))
            except Exception as exc:  # never strand the caller
                finish(0, Message(MessageType.ERROR, text=str(exc),
                                  trace_id=request.trace_id,
                                  span_id=request.span_id))

        hedge_launch = [0.0]  # stamped by the hedge arm when it actually fires

        def run_hedge() -> None:
            try:
                if done.wait(self._hedge_delay_s(model)):
                    return  # primary answered inside the hedge window
                hedge_launch[0] = self._clock()
                hedged.set()
                self._hedges.labels(model=model).inc()
                avoid = (frozenset((arms[0].backend_key,))
                         if arms[0].backend_key else frozenset())
                finish(1, self._forward_attempts(
                    request, span, traced, start, deadline_s,
                    avoid=avoid, cancel=done, inflight=arms[1]))
            except Exception as exc:
                finish(1, Message(MessageType.ERROR, text=str(exc),
                                  trace_id=request.trace_id,
                                  span_id=request.span_id))

        threads = (
            threading.Thread(target=run_primary, daemon=True,
                             name="gateway-hedge-primary"),
            threading.Thread(target=run_hedge, daemon=True,
                             name="gateway-hedge-secondary"),
        )
        for t in threads:
            t.start()
        done.wait()
        with results_lock:
            arm_idx, response = results[0]
        if hedged.is_set():  # a win only counts when there was a race
            winner = "primary" if arm_idx == 0 else "hedge"
            self._hedge_wins.labels(model=model, winner=winner).inc()
            if traced:
                self.tracer.add_span(
                    "gateway.hedge", hedge_launch[0] or start, self._clock(),
                    span.trace_id, span.span_id, category="gateway",
                    model=model, winner=winner)
        return self._record_outcome(request, start, response)

    # --------------------------------------------------------------- stats
    def _aggregate_stats(self) -> Dict[str, Dict[str, float]]:
        snapshots: List[Dict[str, Dict[str, float]]] = []
        for backend in self.pool.healthy():
            try:
                client = backend.checkout()
            except DjinnConnectionError:
                backend.mark_down()
                continue
            ok = False
            try:
                snapshots.append(client.stats())
                ok = True
            except DjinnConnectionError:
                backend.mark_down()
            finally:
                backend.checkin(client, ok=ok)
        merged = merge_stats(snapshots)
        for model, stats in self.stats.snapshot().items():
            merged[f"gateway:{model}"] = stats
        return merged

    def _aggregate_metrics(self) -> dict:
        """Fleet-level metrics: every healthy backend's registry dump merged
        with the gateway's own (name prefixes keep the two populations
        apart: ``djinn_*`` is backend-side, ``gateway_*`` is this process)."""
        dumps: List[dict] = [self.metrics.dump()]
        for backend in self.pool.healthy():
            try:
                client = backend.checkout()
            except DjinnConnectionError:
                backend.mark_down()
                continue
            ok = False
            try:
                dumps.append(client.metrics())
                ok = True
            except (DjinnConnectionError, DjinnServiceError):
                pass  # pre-metrics backend or transport failure: skip it
            finally:
                backend.checkin(client, ok=ok)
        return merge_dumps(dumps)
