"""The gateway front-end: one address that speaks for a DjiNN fleet.

Speaks the existing DjiNN wire protocol, so :class:`repro.core.DjinnClient`
and :class:`repro.core.RemoteBackend` work against it unchanged:

* ``INFER_REQUEST`` — routed to a healthy backend under the configured
  policy; transport failures burn the retry budget (exponential backoff +
  jitter, failing over to the next candidate) before an ERROR frame is
  surfaced.  Model-level errors pass through immediately — retrying a
  request the model rejected wastes the fleet's time.
* ``LIST_REQUEST`` — union of model names across healthy backends.
* ``STATS_REQUEST`` — per-model stats merged across the fleet (counts and
  qps summed, latency moments weighted by request count), with the
  gateway's own end-to-end view under ``gateway:<model>`` keys.
* ``SHUTDOWN`` — stops the gateway (backends are owned by their launcher).
"""

from __future__ import annotations

import json
import logging
import random
import socket
import threading
import time
from contextlib import nullcontext
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.client import DjinnConnectionError, DjinnServiceError
from ..core.protocol import Message, MessageType
from ..core.server import TcpServiceBase
from ..core.stats import ServiceStats
from ..obs.metrics import MetricsRegistry, merge_dumps
from ..obs.trace import Tracer, get_tracer, log_event
from .health import HealthChecker
from .pool import BackendHandle, BackendPool
from .retry import RetryPolicy
from .router import Router

__all__ = ["GatewayServer", "merge_stats"]

logger = logging.getLogger("repro.gateway")


def merge_stats(snapshots: Sequence[Dict[str, Dict[str, float]]]) -> Dict[str, Dict[str, float]]:
    """Merge per-backend ``ServiceStats.snapshot()`` dicts into a fleet view.

    ``requests``/``inputs``/``qps``/``window`` add across backends; the
    latency moments (mean and percentiles) are combined as
    request-count-weighted means — exact for ``mean_ms``, the standard
    frontend approximation for the percentiles (true fleet percentiles
    would need the raw windows on the wire); ``max_ms`` takes the fleet
    maximum.  ``backends`` counts how many replicas reported the model.
    """
    sums: Dict[str, Dict[str, float]] = {}
    for snap in snapshots:
        for model, stats in snap.items():
            acc = sums.setdefault(model, {
                "requests": 0.0, "inputs": 0.0, "qps": 0.0, "backends": 0.0,
                "_wsum": {}, "_max": None, "_window": None,
            })
            weight = float(stats.get("requests", 0.0))
            acc["requests"] += weight
            acc["inputs"] += float(stats.get("inputs", 0.0))
            acc["qps"] += float(stats.get("qps", 0.0))
            acc["backends"] += 1.0
            if "max_ms" in stats:
                current = acc["_max"]
                acc["_max"] = (float(stats["max_ms"]) if current is None
                               else max(current, float(stats["max_ms"])))
            if "window" in stats:
                acc["_window"] = (acc["_window"] or 0.0) + float(stats["window"])
            for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
                if key in stats:
                    acc["_wsum"][key] = acc["_wsum"].get(key, 0.0) + weight * stats[key]
    merged: Dict[str, Dict[str, float]] = {}
    for model, acc in sums.items():
        weighted = acc.pop("_wsum")
        maximum = acc.pop("_max")
        window = acc.pop("_window")
        out = dict(acc)
        for key, total in weighted.items():
            out[key] = total / acc["requests"] if acc["requests"] else 0.0
        if maximum is not None:
            out["max_ms"] = maximum
        if window is not None:
            out["window"] = window
        merged[model] = out
    return merged


class GatewayServer(TcpServiceBase):
    """Sharded, fault-tolerant TCP front-end for N DjiNN backends.

    Parameters
    ----------
    backends:
        ``(host, port)`` addresses of the fleet (e.g.
        :attr:`ClusterLauncher.addresses`).
    policy:
        Routing policy name — see :data:`repro.gateway.router.POLICIES`.
    retry:
        Transport-failure retry budget; defaults to 3 attempts with
        20 ms base backoff.
    health_interval_s:
        Period of the background LIST_REQUEST probes.  ``start()`` always
        runs one synchronous probe sweep so routing begins informed.
    clock:
        Monotonic time source for latency accounting (injected for
        testability; the stack standardizes on ``time.monotonic``).
    tracer:
        Span collector; defaults to the process tracer (disabled until
        enabled).  Traced requests get ``gateway.infer`` → ``gateway.queue``
        / ``gateway.backend`` spans, and the trace context is forwarded to
        the chosen backend on the wire.

    Health and retry events (mark-down, mark-up, per-request retries,
    exhausted budgets) increment labeled counters in :attr:`metrics` and
    emit structured ``event=…`` log lines on the ``repro.gateway`` logger.
    """

    service_name = "gateway"

    def __init__(
        self,
        backends: Sequence[Tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        policy: str = "round_robin",
        retry: Optional[RetryPolicy] = None,
        health_interval_s: float = 0.5,
        backend_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(host=host, port=port)
        self._clock = clock
        self.tracer = tracer if tracer is not None else get_tracer()
        self.metrics = MetricsRegistry()
        self._transitions = self.metrics.counter(
            "gateway_backend_transitions_total",
            "Backend health transitions observed by the gateway.",
            ("backend", "event"))
        self._retries = self.metrics.counter(
            "gateway_retries_total",
            "Transport-failure retries spent, per model.", ("model",))
        self._exhausted = self.metrics.counter(
            "gateway_retry_exhausted_total",
            "Requests failed after the whole retry budget, per model.",
            ("model",))
        self.pool = BackendPool(backends, timeout_s=backend_timeout_s,
                                observer=self._on_transition,
                                tracer=self.tracer)
        self.router = Router(self.pool, policy=policy)
        self.retry = retry or RetryPolicy()
        self.health = HealthChecker(self.pool, interval_s=health_interval_s,
                                    probe_timeout_s=backend_timeout_s)
        self.stats = ServiceStats(clock=clock, registry=self.metrics,
                                  prefix="gateway")
        self._rng = random.Random(0x6A7E)
        self._rng_lock = threading.Lock()

    # -------------------------------------------------------------- events
    def _on_transition(self, event: str, backend: BackendHandle) -> None:
        self._transitions.labels(backend=backend.key, event=event).inc()
        log_event(
            logger, f"backend.{event}",
            level=logging.WARNING if event == "mark_down" else logging.INFO,
            backend=backend.key, failures=backend.failures,
        )

    # ------------------------------------------------------------ lifecycle
    def _on_start(self) -> None:
        self.health.probe_all()
        self.health.start()

    def _on_stop(self) -> None:
        self.health.stop()
        self.pool.close()

    # ------------------------------------------------------------- serving
    def _handle(self, conn: socket.socket, request: Message) -> bool:
        if request.type == MessageType.INFER_REQUEST:
            self._safe_send(conn, self._forward_infer(request))
            return True
        if request.type == MessageType.LIST_REQUEST:
            if not self.pool.model_names():
                self.health.probe_all()  # nothing cached yet (or fleet was down)
            self._safe_send(
                conn,
                Message(MessageType.LIST_RESPONSE,
                        text="\n".join(self.pool.model_names())),
            )
            return True
        if request.type == MessageType.STATS_REQUEST:
            self._safe_send(
                conn,
                Message(MessageType.STATS_RESPONSE,
                        text=json.dumps(self._aggregate_stats())),
            )
            return True
        if request.type == MessageType.METRICS_REQUEST:
            self._safe_send(
                conn,
                Message(MessageType.METRICS_RESPONSE,
                        text=json.dumps(self._aggregate_metrics())),
            )
            return True
        if request.type == MessageType.SHUTDOWN:
            self._safe_send(conn, Message(MessageType.SHUTDOWN))
            threading.Thread(target=self.stop, daemon=True).start()
            return False
        self._safe_send(
            conn, Message(MessageType.ERROR, text=f"unexpected message type {request.type}")
        )
        return True

    # ---------------------------------------------------------- forwarding
    def _forward_infer(self, request: Message) -> Message:
        if request.tensor is None:
            return Message(MessageType.ERROR, text="inference request carries no tensor",
                           trace_id=request.trace_id, span_id=request.span_id)
        clock = self._clock
        tracer = self.tracer
        traced = bool(request.trace_id) and tracer.enabled
        span_cm = (
            tracer.span("gateway.infer", category="gateway",
                        trace_id=request.trace_id, parent_id=request.span_id,
                        model=request.name)
            if traced else nullcontext(None)
        )
        with span_cm as span:
            start = clock()
            tried: set = set()
            last_error = "no healthy backends"
            for attempt in range(self.retry.max_attempts):
                if attempt:
                    self._retries.labels(model=request.name).inc()
                    with self._rng_lock:
                        delay = self.retry.delay_s(attempt - 1, self._rng)
                    log_event(logger, "retry", level=logging.WARNING,
                              model=request.name, attempt=attempt,
                              delay_ms=round(delay * 1e3, 3), error=last_error)
                    time.sleep(delay)
                candidates = self.router.route(request.name)
                if not candidates:
                    # whole fleet marked down — probe for recoveries right away
                    self.health.probe_all()
                    candidates = self.router.route(request.name)
                    if not candidates:
                        continue
                # prefer backends this request hasn't burned yet
                fresh = [b for b in candidates if b.key not in tried] or candidates
                backend = fresh[0]
                tried.add(backend.key)
                try:
                    client = backend.checkout()
                except DjinnConnectionError as exc:
                    backend.mark_down()
                    last_error = str(exc)
                    continue
                ok = False
                try:
                    if traced:
                        # routing + any backoff so far is the gateway's
                        # "queue" share of the request's timeline
                        tracer.add_span("gateway.queue", start, clock(),
                                        span.trace_id, span.span_id,
                                        category="queue", attempts=attempt + 1)
                        with tracer.span("gateway.backend", category="gateway",
                                         trace_id=span.trace_id,
                                         parent_id=span.span_id,
                                         backend=backend.key):
                            outputs = client.infer(request.name, request.tensor)
                    else:
                        outputs = client.infer(request.name, request.tensor)
                    ok = True
                except DjinnConnectionError as exc:
                    backend.mark_down()
                    last_error = str(exc)
                    continue
                except DjinnServiceError as exc:
                    ok = True  # the connection is fine; the model said no
                    return Message(MessageType.ERROR, text=str(exc),
                                   trace_id=request.trace_id,
                                   span_id=request.span_id)
                finally:
                    backend.checkin(client, ok=ok)
                self.stats.record(request.name, clock() - start,
                                  inputs=len(request.tensor))
                return Message(MessageType.INFER_RESPONSE, name=request.name,
                               tensor=outputs, trace_id=request.trace_id,
                               span_id=request.span_id)
            self._exhausted.labels(model=request.name).inc()
            log_event(logger, "retry.exhausted", level=logging.ERROR,
                      model=request.name, attempts=self.retry.max_attempts,
                      error=last_error)
            return Message(
                MessageType.ERROR,
                text=(f"request for {request.name!r} failed after "
                      f"{self.retry.max_attempts} attempts: {last_error}"),
                trace_id=request.trace_id, span_id=request.span_id,
            )

    # --------------------------------------------------------------- stats
    def _aggregate_stats(self) -> Dict[str, Dict[str, float]]:
        snapshots: List[Dict[str, Dict[str, float]]] = []
        for backend in self.pool.healthy():
            try:
                client = backend.checkout()
            except DjinnConnectionError:
                backend.mark_down()
                continue
            ok = False
            try:
                snapshots.append(client.stats())
                ok = True
            except DjinnConnectionError:
                backend.mark_down()
            finally:
                backend.checkin(client, ok=ok)
        merged = merge_stats(snapshots)
        for model, stats in self.stats.snapshot().items():
            merged[f"gateway:{model}"] = stats
        return merged

    def _aggregate_metrics(self) -> dict:
        """Fleet-level metrics: every healthy backend's registry dump merged
        with the gateway's own (name prefixes keep the two populations
        apart: ``djinn_*`` is backend-side, ``gateway_*`` is this process)."""
        dumps: List[dict] = [self.metrics.dump()]
        for backend in self.pool.healthy():
            try:
                client = backend.checkout()
            except DjinnConnectionError:
                backend.mark_down()
                continue
            ok = False
            try:
                dumps.append(client.metrics())
                ok = True
            except (DjinnConnectionError, DjinnServiceError):
                pass  # pre-metrics backend or transport failure: skip it
            finally:
                backend.checkin(client, ok=ok)
        return merge_dumps(dumps)
