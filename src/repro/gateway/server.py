"""The gateway front-end: one address that speaks for a DjiNN fleet.

Speaks the existing DjiNN wire protocol, so :class:`repro.core.DjinnClient`
and :class:`repro.core.RemoteBackend` work against it unchanged:

* ``INFER_REQUEST`` — routed to a healthy backend under the configured
  policy; transport failures burn the retry budget (exponential backoff +
  jitter, failing over to the next candidate) before an ERROR frame is
  surfaced.  Model-level errors pass through immediately — retrying a
  request the model rejected wastes the fleet's time.
* ``LIST_REQUEST`` — union of model names across healthy backends.
* ``STATS_REQUEST`` — per-model stats merged across the fleet (counts and
  qps summed, latency moments weighted by request count), with the
  gateway's own end-to-end view under ``gateway:<model>`` keys.
* ``SHUTDOWN`` — stops the gateway (backends are owned by their launcher).
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.client import DjinnConnectionError, DjinnServiceError
from ..core.protocol import Message, MessageType
from ..core.server import TcpServiceBase
from ..core.stats import ServiceStats
from .health import HealthChecker
from .pool import BackendPool
from .retry import RetryPolicy
from .router import Router

__all__ = ["GatewayServer", "merge_stats"]


def merge_stats(snapshots: Sequence[Dict[str, Dict[str, float]]]) -> Dict[str, Dict[str, float]]:
    """Merge per-backend ``ServiceStats.snapshot()`` dicts into a fleet view.

    ``requests``/``inputs``/``qps`` add across backends; the latency moments
    (mean and percentiles) are combined as request-count-weighted means —
    exact for ``mean_ms``, the standard frontend approximation for the
    percentiles (true fleet percentiles would need the raw windows on the
    wire).  ``backends`` counts how many replicas reported the model.
    """
    sums: Dict[str, Dict[str, float]] = {}
    for snap in snapshots:
        for model, stats in snap.items():
            acc = sums.setdefault(model, {
                "requests": 0.0, "inputs": 0.0, "qps": 0.0, "backends": 0.0,
                "_wsum": {},
            })
            weight = float(stats.get("requests", 0.0))
            acc["requests"] += weight
            acc["inputs"] += float(stats.get("inputs", 0.0))
            acc["qps"] += float(stats.get("qps", 0.0))
            acc["backends"] += 1.0
            for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
                if key in stats:
                    acc["_wsum"][key] = acc["_wsum"].get(key, 0.0) + weight * stats[key]
    merged: Dict[str, Dict[str, float]] = {}
    for model, acc in sums.items():
        weighted = acc.pop("_wsum")
        out = dict(acc)
        for key, total in weighted.items():
            out[key] = total / acc["requests"] if acc["requests"] else 0.0
        merged[model] = out
    return merged


class GatewayServer(TcpServiceBase):
    """Sharded, fault-tolerant TCP front-end for N DjiNN backends.

    Parameters
    ----------
    backends:
        ``(host, port)`` addresses of the fleet (e.g.
        :attr:`ClusterLauncher.addresses`).
    policy:
        Routing policy name — see :data:`repro.gateway.router.POLICIES`.
    retry:
        Transport-failure retry budget; defaults to 3 attempts with
        20 ms base backoff.
    health_interval_s:
        Period of the background LIST_REQUEST probes.  ``start()`` always
        runs one synchronous probe sweep so routing begins informed.
    """

    service_name = "gateway"

    def __init__(
        self,
        backends: Sequence[Tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        policy: str = "round_robin",
        retry: Optional[RetryPolicy] = None,
        health_interval_s: float = 0.5,
        backend_timeout_s: float = 30.0,
    ):
        super().__init__(host=host, port=port)
        self.pool = BackendPool(backends, timeout_s=backend_timeout_s)
        self.router = Router(self.pool, policy=policy)
        self.retry = retry or RetryPolicy()
        self.health = HealthChecker(self.pool, interval_s=health_interval_s,
                                    probe_timeout_s=backend_timeout_s)
        self.stats = ServiceStats()
        self._rng = random.Random(0x6A7E)
        self._rng_lock = threading.Lock()

    # ------------------------------------------------------------ lifecycle
    def _on_start(self) -> None:
        self.health.probe_all()
        self.health.start()

    def _on_stop(self) -> None:
        self.health.stop()
        self.pool.close()

    # ------------------------------------------------------------- serving
    def _handle(self, conn: socket.socket, request: Message) -> bool:
        if request.type == MessageType.INFER_REQUEST:
            self._safe_send(conn, self._forward_infer(request))
            return True
        if request.type == MessageType.LIST_REQUEST:
            if not self.pool.model_names():
                self.health.probe_all()  # nothing cached yet (or fleet was down)
            self._safe_send(
                conn,
                Message(MessageType.LIST_RESPONSE,
                        text="\n".join(self.pool.model_names())),
            )
            return True
        if request.type == MessageType.STATS_REQUEST:
            self._safe_send(
                conn,
                Message(MessageType.STATS_RESPONSE,
                        text=json.dumps(self._aggregate_stats())),
            )
            return True
        if request.type == MessageType.SHUTDOWN:
            self._safe_send(conn, Message(MessageType.SHUTDOWN))
            threading.Thread(target=self.stop, daemon=True).start()
            return False
        self._safe_send(
            conn, Message(MessageType.ERROR, text=f"unexpected message type {request.type}")
        )
        return True

    # ---------------------------------------------------------- forwarding
    def _forward_infer(self, request: Message) -> Message:
        if request.tensor is None:
            return Message(MessageType.ERROR, text="inference request carries no tensor")
        start = time.perf_counter()
        tried: set = set()
        last_error = "no healthy backends"
        for attempt in range(self.retry.max_attempts):
            if attempt:
                with self._rng_lock:
                    delay = self.retry.delay_s(attempt - 1, self._rng)
                time.sleep(delay)
            candidates = self.router.route(request.name)
            if not candidates:
                # whole fleet marked down — probe for recoveries right away
                self.health.probe_all()
                candidates = self.router.route(request.name)
                if not candidates:
                    continue
            # prefer backends this request hasn't burned yet
            fresh = [b for b in candidates if b.key not in tried] or candidates
            backend = fresh[0]
            tried.add(backend.key)
            try:
                client = backend.checkout()
            except DjinnConnectionError as exc:
                backend.mark_down()
                last_error = str(exc)
                continue
            ok = False
            try:
                outputs = client.infer(request.name, request.tensor)
                ok = True
            except DjinnConnectionError as exc:
                backend.mark_down()
                last_error = str(exc)
                continue
            except DjinnServiceError as exc:
                ok = True  # the connection is fine; the model said no
                return Message(MessageType.ERROR, text=str(exc))
            finally:
                backend.checkin(client, ok=ok)
            self.stats.record(request.name, time.perf_counter() - start,
                              inputs=len(request.tensor))
            return Message(MessageType.INFER_RESPONSE, name=request.name,
                           tensor=outputs)
        return Message(
            MessageType.ERROR,
            text=(f"request for {request.name!r} failed after "
                  f"{self.retry.max_attempts} attempts: {last_error}"),
        )

    # --------------------------------------------------------------- stats
    def _aggregate_stats(self) -> Dict[str, Dict[str, float]]:
        snapshots: List[Dict[str, Dict[str, float]]] = []
        for backend in self.pool.healthy():
            try:
                client = backend.checkout()
            except DjinnConnectionError:
                backend.mark_down()
                continue
            ok = False
            try:
                snapshots.append(client.stats())
                ok = True
            except DjinnConnectionError:
                backend.mark_down()
            finally:
                backend.checkin(client, ok=ok)
        merged = merge_stats(snapshots)
        for model, stats in self.stats.snapshot().items():
            merged[f"gateway:{model}"] = stats
        return merged
