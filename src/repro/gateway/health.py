"""Health checking: periodic LIST_REQUEST probes with mark-down/mark-up.

Each probe opens (or reuses) nothing from the request path — it dials a
dedicated short-lived connection, asks the backend for its model list, and
marks the backend up (caching the models for routing and aggregated LIST
responses) or down.  A backend that crashed mid-request is usually marked
down by the request path first; the prober is what brings it *back* once
it answers again.

Health transitions are not silent: ``BackendHandle.mark_down``/``mark_up``
fire the pool's transition observer, which the gateway wires to labeled
``gateway_backend_transitions_total`` counters and structured ``event=…``
log lines (see :class:`repro.gateway.server.GatewayServer`).
"""

from __future__ import annotations

import threading
from typing import Optional

from ..core import faultsite
from ..core.client import DjinnClient, DjinnServiceError
from .pool import BackendHandle, BackendPool

__all__ = ["HealthChecker"]


class HealthChecker:
    """Background prober for a :class:`BackendPool`."""

    def __init__(self, pool: BackendPool, interval_s: float = 1.0,
                 probe_timeout_s: float = 5.0):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.pool = pool
        self.interval_s = interval_s
        self.probe_timeout_s = probe_timeout_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ----------------------------------------------------------- probing
    def probe(self, backend: BackendHandle) -> bool:
        """One synchronous probe; updates the backend's health state."""
        if faultsite.active is not None and faultsite.active.on_probe(backend.key):
            backend.mark_down()  # injected flap: the probe "failed"
            return False
        try:
            with DjinnClient(backend.host, backend.port,
                             timeout_s=self.probe_timeout_s,
                             fault_scope="probe") as client:
                models = client.list_models()
        except (DjinnServiceError, OSError):
            backend.mark_down()
            return False
        backend.mark_up(models)
        return True

    def probe_all(self) -> int:
        """Probe every backend once; returns how many are healthy."""
        return sum(self.probe(backend) for backend in self.pool)

    # --------------------------------------------------------- lifecycle
    def start(self) -> "HealthChecker":
        if self._thread is not None:
            raise RuntimeError("health checker already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="gateway-health")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.probe_all()
