"""Backend fleet bookkeeping: per-backend connection pools and health state.

The gateway fronts N independent ``DjinnServer`` instances (one per GPU in
the paper's §5.2 setup).  Each backend gets a :class:`BackendHandle` that
tracks health, in-flight load, the model set seen by the last probe, and a
small pool of idle :class:`DjinnClient` connections.  Connections are
checked out per request and returned on success; failed connections are
discarded so the next checkout dials fresh.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import faultsite
from ..core.client import DjinnClient, DjinnConnectionError
from ..obs.trace import Tracer

__all__ = ["BackendHandle", "BackendPool"]

#: ``observer(event, handle)`` fires on actual health transitions —
#: ``event`` is ``"mark_down"`` or ``"mark_up"`` — so the gateway can count
#: and log them without the pool knowing about metrics.
TransitionObserver = Callable[[str, "BackendHandle"], None]


class BackendHandle:
    """One backend instance as the gateway sees it."""

    def __init__(self, host: str, port: int, timeout_s: float = 30.0,
                 max_idle: int = 8,
                 observer: Optional[TransitionObserver] = None,
                 tracer: Optional[Tracer] = None):
        self.host, self.port = host, port
        self.timeout_s = timeout_s
        self.key = f"{host}:{port}"
        self.max_idle = max_idle
        self._observer = observer
        self._tracer = tracer
        self._lock = threading.Lock()
        self._idle: List[DjinnClient] = []
        self._healthy = True
        self._outstanding = 0
        #: model names reported by the last successful health probe
        self.models: Tuple[str, ...] = ()
        #: consecutive probe/request failures (reset on success)
        self.failures = 0

    # ----------------------------------------------------------- health
    @property
    def healthy(self) -> bool:
        with self._lock:
            return self._healthy

    def mark_down(self) -> None:
        with self._lock:
            transitioned = self._healthy
            self._healthy = False
            self.failures += 1
            idle, self._idle = self._idle, []
        for client in idle:  # stale connections are useless after a crash
            client.close()
        if transitioned and self._observer is not None:
            self._observer("mark_down", self)

    def mark_up(self, models: Sequence[str] = ()) -> None:
        with self._lock:
            transitioned = not self._healthy
            self._healthy = True
            self.failures = 0
            if models:
                self.models = tuple(models)
        if transitioned and self._observer is not None:
            self._observer("mark_up", self)

    # ------------------------------------------------------------- load
    @property
    def outstanding(self) -> int:
        with self._lock:
            return self._outstanding

    # ------------------------------------------------------ connections
    def checkout(self) -> DjinnClient:
        """Borrow a connection (dials a new one when the pool is empty).

        Raises :class:`DjinnConnectionError` if the backend is unreachable.
        """
        if faultsite.active is not None:
            faultsite.active.on_checkout(self.key)  # may raise (injected refusal)
        with self._lock:
            client = self._idle.pop() if self._idle else None
            self._outstanding += 1
        if client is not None:
            return client
        try:
            return DjinnClient(self.host, self.port, timeout_s=self.timeout_s,
                               tracer=self._tracer, fault_scope="gateway.client")
        except DjinnConnectionError:
            with self._lock:
                self._outstanding -= 1
            raise

    def checkin(self, client: DjinnClient, ok: bool = True) -> None:
        """Return a borrowed connection; broken ones are discarded."""
        with self._lock:
            self._outstanding = max(0, self._outstanding - 1)
            if ok and self._healthy and len(self._idle) < self.max_idle:
                self._idle.append(client)
                return
        client.close()

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for client in idle:
            client.close()

    def __repr__(self) -> str:
        state = "up" if self.healthy else "DOWN"
        return f"<BackendHandle {self.key} {state} outstanding={self.outstanding}>"


class BackendPool:
    """The gateway's view of the whole fleet."""

    def __init__(self, addresses: Sequence[Tuple[str, int]],
                 timeout_s: float = 30.0, max_idle: int = 8,
                 observer: Optional[TransitionObserver] = None,
                 tracer: Optional[Tracer] = None):
        if not addresses:
            raise ValueError("gateway needs at least one backend address")
        self.backends: List[BackendHandle] = [
            BackendHandle(host, port, timeout_s=timeout_s, max_idle=max_idle,
                          observer=observer, tracer=tracer)
            for host, port in addresses
        ]
        self._by_key: Dict[str, BackendHandle] = {b.key: b for b in self.backends}
        if len(self._by_key) != len(self.backends):
            raise ValueError("duplicate backend addresses")

    def healthy(self) -> List[BackendHandle]:
        return [b for b in self.backends if b.healthy]

    def get(self, key: str) -> Optional[BackendHandle]:
        return self._by_key.get(key)

    def model_names(self) -> List[str]:
        """Union of model names across healthy backends (sorted)."""
        names = set()
        for backend in self.healthy():
            names.update(backend.models)
        return sorted(names)

    def close(self) -> None:
        for backend in self.backends:
            backend.close()

    def __len__(self) -> int:
        return len(self.backends)

    def __iter__(self):
        return iter(self.backends)
