"""Request routing: shard requests across healthy backends.

Three pluggable policies, mirroring what a warehouse-scale front-end does
in front of a fleet of accelerator-backed instances:

``round_robin``
    Rotate through healthy backends — the paper's own multi-GPU experiment
    (§5.2) distributes load evenly across instances.
``least_outstanding``
    Pick the healthy backend with the fewest in-flight requests; adapts to
    heterogeneous service times without explicit feedback.
``model_affinity``
    Rendezvous-hash the model name over the fleet so one model's requests
    concentrate on the backends that already have it hot (weights resident,
    caches warm), while different models spread out.  Backends whose last
    health probe actually reported the model rank ahead of ones that
    merely hash well.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from typing import Callable, Dict, List

from .pool import BackendHandle, BackendPool

__all__ = ["Router", "POLICIES", "rendezvous_score"]


def rendezvous_score(model: str, key: str) -> int:
    """Stable per-(model, backend) weight for highest-random-weight hashing."""
    digest = hashlib.blake2b(f"{model}|{key}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _round_robin(counter: itertools.count):
    def order(model: str, backends: List[BackendHandle]) -> List[BackendHandle]:
        start = next(counter) % len(backends)
        return backends[start:] + backends[:start]
    return order


def _least_outstanding(model: str, backends: List[BackendHandle]) -> List[BackendHandle]:
    return sorted(backends, key=lambda b: (b.outstanding, b.key))


def _model_affinity(model: str, backends: List[BackendHandle]) -> List[BackendHandle]:
    return sorted(
        backends,
        key=lambda b: (model not in b.models, -rendezvous_score(model, b.key)),
    )


#: policy name -> factory returning an ordering function
POLICIES: Dict[str, Callable] = {
    "round_robin": lambda: _round_robin(itertools.count()),
    "least_outstanding": lambda: _least_outstanding,
    "model_affinity": lambda: _model_affinity,
}


class Router:
    """Order healthy backends for one request under a named policy.

    :meth:`route` returns the full preference list (best first) so the
    retry loop can fail over without re-consulting the policy; an empty
    list means no backend is currently marked healthy.
    """

    def __init__(self, pool: BackendPool, policy: str = "round_robin"):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; choose from {sorted(POLICIES)}"
            )
        self.pool = pool
        self.policy = policy
        self._order = POLICIES[policy]()
        self._lock = threading.Lock()

    def route(self, model: str) -> List[BackendHandle]:
        backends = self.pool.healthy()
        if not backends:
            return []
        with self._lock:  # round-robin counter and sorts stay race-free
            return list(self._order(model, backends))

    def route_stream(self, model: str, stream_key: str) -> List[BackendHandle]:
        """Preference list for a new *stream*, independent of the policy.

        A stream's session state (carry-over audio, decoder lattice) lives
        on exactly one backend, so every stream is pinned for its lifetime:
        rendezvous-hash the (model, stream) pair over the fleet so streams
        spread evenly while reopening after a failover lands deterministically.
        Backends that reported the model in their last probe rank first.
        """
        backends = self.pool.healthy()
        if not backends:
            return []
        return sorted(
            backends,
            key=lambda b: (model not in b.models,
                           -rendezvous_score(f"{model}#{stream_key}", b.key)),
        )
