"""Fleet lifecycle: spin up/down N in-process DjiNN backends.

The paper's multi-GPU experiments (§5.2, Fig. 11) run one DjiNN instance
per GPU.  :class:`ClusterLauncher` is that fleet in miniature for tests and
benchmarks: N :class:`DjinnServer` instances on loopback ports, sharing a
read-only registry (or built per-backend from a factory), each optionally
device-paced via ``service_floor_s``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

from ..core.batching import BatchPolicy
from ..core.registry import ModelRegistry
from ..core.server import DjinnServer

__all__ = ["ClusterLauncher"]

RegistrySource = Union[ModelRegistry, Callable[[int], ModelRegistry]]


class ClusterLauncher:
    """Start and stop a fleet of in-process DjiNN backends.

    Parameters
    ----------
    registry:
        Either one :class:`ModelRegistry` shared read-only by every backend
        (models are immutable after registration, so this is safe), or a
        callable ``f(backend_index) -> ModelRegistry`` for heterogeneous
        fleets (e.g. model-partitioned backends).
    backends:
        Fleet size.
    batching, sched, service_floor_s, profile_layers:
        Forwarded to every :class:`DjinnServer` (``sched`` selects the
        batching executor's scheduling policy — ``"fixed"``/``"adaptive"``
        or a :class:`repro.sched.SchedPolicy`; ``profile_layers`` arms
        per-layer span capture for traced requests).
    workers, worker_fault_plan:
        Forwarded to every :class:`DjinnServer`; ``workers="proc:N"`` makes
        each backend front its own shared-memory process pool.  With a
        shared registry the weight segments are exported once and mapped by
        every backend's workers — still one physical copy per host.
    layer_cache:
        Optional :class:`repro.nn.engine.LayerCacheConfig` forwarded to
        every backend, arming the engine-level activation cache (requires
        ``batching``).
    """

    def __init__(
        self,
        registry: RegistrySource,
        backends: int = 2,
        host: str = "127.0.0.1",
        batching: Optional[BatchPolicy] = None,
        sched=None,
        service_floor_s: float = 0.0,
        profile_layers: bool = False,
        workers=None,
        worker_fault_plan=None,
        layer_cache=None,
    ):
        if backends < 1:
            raise ValueError(f"need at least one backend, got {backends}")
        self._source = registry
        self._n = backends
        self._host = host
        self._batching = batching
        self._sched = sched
        self._floor_s = service_floor_s
        self._profile_layers = profile_layers
        self._workers = workers
        self._worker_fault_plan = worker_fault_plan
        self._layer_cache = layer_cache
        self.servers: List[DjinnServer] = []

    def _registry_for(self, index: int) -> ModelRegistry:
        if callable(self._source):
            return self._source(index)
        return self._source

    # --------------------------------------------------------- lifecycle
    def start(self) -> "ClusterLauncher":
        if self.servers:
            raise RuntimeError("cluster already started")
        for i in range(self._n):
            server = DjinnServer(
                self._registry_for(i), host=self._host, port=0,
                batching=self._batching, sched=self._sched,
                service_floor_s=self._floor_s,
                profile_layers=self._profile_layers,
                workers=self._workers,
                worker_fault_plan=self._worker_fault_plan,
                layer_cache=self._layer_cache,
            )
            server.start()
            self.servers.append(server)
        return self

    def stop(self) -> None:
        for server in self.servers:
            server.stop()
        self.servers = []

    def __enter__(self) -> "ClusterLauncher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ----------------------------------------------------------- control
    @property
    def addresses(self) -> List[Tuple[str, int]]:
        return [server.address for server in self.servers]

    def kill_backend(self, index: int) -> Tuple[str, int]:
        """Hard-stop one backend (listener and live connections die).

        The server object stays in :attr:`servers` so indices are stable;
        returns the address it was serving on.
        """
        server = self.servers[index]
        address = server.address
        server.stop()
        return address

    def __len__(self) -> int:
        return len(self.servers)
