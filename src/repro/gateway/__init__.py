"""``repro.gateway`` — a sharded, fault-tolerant front-end for DjiNN fleets.

The paper scales DjiNN by replication: one service instance per GPU, with
load spread across them (§5.2–§5.3, Fig. 11).  This package is the missing
entry point in front of that fleet: a :class:`GatewayServer` that speaks
the existing wire protocol (clients work unchanged), shards requests across
healthy backends under pluggable routing policies, health-checks the fleet,
and retries transport failures with backoff before surfacing an error.

Layers
------
:class:`BackendPool` / :class:`BackendHandle`
    Per-backend health, in-flight counters, and pooled connections.
:class:`Router`
    round_robin | least_outstanding | model_affinity request sharding.
:class:`HealthChecker`
    Periodic LIST_REQUEST probes; mark-down/mark-up.
:class:`RetryPolicy`
    Bounded attempts, exponential backoff, full jitter.
:class:`ClusterLauncher`
    Spin up/down an in-process backend fleet for tests and benchmarks.
:class:`ResponseCache`
    Content-addressed memo of unary responses (``--cache-mb``).
:class:`GatewayServer`
    The TCP front-end tying it all together.
"""

from .cache import ResponseCache, response_key
from .health import HealthChecker
from .launcher import ClusterLauncher
from .pool import BackendHandle, BackendPool
from .retry import RetryPolicy
from .router import POLICIES, Router, rendezvous_score
from .server import GatewayServer, merge_stats

__all__ = [
    "BackendHandle",
    "BackendPool",
    "ClusterLauncher",
    "GatewayServer",
    "HealthChecker",
    "POLICIES",
    "ResponseCache",
    "RetryPolicy",
    "Router",
    "merge_stats",
    "rendezvous_score",
    "response_key",
]
