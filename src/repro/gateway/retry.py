"""Retry budgeting: exponential backoff with jitter, bounded attempts.

Transport-level failures (:class:`repro.core.DjinnConnectionError`) are
retryable — the same request may succeed on another replica.  Model-level
errors are not.  The gateway spends at most ``max_attempts`` tries per
request, sleeping ``base_delay_s * 2**k`` (capped, jittered) between them,
and only surfaces an error to the client once the budget is spent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try a request and how long to wait between tries."""

    max_attempts: int = 3
    base_delay_s: float = 0.02
    max_delay_s: float = 1.0
    jitter_frac: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError(f"jitter_frac must be in [0, 1], got {self.jitter_frac}")

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based), jittered.

        Full jitter on the top ``jitter_frac`` of the exponential delay:
        delays from concurrent retries decorrelate instead of stampeding
        the next backend in lockstep.
        """
        capped = min(self.base_delay_s * (2 ** attempt), self.max_delay_s)
        if self.jitter_frac == 0.0:
            return capped
        floor = capped * (1.0 - self.jitter_frac)
        return floor + rng.random() * (capped - floor)
