"""Content-addressed response cache for the gateway's unary serve path.

DjiNN's throughput argument is about amortizing work across requests; the
cheapest request is the one the fleet never sees.  Real DNN services see
heavy duplicate traffic (the ``dup_frac`` knobs in the Tonic datasets and
load generator model it), and a DNN forward pass is a pure function of
(model, payload) — so a gateway-side memo is sound whenever the key is
honest about everything the answer depends on.

Key derivation
--------------
:func:`response_key` digests exactly the QoS-*invariant* identity of a
request: the model name, the payload kind, the payload's shape, and its
raw bytes.  Deadline, priority, tenant, and trace context are deliberately
excluded — two tenants asking the same model the same question get the
same answer, so they share an entry (pinned by the property tests in
``tests/test_cache.py``).  Stream frames never reach the cache: a stream's
answer is a function of session state, not of any one frame.

Entries store the response *payload* (output tensor or app answer text),
never a wire frame: trace/span ids are per-request, so the hit path
rebuilds a response around the caller's identity and the frame comes out
byte-identical to what a miss would have produced for that same caller.

Budget
------
The cache is a bytes-budgeted LRU: ``budget_bytes`` caps the sum of entry
payload sizes, evicting least-recently-used entries on insert.  An entry
larger than the whole budget is refused (counted as an eviction of
itself).  All mutation is under one lock; probe/insert are thread-safe.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["ResponseCache", "response_key"]


def response_key(model: str, payload_kind: int, payload,
                 digest=None) -> bytes:
    """Content key of one unary request; QoS fields do not participate.

    ``payload`` is the request's tensor (any ndarray) or its text payload
    (str).  The digest covers the model name, payload kind, dtype/shape,
    and raw bytes, each length-prefixed so distinct field splits can never
    collide structurally.
    """
    h = hashlib.sha256() if digest is None else digest()
    name = model.encode("utf-8", "surrogatepass")
    h.update(len(name).to_bytes(4, "big"))
    h.update(name)
    h.update(bytes([payload_kind & 0xFF]))
    if isinstance(payload, (str, bytes)):
        data = payload.encode("utf-8") if isinstance(payload, str) else payload
        h.update(b"text")
        h.update(len(data).to_bytes(8, "big"))
        h.update(data)
    else:
        arr = np.ascontiguousarray(payload)
        meta = f"{arr.dtype.str}:{arr.shape}".encode()
        h.update(b"tensor")
        h.update(len(meta).to_bytes(4, "big"))
        h.update(meta)
        h.update(len(arr.tobytes()).to_bytes(8, "big"))
        h.update(arr.tobytes())
    return h.digest()


class _Entry:
    """One cached response payload plus the metadata that verifies it."""

    __slots__ = ("model", "payload_kind", "nbytes", "tensor", "text",
                 "response_kind", "response_payload_kind")

    def __init__(self, model: str, payload_kind: int, nbytes: int,
                 tensor: Optional[np.ndarray], text: Optional[str],
                 response_kind: int, response_payload_kind: int):
        self.model = model
        self.payload_kind = payload_kind
        self.nbytes = nbytes
        self.tensor = tensor
        self.text = text
        #: MessageType value of the cached response frame
        self.response_kind = response_kind
        #: payload_kind the response frame declared (app answers carry one)
        self.response_payload_kind = response_payload_kind


class ResponseCache:
    """Bytes-budgeted LRU of response payloads, keyed by content digest.

    A probe verifies the entry's retained metadata (model, payload kind)
    against the caller's before serving it, so a digest collision across
    models degrades to a counted miss instead of a cross-model answer.
    """

    def __init__(self, budget_bytes: int):
        if budget_bytes < 1:
            raise ValueError(
                f"budget_bytes must be >= 1, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        self._lock = threading.Lock()
        self._lru: "OrderedDict[bytes, _Entry]" = OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.collisions = 0

    # ------------------------------------------------------------- probing
    def get(self, key: bytes, model: str,
            payload_kind: int) -> Optional[_Entry]:
        """The entry for ``key``, or ``None``; counts the outcome."""
        with self._lock:
            entry = self._lru.get(key)
            if entry is not None:
                if (entry.model != model
                        or entry.payload_kind != payload_kind):
                    # same digest, different identity: a structural
                    # collision — refuse it rather than cross-serve
                    self.collisions += 1
                    self.misses += 1
                    return None
                self._lru.move_to_end(key)
                self.hits += 1
                return entry
            self.misses += 1
            return None

    def put(self, key: bytes, model: str, payload_kind: int,
            tensor: Optional[np.ndarray] = None, text: Optional[str] = None,
            response_kind: int = 0, response_payload_kind: int = 0) -> int:
        """Insert one response payload, evicting LRU entries past budget.

        Returns the number of entries evicted (including a refused insert
        counted against itself), so callers can mirror the eviction count
        into their own metrics.
        """
        nbytes = 0
        if tensor is not None:
            tensor = np.array(tensor, dtype=np.float32)  # owned copy
            tensor.flags.writeable = False
            nbytes += tensor.nbytes
        if text is not None:
            nbytes += len(text.encode("utf-8"))
        entry = _Entry(model, payload_kind, nbytes, tensor, text,
                       response_kind, response_payload_kind)
        with self._lock:
            if nbytes > self.budget_bytes:
                self.evictions += 1  # refused: larger than the whole budget
                return 1
            old = self._lru.pop(key, None)
            if old is not None:
                self.bytes -= old.nbytes
            self._lru[key] = entry
            self.bytes += nbytes
            evicted_now = 0
            while self.bytes > self.budget_bytes and self._lru:
                _, evicted = self._lru.popitem(last=False)
                self.bytes -= evicted.nbytes
                self.evictions += 1
                evicted_now += 1
            return evicted_now

    # ----------------------------------------------------------- reporting
    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "collisions": self.collisions,
                    "entries": len(self._lru), "bytes": self.bytes}
