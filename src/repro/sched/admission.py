"""Gateway-side admission control: shed at the door, not in the queue.

When predicted queue wait already exceeds a request's deadline the kindest
answer is an immediate, typed refusal — the client learns in microseconds
what queueing would have told it only after the deadline had passed, and
the fleet spends no forward pass on a dead request.  The predictor is
deliberately simple (outstanding in-flight requests at the gateway times
the measured batch-1 service estimate, i.e. an M/M/1-flavored wait bound
scaled by ``shed_margin``): admission control has to be cheap enough to
run on every request, and a pessimistic linear bound sheds exactly when
sustained overload makes the queue grow without bound, which is the case
that matters.

Per-tenant token buckets bound any one tenant's admitted rate regardless
of deadline, so a single aggressive client cannot convert fleet capacity
into everyone else's deadline misses.  Both rejection flavors surface as
OVERLOADED frames carrying a ``retry_after_ms`` hint — backpressure the
client can act on.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .latency import LatencyModel

__all__ = ["QosConfig", "TokenBucket", "Rejection", "AdmissionController"]


@dataclass(frozen=True)
class QosConfig:
    """Gateway QoS knobs (the gateway is QoS-off unless one is supplied).

    ``tenant_qps`` of 0 disables per-tenant throttling; ``hedge_ms`` of 0
    disables hedged requests.  ``shed_margin`` scales the predicted-wait
    bound — above 1.0 sheds earlier (more conservative SLOs), below 1.0
    later.  ``hedge_ms`` of -1.0 means "derive from the latency curve"
    (hedge once the request has waited past ~2x the expected service time).
    """

    admission: bool = True
    tenant_qps: float = 0.0
    tenant_burst: float = 8.0
    hedge_ms: float = 0.0
    shed_margin: float = 1.0

    def __post_init__(self):
        if self.hedge_ms < 0 and self.hedge_ms != -1.0:
            raise ValueError(
                f"hedge_ms must be >= 0 (or -1 to derive), got {self.hedge_ms}")
        if self.tenant_qps < 0:
            raise ValueError(f"tenant_qps must be >= 0, got {self.tenant_qps}")
        if self.tenant_burst <= 0:
            raise ValueError(
                f"tenant_burst must be > 0, got {self.tenant_burst}")
        if self.shed_margin <= 0:
            raise ValueError(
                f"shed_margin must be > 0, got {self.shed_margin}")


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be > 0, got {rate}, {burst}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_take(self, n: float = 1.0) -> bool:
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst,
                               self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def retry_after_s(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will have accrued (0 if already there)."""
        with self._lock:
            now = self._clock()
            tokens = min(self.burst,
                         self._tokens + (now - self._stamp) * self.rate)
            return max(0.0, (n - tokens) / self.rate)


@dataclass(frozen=True)
class Rejection:
    """Why a request was refused at the door, and when to come back."""

    reason: str  # "tenant_throttle" | "predicted_late"
    message: str
    retry_after_ms: float


class AdmissionController:
    """Per-request admit/shed decision for the gateway."""

    def __init__(self, config: QosConfig, latency: LatencyModel,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config
        self.latency = latency
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def _bucket_for(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.config.tenant_qps, self.config.tenant_burst,
                    self._clock)
            return bucket

    def predicted_wait_s(self, model: str, outstanding: int) -> float:
        """Pessimistic queue-wait bound: serial drain of in-flight work."""
        est = self.latency.estimate_s(model, 1)
        return outstanding * est * self.config.shed_margin

    def admit(self, model: str, deadline_s: Optional[float], tenant: str,
              outstanding: int) -> Optional[Rejection]:
        """``None`` to admit, a :class:`Rejection` to shed.

        ``deadline_s`` is the absolute monotonic deadline (``None`` = no
        deadline — such requests are never shed for lateness, only
        throttled).  ``outstanding`` is the gateway's count of in-flight
        requests across backends.
        """
        if tenant and self.config.tenant_qps > 0:
            bucket = self._bucket_for(tenant)
            if not bucket.try_take():
                after_s = bucket.retry_after_s()
                return Rejection(
                    reason="tenant_throttle",
                    message=(f"tenant {tenant!r} over rate "
                             f"({self.config.tenant_qps:g} qps)"),
                    retry_after_ms=after_s * 1e3)
        if deadline_s is not None:
            now = self._clock()
            wait = self.predicted_wait_s(model, outstanding)
            service = self.latency.estimate_s(model, 1)
            if now + wait + service > deadline_s:
                return Rejection(
                    reason="predicted_late",
                    message=(f"predicted wait {wait * 1e3:.1f} ms exceeds "
                             f"deadline budget "
                             f"{max(0.0, (deadline_s - now)) * 1e3:.1f} ms "
                             f"for {model!r}"),
                    retry_after_ms=wait * 1e3)
        return None
