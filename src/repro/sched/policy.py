"""Scheduling policies: how much to coalesce and how long to wait.

A :class:`SchedPolicy` is consulted by :class:`repro.sched.queue.EdfQueue`
each time a worker assembles a batch.  The queue supplies the observable
state — queue depth in rows, the tightest deadline among waiting requests,
the measured latency curve, and how many models currently have work — and
the policy answers with a :class:`Decision`: the target batch size and the
maximum extra time to wait for more arrivals.  Mechanism (ordering, expiry,
condition-variable waits) stays in the queue; policy stays here, so new
policies are a single small class.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

__all__ = ["Decision", "SchedPolicy", "FixedSched", "AdaptiveSched", "make_policy"]

#: est_s(rows) -> predicted batch service seconds (0.0 = unknown)
Estimator = Callable[[int], float]


@dataclass(frozen=True)
class Decision:
    """Dispatch once ``rows`` are buffered or ``wait_s`` has elapsed."""

    rows: int
    wait_s: float


class SchedPolicy:
    """Interface: pure decision function over queue state."""

    name = "base"

    def plan(self, *, now: float, depth_rows: int, min_deadline_s: float,
             max_batch: int, timeout_s: float, est_s: Estimator,
             active_models: int) -> Decision:
        """Pick a target batch and coalescing window.

        ``min_deadline_s`` is the earliest absolute deadline among queued
        requests (``math.inf`` when none carries one); ``timeout_s`` is the
        configured fixed-policy window, which policies treat as the ceiling
        on added latency.
        """
        raise NotImplementedError


class FixedSched(SchedPolicy):
    """The paper's offline policy inside the EDF machinery.

    Keeps the fixed target batch and window, but requests are still served
    earliest-deadline-first within a batch and expired requests are still
    rejected before forward — useful as the control arm when ablating the
    adaptive policy.
    """

    name = "fixed"

    def plan(self, *, now, depth_rows, min_deadline_s, max_batch, timeout_s,
             est_s, active_models) -> Decision:
        return Decision(rows=max_batch, wait_s=timeout_s)


class AdaptiveSched(SchedPolicy):
    """Deadline-driven batch sizing and windowing.

    Three rules, in priority order:

    1. A full batch is already buffered → dispatch immediately.
    2. Several models have queued work and this queue is shallow
       (``depth_rows <= co_sched_depth``) → dispatch immediately with what
       is buffered, so the executor (or proc pool) interleaves models
       instead of one model's coalescing window starving the others.
    3. Otherwise pick the largest batch b (halving from ``max_batch``)
       whose predicted completion ``now + est(b)`` still meets the tightest
       queued deadline, then wait at most ``headroom_frac`` of the
       remaining slack (never more than the configured window) for more
       arrivals.  No deadlines queued → fixed behavior.

    With an empty latency curve (cold start) ``est`` is 0.0 and the policy
    degrades to the fixed policy plus expiry — it never rejects or shrinks
    batches on data it does not have.
    """

    name = "adaptive"

    def __init__(self, co_sched_depth: int = 2, headroom_frac: float = 0.5):
        if co_sched_depth < 0:
            raise ValueError(f"co_sched_depth must be >= 0, got {co_sched_depth}")
        if not 0.0 <= headroom_frac <= 1.0:
            raise ValueError(
                f"headroom_frac must be in [0, 1], got {headroom_frac}")
        self.co_sched_depth = co_sched_depth
        self.headroom_frac = headroom_frac

    def plan(self, *, now, depth_rows, min_deadline_s, max_batch, timeout_s,
             est_s, active_models) -> Decision:
        if depth_rows >= max_batch:
            return Decision(rows=max_batch, wait_s=0.0)
        if active_models > 1 and depth_rows <= self.co_sched_depth:
            return Decision(rows=max(depth_rows, 1), wait_s=0.0)
        if not math.isfinite(min_deadline_s):
            return Decision(rows=max_batch, wait_s=timeout_s)
        rows = max_batch
        while rows > 1:
            est = est_s(rows)
            if est and now + est > min_deadline_s:
                rows //= 2
            else:
                break
        headroom = min_deadline_s - now - est_s(rows)
        wait = min(max(headroom * self.headroom_frac, 0.0), timeout_s)
        return Decision(rows=rows, wait_s=wait)


def make_policy(spec) -> SchedPolicy:
    """Resolve a policy spec: an instance passes through, a name constructs.

    Accepts ``"fixed"`` / ``"adaptive"`` (CLI and launcher convenience) or
    any :class:`SchedPolicy` instance.
    """
    if isinstance(spec, SchedPolicy):
        return spec
    if spec == "fixed":
        return FixedSched()
    if spec == "adaptive":
        return AdaptiveSched()
    raise ValueError(f"unknown scheduling policy {spec!r} "
                     f"(expected 'fixed', 'adaptive', or a SchedPolicy)")
