"""Priority + earliest-deadline-first request queue for the batch workers.

Replaces the FIFO in :class:`repro.core.batching.BatchingExecutor` when a
scheduling policy is armed.  Items need three attributes: ``inputs`` (rows
= ``len(inputs)``; raw-payload requests whose row count is only known
after server-side preprocess carry ``inputs=None`` plus a ``row_hint``),
``deadline_s`` (absolute monotonic deadline,
``math.inf`` = none), and ``priority`` (higher scheduled first).  Ordering
is (priority desc, deadline asc, arrival asc) — within a priority class the
request closest to missing its SLO runs first, and priority classes never
interleave: a queued high-priority request always dispatches before any
lower one, which is the point (and the starvation caveat) of strict
priority scheduling.

:meth:`collect` is the worker-facing call: block for work, consult the
policy for a target batch and coalescing window, then hand back the batch
*and* the requests whose deadline already passed (or provably cannot be met
even by an immediate batch-of-one), so the executor can reject those with a
typed DEADLINE_EXCEEDED before spending a forward pass on them.
"""

from __future__ import annotations

import heapq
import threading
from typing import Callable, List, Tuple

from .policy import SchedPolicy

__all__ = ["DeadlineExceededError", "EdfQueue", "item_rows"]


def item_rows(item) -> int:
    """Rows one queued request contributes to a batch.

    Tensor requests carry their rows as ``len(inputs)``; raw-payload
    requests are preprocessed server-side *after* assembly, so their row
    count here is the submitter's ``row_hint`` (exact for image payloads,
    an estimate for ragged ones like audio).
    """
    inputs = getattr(item, "inputs", None)
    if inputs is not None:
        return len(inputs)
    return max(1, int(getattr(item, "row_hint", 1)))


class DeadlineExceededError(RuntimeError):
    """A request expired in queue; it was rejected before forward."""

    def __init__(self, model: str, late_s: float = 0.0):
        self.model = model
        self.late_s = late_s
        super().__init__(
            f"deadline exceeded for {model!r}: request expired in queue "
            f"({late_s * 1e3:.3f} ms past deadline)")


class EdfQueue:
    """Thread-safe EDF/priority queue with policy-driven batch assembly."""

    def __init__(self):
        self._heap: List[Tuple[int, float, int, object]] = []
        self._rows = 0
        self._seq = 0
        self._closed = False
        self._cond = threading.Condition()

    # ------------------------------------------------------------- produce
    def put(self, item) -> None:
        """Enqueue one request; ``put(None)`` closes (executor shutdown)."""
        with self._cond:
            if item is None:
                self._closed = True
                self._cond.notify_all()
                return
            entry = (-item.priority, item.deadline_s, self._seq, item)
            self._seq += 1
            heapq.heappush(self._heap, entry)
            self._rows += item_rows(item)
            self._cond.notify_all()

    @property
    def finished(self) -> bool:
        """Closed and fully drained — the worker may exit."""
        with self._cond:
            return self._closed and not self._heap

    def depth_rows(self) -> int:
        with self._cond:
            return self._rows

    def _min_deadline(self) -> float:
        # queues are bounded by max_batch-scale depths; a scan is cheaper
        # than maintaining a second heap keyed by deadline alone
        return min(entry[1] for entry in self._heap)

    # ------------------------------------------------------------- consume
    def collect(self, policy: SchedPolicy, *, clock: Callable[[], float],
                est_s: Callable[[int], float], max_batch: int,
                timeout_s: float,
                active_models: Callable[[], int] = lambda: 1):
        """Assemble one batch: returns ``(batch, expired)``.

        Blocks until at least one request is queued (or the queue closes),
        asks ``policy`` for a :class:`~repro.sched.policy.Decision`, waits
        out the coalescing window, then pops in EDF order.  Requests whose
        deadline has passed — or that cannot finish even as an immediate
        batch of one, per the latency curve — come back in ``expired``
        instead of the batch.  Both lists empty means closed-and-drained.
        """
        with self._cond:
            while not self._heap and not self._closed:
                self._cond.wait()
            if not self._heap:
                return [], []
            now = clock()
            decision = policy.plan(
                now=now, depth_rows=self._rows,
                min_deadline_s=self._min_deadline(), max_batch=max_batch,
                timeout_s=timeout_s, est_s=est_s,
                active_models=active_models())
            target = max(decision.rows, 1)
            wait_deadline = now + decision.wait_s
            while self._rows < target and not self._closed:
                remaining = wait_deadline - clock()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            batch: List[object] = []
            expired: List[object] = []
            now = clock()
            est1 = est_s(1)
            rows = 0
            while self._heap and rows < target:
                item = heapq.heappop(self._heap)[-1]
                self._rows -= item_rows(item)
                if item.deadline_s <= now or (est1 and now + est1 > item.deadline_s):
                    expired.append(item)
                    continue
                batch.append(item)
                rows += item_rows(item)
            return batch, expired
