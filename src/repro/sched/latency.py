"""Measured per-model latency curves for scheduling decisions.

The adaptive policy needs to answer one question quickly and without
foresight: *how long would a batch of b rows of model m take right now?*
This model keeps an exponentially weighted moving average of executed-batch
service time per (model, power-of-two batch bucket) — the same bucketing
the plan cache uses, so every bucket the executor can actually run
accumulates its own estimate.  Buckets never observed are interpolated
linearly in row count from the nearest known bucket, which matches the
affine cost shape of a batched GEMM (fixed overhead + per-row work) well
enough for windowing decisions.

Estimates start from the served latency Histogram when one exists (the
``*_request_latency_seconds`` family, PR 2) and are refined by every batch
the executor runs, so a freshly armed scheduler is never flying blind on a
warm service.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

__all__ = ["LatencyModel"]


def _bucket(rows: int) -> int:
    """Power-of-two bucket for a batch of ``rows`` (same as the plan cache)."""
    return 1 << max(0, rows - 1).bit_length()


class LatencyModel:
    """EWMA of batch service seconds per (model, pow2-batch bucket)."""

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._est: Dict[Tuple[str, int], float] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- updates
    def observe(self, model: str, rows: int, seconds: float) -> None:
        """Fold one executed batch into the curve."""
        if rows < 1 or seconds < 0.0:
            return
        key = (model, _bucket(rows))
        with self._lock:
            prev = self._est.get(key)
            if prev is None:
                self._est[key] = seconds
            else:
                self._est[key] = prev + self.alpha * (seconds - prev)

    def seed(self, model: str, rows: int, seconds: float) -> None:
        """Install an initial estimate; a no-op if the bucket has data."""
        if rows < 1 or seconds <= 0.0:
            return
        key = (model, _bucket(rows))
        with self._lock:
            self._est.setdefault(key, seconds)

    def seed_from_metrics(self, registry,
                          family: str = "djinn_request_latency_seconds") -> int:
        """Seed batch-1 estimates from a served latency Histogram family.

        Returns the number of models seeded.  Request latency includes
        queueing and serialization on top of the forward, so the median is
        used as a (conservative) batch-1 service estimate — the EWMA pulls
        it onto the true curve within a few observed batches.
        """
        fam = registry.get(family)
        if fam is None:
            return 0
        seeded = 0
        for labels, hist in fam.children():
            if hist.count == 0:
                continue
            model = labels[0] if labels else ""
            if model:
                self.seed(model, 1, hist.percentile(50))
                seeded += 1
        return seeded

    # ------------------------------------------------------------- queries
    def estimate_s(self, model: str, rows: int) -> float:
        """Predicted service seconds for a batch of ``rows`` (0.0 = unknown).

        Exact bucket when observed; otherwise the nearest known bucket for
        the model, scaled linearly in row count.
        """
        if rows < 1:
            rows = 1
        target = _bucket(rows)
        with self._lock:
            exact = self._est.get((model, target))
            if exact is not None:
                return exact
            nearest: Optional[Tuple[int, float]] = None
            for (m, bucket), est in self._est.items():
                if m != model:
                    continue
                if nearest is None or abs(bucket - target) < abs(nearest[0] - target):
                    nearest = (bucket, est)
        if nearest is None:
            return 0.0
        bucket, est = nearest
        return est * (target / bucket) if target > bucket else est

    def known_buckets(self, model: str) -> Dict[int, float]:
        """The observed/seeded curve for one model (bucket -> seconds)."""
        with self._lock:
            return {bucket: est for (m, bucket), est in self._est.items()
                    if m == model}
