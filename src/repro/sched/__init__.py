"""SLO-aware scheduling: deadline-driven batching, priorities, admission.

The paper fixes its batching policy offline (§5.1 sweeps batch size by
hand); a service fielding millions of queries has to pick the batching /
multi-tenancy trade-off *online* from load and deadlines.  This package is
that decision layer, factored so mechanism and policy stay separate:

- :class:`LatencyModel` — the measured per-model latency curve (EWMA per
  power-of-two batch bucket, seeded from served Histogram families,
  refined by every executed batch).
- :class:`EdfQueue` — a priority-then-earliest-deadline-first queue that
  replaces the FIFO in :class:`repro.core.batching.BatchingExecutor` when a
  scheduling policy is armed; expired requests are rejected with a typed
  DEADLINE_EXCEEDED *before* the forward pass.
- :class:`SchedPolicy` and its implementations (:class:`FixedSched`,
  :class:`AdaptiveSched`) — how many rows to wait for and how long, given
  queue depth, the tightest deadline, and the latency curve.
- :class:`AdmissionController` / :class:`TokenBucket` / :class:`QosConfig`
  — gateway-side load shedding and per-tenant rate limiting; requests that
  cannot meet their deadline are refused at the door (OVERLOADED) instead
  of queueing to die.
"""

from .admission import AdmissionController, QosConfig, Rejection, TokenBucket
from .latency import LatencyModel
from .policy import AdaptiveSched, Decision, FixedSched, SchedPolicy, make_policy
from .queue import DeadlineExceededError, EdfQueue, item_rows

__all__ = [
    "AdmissionController",
    "AdaptiveSched",
    "Decision",
    "DeadlineExceededError",
    "EdfQueue",
    "FixedSched",
    "LatencyModel",
    "QosConfig",
    "Rejection",
    "SchedPolicy",
    "TokenBucket",
    "item_rows",
    "make_policy",
]
