"""Per-layer profiling: the Fig-4-style forward-pass breakdown.

The paper attributes each query's GPU time to individual network layers
(nvprof timelines, Fig. 4) and draws its batching conclusions from which
layers dominate.  :class:`LayerTimer` is the hook that produces the same
breakdown here: pass one to :meth:`repro.nn.Net.forward` (``timer=``) and it
records a wall-clock interval per layer.  The hook is opt-in — ``forward``
without a timer runs the exact pre-existing loop, so disabled profiling
costs nothing.

The planned execution path (:class:`repro.nn.engine.ExecutionPlan`) drives
the same ``begin``/``end`` hook for every compiled step — aliased layers
included — so per-layer profiles and the derived ``layer.*`` trace spans
keep the exact taxonomy of the legacy loop whichever path served a batch.
"""

from __future__ import annotations

from time import monotonic
from typing import Callable, List, NamedTuple, Optional

__all__ = ["LayerRecord", "LayerTimer"]


class LayerRecord(NamedTuple):
    """One layer's slice of a forward pass."""

    name: str
    type_name: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class LayerTimer:
    """Times each layer of one (or more) forward passes.

    A timer is cheap and single-threaded by design: make one per profiled
    forward pass.  ``begin``/``end`` are the :meth:`Net.forward` hook
    surface; everything else is reporting.
    """

    def __init__(self, clock: Callable[[], float] = monotonic):
        self.clock = clock
        self.records: List[LayerRecord] = []
        self._open: Optional[tuple] = None

    # ------------------------------------------------------------- hook API
    def begin(self, layer) -> None:
        self._open = (layer.name, layer.type_name, self.clock())

    def end(self, layer) -> None:
        if self._open is None or self._open[0] != layer.name:
            raise RuntimeError(f"LayerTimer.end({layer.name!r}) without begin")
        name, type_name, start_s = self._open
        self._open = None
        self.records.append(LayerRecord(name, type_name, start_s, self.clock()))

    # ------------------------------------------------------------ reporting
    def total_s(self) -> float:
        return sum(r.duration_s for r in self.records)

    def breakdown(self) -> List[tuple]:
        """``(layer, type, seconds, fraction_of_total)`` per recorded layer."""
        total = self.total_s()
        return [
            (r.name, r.type_name, r.duration_s,
             (r.duration_s / total) if total > 0 else 0.0)
            for r in self.records
        ]

    def format(self) -> str:
        """Human-readable per-layer table (the Fig-4 shape, in text)."""
        header = f"{'layer':24s} {'type':18s} {'ms':>10s} {'share':>7s}"
        lines = [header, "-" * len(header)]
        for name, type_name, seconds, frac in self.breakdown():
            lines.append(
                f"{name:24s} {type_name:18s} {seconds * 1e3:>10.3f} {frac:>6.1%}")
        lines.append(f"{'total':24s} {'':18s} {self.total_s() * 1e3:>10.3f}")
        return "\n".join(lines)

    def emit_spans(self, tracer, trace_id: int, parent_id: int) -> None:
        """Replay the recorded layers as ``layer.<name>`` spans of a trace."""
        for record in self.records:
            tracer.add_span(
                f"layer.{record.name}", record.start_s, record.end_s,
                trace_id, parent_id, category="layer",
                layer_type=record.type_name,
            )

    def reset(self) -> None:
        self.records.clear()
        self._open = None

    def __len__(self) -> int:
        return len(self.records)
