"""SLO burn-rate monitoring over per-class attainment counts.

DjiNN §6 argues DNN-as-a-service lives or dies on tail latency at scale —
so a WSC operator does not watch *attainment* (a scalar that averages away
incidents), they watch **error-budget burn rate**: with an objective of,
say, 99 % of requests meeting their deadline, the error budget is 1 %, and

    burn = miss_rate / (1 − objective)

A burn of 1.0 spends exactly the budget; 10.0 exhausts a month's budget in
three days.  Following the multi-window pattern, an alert fires only when
**every** configured window (default 5 m *and* 1 h) burns above the
threshold: the long window proves the problem is sustained, the short one
proves it is still happening — so the alert is neither noisy nor stale.

:class:`BurnRateMonitor` is fed either inline (``record(key, attained)``
on each request, as the backend/gateway serve paths do) or from polled
cumulative counters (``record_totals``, as ``djinn top`` does against
``*_slo_requests_total`` dumps).  State transitions emit structured
``event=slo.burn`` lines via :func:`repro.obs.trace.log_event`.
"""

from __future__ import annotations

import threading
from collections import deque
from time import monotonic
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .trace import log_event

__all__ = ["BurnRateMonitor", "DEFAULT_BURN_WINDOWS_S"]

#: Multi-window defaults: 5 minutes (still happening) and 1 hour (sustained).
DEFAULT_BURN_WINDOWS_S: Tuple[float, ...] = (300.0, 3600.0)


class BurnRateMonitor:
    """Tracks per-key SLO attainment and flags sustained budget burn.

    Parameters
    ----------
    objective:
        Target attainment fraction (0.99 → a 1 % error budget).
    windows_s:
        Look-back windows; an alert requires *all* of them over threshold.
    threshold:
        Burn-rate multiple that trips the alert (1.0 = budget spent exactly
        on schedule).
    clock:
        Injectable monotonic time source (tests drive time by hand).
    bucket_s:
        Time-bucket granularity; defaults to 1/30 of the shortest window.
    logger:
        Destination for ``event=slo.burn`` transition lines (optional).
    """

    def __init__(self, objective: float = 0.99,
                 windows_s: Sequence[float] = DEFAULT_BURN_WINDOWS_S,
                 threshold: float = 2.0,
                 clock: Callable[[], float] = monotonic,
                 bucket_s: Optional[float] = None,
                 logger=None):
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        if not windows_s or any(w <= 0 for w in windows_s):
            raise ValueError(f"windows must be positive, got {windows_s}")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        self.objective = float(objective)
        self.windows_s = tuple(sorted(float(w) for w in windows_s))
        self.threshold = float(threshold)
        self.clock = clock
        self.bucket_s = float(bucket_s) if bucket_s else self.windows_s[0] / 30.0
        if self.bucket_s <= 0:
            raise ValueError(f"bucket_s must be > 0, got {self.bucket_s}")
        self.logger = logger
        self._lock = threading.Lock()
        #: key → deque of [bucket_start_s, total, missed]
        self._buckets: Dict[str, deque] = {}
        #: key → (last_total, last_missed) cumulative baselines (record_totals)
        self._baselines: Dict[str, Tuple[float, float]] = {}
        #: key → currently firing?
        self._firing: Dict[str, bool] = {}

    # --------------------------------------------------------------- feeding
    def record(self, key: str, attained: bool, count: int = 1) -> None:
        """Inline feed: ``count`` requests for ``key``, met or missed."""
        self._add(key, total=count, missed=0 if attained else count)

    def record_totals(self, key: str, attained_total: float,
                      total: float) -> None:
        """Polled feed from cumulative counters (fleet dumps).

        Deltas against the previous poll are bucketed at the poll time; a
        counter going backwards (process restart) resets the baseline.
        """
        missed_total = max(0.0, total - attained_total)
        with self._lock:
            last_total, last_missed = self._baselines.get(key, (0.0, 0.0))
            if total < last_total or missed_total < last_missed:
                last_total, last_missed = 0.0, 0.0  # counter reset
            self._baselines[key] = (total, missed_total)
        delta_total = total - last_total
        delta_missed = missed_total - last_missed
        if delta_total > 0:
            self._add(key, total=delta_total, missed=delta_missed)

    def _add(self, key: str, total: float, missed: float) -> None:
        now = self.clock()
        bucket_start = now - (now % self.bucket_s)
        with self._lock:
            buckets = self._buckets.get(key)
            if buckets is None:
                buckets = self._buckets[key] = deque()
            if buckets and buckets[-1][0] == bucket_start:
                buckets[-1][1] += total
                buckets[-1][2] += missed
            else:
                buckets.append([bucket_start, total, missed])
            horizon = now - self.windows_s[-1] - self.bucket_s
            while buckets and buckets[0][0] < horizon:
                buckets.popleft()

    # --------------------------------------------------------------- reading
    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._buckets)

    def _window_counts(self, key: str, window_s: float) -> Tuple[float, float]:
        cutoff = self.clock() - window_s
        with self._lock:
            buckets = self._buckets.get(key, ())
            total = sum(b[1] for b in buckets if b[0] >= cutoff)
            missed = sum(b[2] for b in buckets if b[0] >= cutoff)
        return total, missed

    def burn_rate(self, key: str, window_s: float) -> float:
        """Error-budget burn multiple for ``key`` over the last ``window_s``.

        0.0 when no requests were seen in the window.
        """
        total, missed = self._window_counts(key, window_s)
        if total <= 0:
            return 0.0
        return (missed / total) / (1.0 - self.objective)

    def snapshot(self, key: str) -> Dict[str, float]:
        """``{"burn_300s": ..., "burn_3600s": ...}`` plus firing state."""
        out = {f"burn_{int(w)}s": self.burn_rate(key, w) for w in self.windows_s}
        out["firing"] = 1.0 if self._firing.get(key) else 0.0
        return out

    # -------------------------------------------------------------- alerting
    def check(self) -> List[dict]:
        """Evaluate every key; emit and return state-transition events.

        A key *fires* when all windows burn ≥ threshold (with traffic in the
        shortest window); it *resolves* when the shortest window drops back
        under threshold.  Each transition yields one event dict and one
        structured ``event=slo.burn`` log line.
        """
        events: List[dict] = []
        for key in self.keys():
            burns = {w: self.burn_rate(key, w) for w in self.windows_s}
            short_total, _ = self._window_counts(key, self.windows_s[0])
            firing_now = (short_total > 0
                          and all(b >= self.threshold for b in burns.values()))
            was_firing = self._firing.get(key, False)
            if firing_now and not was_firing:
                state = "firing"
            elif was_firing and burns[self.windows_s[0]] < self.threshold:
                state = "resolved"
            else:
                continue
            self._firing[key] = state == "firing"
            event = {
                "key": key,
                "state": state,
                "objective": self.objective,
                "threshold": self.threshold,
            }
            event.update({f"burn_{int(w)}s": round(b, 3)
                          for w, b in burns.items()})
            events.append(event)
            if self.logger is not None:
                log_event(self.logger, "slo.burn", **event)
        return events
