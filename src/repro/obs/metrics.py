"""Metrics: thread-safe Counter/Gauge/Histogram families with labels.

The paper's evaluation is built on counting things — queries served, where
each millisecond went (Figs 4–9) — so the serving stack needs a first-class
metrics substrate rather than ad-hoc dicts.  This module provides:

* a :class:`MetricsRegistry` holding named metric *families*; each family
  fans out to children keyed by label values (``family.labels(model="dig")``);
* :class:`Counter` (monotone), :class:`Gauge` (up/down), and
  :class:`Histogram` (fixed log-scale buckets plus an optional bounded
  window of raw samples for exact percentiles);
* Prometheus-style text exposition (:meth:`MetricsRegistry.expose`), a
  JSON-able structural dump (:meth:`MetricsRegistry.dump`) that travels on
  the wire in ``METRICS_RESPONSE`` frames, :func:`merge_dumps` so a gateway
  can aggregate a fleet's registries, and :func:`parse_exposition` so tests
  and CI can assert the text format stays well-formed.

Everything is safe to call from many worker threads; the hot path
(``child.inc()`` / ``child.observe()``) takes one small lock.
"""

from __future__ import annotations

import heapq
import json
import math
import re
import struct
import threading
from bisect import bisect_left
from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "default_registry",
    "render_exposition",
    "parse_exposition",
    "merge_dumps",
    "merge_exemplars",
    "percentile_from_counts",
    "write_dump_region",
    "read_dump_region",
    "DUMP_REGION_HEADER",
]

#: Fixed log-scale latency buckets (seconds): 100 µs doubling up to ~105 s.
#: Every latency histogram in the stack shares these bounds so fleet-level
#: merges are exact (bucket-wise sums, no resampling).
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = tuple(
    1e-4 * (2.0 ** i) for i in range(21)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str, kind: str = "metric") -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid {kind} name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else ("%g" % bound)


# --------------------------------------------------------------------- children
class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, in-flight requests)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``window`` > 0 additionally keeps that many recent raw observations so
    :meth:`percentile` is exact over the window (what `ServiceStats` needs
    for p50/p95/p99); with ``window=0`` percentiles fall back to linear
    interpolation within the matching bucket.

    ``exemplars`` > 0 keeps that many **tail exemplars**: the largest
    observations seen so far, each with an opaque label (a trace ID in the
    serving stack).  A latency histogram then *names* its outliers — the
    ``djinn slow`` CLI resolves those trace IDs back to full span trees and
    cost ledgers, which is how "what is my p99 doing" becomes answerable.
    """

    __slots__ = ("buckets", "_counts", "_lock", "_sum", "_count",
                 "_min", "_max", "_window", "_ex_cap", "_ex_heap", "_ex_seq")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
                 window: int = 0, exemplars: int = 0):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing, got {bounds}")
        if exemplars < 0:
            raise ValueError(f"exemplars must be >= 0, got {exemplars}")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._lock = threading.Lock()
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._window: Optional[deque] = deque(maxlen=window) if window else None
        self._ex_cap = int(exemplars)
        #: min-heap of (value, seq, label): the cap largest observations
        self._ex_heap: List[Tuple[float, int, str]] = []
        self._ex_seq = 0

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        """Record ``value``; ``exemplar`` labels it (e.g. a trace ID) so the
        slowest observations stay resolvable to their traces."""
        value = float(value)
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if self._window is not None:
                self._window.append(value)
            if self._ex_cap and exemplar is not None:
                entry = (value, self._ex_seq, str(exemplar))
                self._ex_seq += 1
                if len(self._ex_heap) < self._ex_cap:
                    heapq.heappush(self._ex_heap, entry)
                elif entry > self._ex_heap[0]:
                    heapq.heapreplace(self._ex_heap, entry)

    def exemplars(self) -> List[Tuple[float, str]]:
        """Retained tail exemplars as ``(value, label)``, slowest first."""
        with self._lock:
            entries = sorted(self._ex_heap, reverse=True)
        return [(value, label) for value, _seq, label in entries]

    # ------------------------------------------------------------- reading
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._count else 0.0

    def counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is the +Inf bucket."""
        with self._lock:
            return list(self._counts)

    def window_values(self) -> List[float]:
        with self._lock:
            return list(self._window) if self._window is not None else []

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100): exact over the raw window when kept,
        otherwise linearly interpolated within the matching bucket."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            if self._window:
                values = sorted(self._window)
                if len(values) == 1:
                    return values[0]
                rank = (q / 100.0) * (len(values) - 1)
                lo = int(rank)
                hi = min(lo + 1, len(values) - 1)
                frac = rank - lo
                return values[lo] * (1.0 - frac) + values[hi] * frac
            # bucket interpolation
            target = (q / 100.0) * self._count
            cumulative = 0
            for idx, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= target and bucket_count:
                    upper = (self.buckets[idx] if idx < len(self.buckets)
                             else self._max)
                    lower = self.buckets[idx - 1] if idx > 0 else 0.0
                    upper = min(upper, self._max)
                    lower = max(lower, self._min if idx == 0 else lower)
                    if upper <= lower:
                        return upper
                    frac = (target - (cumulative - bucket_count)) / bucket_count
                    return lower + (upper - lower) * min(1.0, max(0.0, frac))
            return self._max

    def merge_counts(self, counts: Sequence[int], total: int, total_sum: float,
                     minimum: float, maximum: float) -> None:
        """Fold another histogram's state (same bucket bounds) into this one."""
        if len(counts) != len(self._counts):
            raise ValueError(
                f"bucket count mismatch: {len(counts)} vs {len(self._counts)}")
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += int(c)
            self._count += int(total)
            self._sum += float(total_sum)
            if total:
                self._min = min(self._min, minimum)
                self._max = max(self._max, maximum)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


# --------------------------------------------------------------------- families
class MetricFamily:
    """One named metric with a fixed label schema, fanning out to children."""

    def __init__(self, name: str, kind: str, help: str = "",
                 labelnames: Sequence[str] = (), **child_kwargs):
        self.name = _check_name(name)
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._child_kwargs = child_kwargs
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labelvalues: str):
        """The child for this label combination (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = _KINDS[self.kind](**self._child_kwargs)
                self._children[key] = child
            return child

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return list(self._children.items())

    def clear(self) -> None:
        """Drop all children (e.g. between benchmark phases)."""
        with self._lock:
            self._children.clear()

    # convenience: a label-less family acts like its single child
    def _solo(self):
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} requires labels {self.labelnames}")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        self._solo().observe(value, exemplar=exemplar)


# --------------------------------------------------------------------- registry
class MetricsRegistry:
    """A named collection of metric families.

    Each server owns one registry (so replicas don't collide) and exposes it
    over the wire; a process-wide :func:`default_registry` exists for
    library code that has nowhere better to register.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _get_or_create(self, name: str, kind: str, help: str,
                       labelnames: Sequence[str], **child_kwargs) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind}")
                if family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{family.labelnames}, got {tuple(labelnames)}")
                return family
            family = MetricFamily(name, kind, help=help, labelnames=labelnames,
                                  **child_kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._get_or_create(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._get_or_create(name, "gauge", help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
                  window: int = 0, exemplars: int = 0) -> MetricFamily:
        return self._get_or_create(name, "histogram", help, labelnames,
                                   buckets=buckets, window=window,
                                   exemplars=exemplars)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    # ------------------------------------------------------------ exporting
    def dump(self) -> dict:
        """JSON-able structural snapshot (what METRICS_RESPONSE carries)."""
        metrics = {}
        for family in self.families():
            samples = []
            for key, child in sorted(family.children()):
                labels = dict(zip(family.labelnames, key))
                if family.kind == "histogram":
                    sample = {
                        "labels": labels,
                        "counts": child.counts(),
                        "sum": child.sum,
                        "count": child.count,
                        "min": child.min,
                        "max": child.max,
                    }
                    exemplar_list = child.exemplars()
                    if exemplar_list:
                        sample["exemplars"] = [[v, label]
                                               for v, label in exemplar_list]
                    samples.append(sample)
                else:
                    samples.append({"labels": labels, "value": child.value})
            entry = {
                "type": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "samples": samples,
            }
            if family.kind == "histogram":
                entry["buckets"] = [b for b in family._child_kwargs["buckets"]]
                cap = family._child_kwargs.get("exemplars", 0)
                if cap:
                    entry["exemplars_cap"] = cap
            metrics[family.name] = entry
        return {"metrics": metrics}

    def expose(self) -> str:
        """Prometheus-style text exposition of the whole registry."""
        return render_exposition(self.dump())


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (one per Python process)."""
    return _DEFAULT_REGISTRY


# ------------------------------------------------------------------- exposition
def _render_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(str(v))}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_exposition(dump: dict) -> str:
    """Render a registry dump (or merged dumps) as Prometheus text format."""
    lines: List[str] = []
    for name in sorted(dump.get("metrics", {})):
        entry = dump["metrics"][name]
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['type']}")
        for sample in entry["samples"]:
            labels = sample.get("labels", {})
            if entry["type"] == "histogram":
                bounds = list(entry.get("buckets", ())) + [math.inf]
                cumulative = 0
                for bound, count in zip(bounds, sample["counts"]):
                    cumulative += count
                    le = f'le="{_format_bound(bound)}"'
                    lines.append(
                        f"{name}_bucket{_render_labels(labels, le)} {cumulative}")
                lines.append(
                    f"{name}_sum{_render_labels(labels)} "
                    f"{_format_value(sample['sum'])}")
                lines.append(
                    f"{name}_count{_render_labels(labels)} {sample['count']}")
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_format_value(sample['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"          # metric name
    r"(?:\{(.*)\})?"                        # optional label block
    r" (-?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf)|\+Inf|NaN)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse Prometheus text exposition into ``{name: {labels: value}}``.

    Strict on purpose — this is the CI gate that keeps :func:`render_exposition`
    honest.  Raises :class:`ValueError` on any malformed line.
    """
    out: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            if parts[1] == "TYPE" and parts[3] not in ("counter", "gauge", "histogram"):
                raise ValueError(f"line {lineno}: unknown metric type {parts[3]!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name, label_block, value_text = match.groups()
        labels: List[Tuple[str, str]] = []
        if label_block:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(label_block):
                labels.append((pair.group(1), pair.group(2)))
                consumed = pair.end()
                if consumed < len(label_block) and label_block[consumed] == ",":
                    consumed += 1
            if consumed != len(label_block):
                raise ValueError(f"line {lineno}: malformed labels {label_block!r}")
        if value_text in ("+Inf", "Inf"):
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        elif value_text == "NaN":
            value = math.nan
        else:
            value = float(value_text)
        out.setdefault(name, {})[tuple(labels)] = value
    return out


# ------------------------------------------------------------------------ merge
def merge_exemplars(a: Sequence[Sequence], b: Sequence[Sequence],
                    cap: int) -> List[List]:
    """Merge two ``[value, label]`` exemplar lists, keeping the ``cap``
    largest values (ties broken by label for determinism)."""
    combined = [[float(v), str(label)] for v, label in list(a) + list(b)]
    combined.sort(key=lambda e: (-e[0], e[1]))
    return combined[:max(0, int(cap))]


def percentile_from_counts(bounds: Sequence[float], counts: Sequence[int],
                           q: float) -> float:
    """q-th percentile (0..100) from a histogram dump's bucket counts.

    Linear interpolation within the matching bucket — the same estimate a
    live :class:`Histogram` without a raw window would give, usable on
    merged fleet dumps where no raw samples exist (``djinn top``).
    ``counts`` is per-bucket (non-cumulative), last entry the +Inf bucket.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    counts = [int(c) for c in counts]
    total = sum(counts)
    if total == 0:
        return 0.0
    target = (q / 100.0) * total
    cumulative = 0
    for idx, bucket_count in enumerate(counts):
        cumulative += bucket_count
        if cumulative >= target and bucket_count:
            upper = bounds[idx] if idx < len(bounds) else bounds[-1] * 2.0
            lower = bounds[idx - 1] if idx > 0 else 0.0
            if upper <= lower:
                return upper
            frac = (target - (cumulative - bucket_count)) / bucket_count
            return lower + (upper - lower) * min(1.0, max(0.0, frac))
    return bounds[-1]


def merge_dumps(dumps: Iterable[dict]) -> dict:
    """Merge registry dumps into a fleet-level dump.

    Counters and gauges sum per label-set (a gauge sum reads as fleet total,
    e.g. total in-flight); histograms merge bucket-wise, which is exact
    because every latency histogram shares :data:`DEFAULT_LATENCY_BUCKETS_S`.
    Histograms with mismatched bucket bounds raise :class:`ValueError`.
    """
    merged: Dict[str, dict] = {}
    for dump in dumps:
        for name, entry in dump.get("metrics", {}).items():
            target = merged.get(name)
            if target is None:
                target = {
                    "type": entry["type"],
                    "help": entry.get("help", ""),
                    "labelnames": list(entry.get("labelnames", [])),
                    "samples": [],
                }
                if entry["type"] == "histogram":
                    target["buckets"] = list(entry.get("buckets", ()))
                    if entry.get("exemplars_cap"):
                        target["exemplars_cap"] = int(entry["exemplars_cap"])
                merged[name] = target
            elif target["type"] != entry["type"]:
                raise ValueError(
                    f"metric {name!r} has conflicting types "
                    f"{target['type']} vs {entry['type']}")
            elif (entry["type"] == "histogram"
                  and list(entry.get("buckets", ())) != target["buckets"]):
                raise ValueError(f"metric {name!r} has mismatched bucket bounds")
            if entry["type"] == "histogram" and entry.get("exemplars_cap"):
                target["exemplars_cap"] = max(
                    int(target.get("exemplars_cap", 0)),
                    int(entry["exemplars_cap"]))
            by_labels = {
                tuple(sorted(s.get("labels", {}).items())): s
                for s in target["samples"]
            }
            for sample in entry["samples"]:
                key = tuple(sorted(sample.get("labels", {}).items()))
                existing = by_labels.get(key)
                if existing is None:
                    copied = json.loads(json.dumps(sample))  # deep, JSON-safe
                    target["samples"].append(copied)
                    by_labels[key] = copied
                elif entry["type"] == "histogram":
                    existing["counts"] = [
                        a + b for a, b in zip(existing["counts"], sample["counts"])
                    ]
                    existing["sum"] += sample["sum"]
                    existing["count"] += sample["count"]
                    if sample["count"]:
                        existing["min"] = (min(existing["min"], sample["min"])
                                           if existing["count"] - sample["count"]
                                           else sample["min"])
                        existing["max"] = max(existing["max"], sample["max"])
                    if existing.get("exemplars") or sample.get("exemplars"):
                        cap = int(target.get("exemplars_cap", 0)) or max(
                            len(existing.get("exemplars", ())),
                            len(sample.get("exemplars", ())))
                        existing["exemplars"] = merge_exemplars(
                            existing.get("exemplars", ()),
                            sample.get("exemplars", ()), cap)
                else:
                    existing["value"] += sample["value"]
    for entry in merged.values():
        entry["samples"].sort(key=lambda s: tuple(sorted(s.get("labels", {}).items())))
    return {"metrics": merged}


# -------------------------------------------------------------- shm regions
#: Bytes reserved at the head of a dump region: u64 seqlock version,
#: u32 payload length, 4 bytes pad.
DUMP_REGION_HEADER = 16


def write_dump_region(buf, dump: dict) -> None:
    """Publish a registry dump into a shared-memory region (single writer).

    Seqlock protocol: bump the version to odd, write the JSON payload, bump
    to even.  A reader that observes an odd version or a version change
    mid-read retries, so torn reads are impossible without any cross-process
    lock.  Used by :mod:`repro.core.procpool` workers to export their
    per-process metrics for the parent's ``merge_dumps`` aggregation.
    """
    payload = json.dumps(dump, sort_keys=True).encode("utf-8")
    if len(payload) > len(buf) - DUMP_REGION_HEADER:
        raise ValueError(
            f"metrics dump of {len(payload)} bytes exceeds region capacity "
            f"{len(buf) - DUMP_REGION_HEADER}")
    version = struct.unpack_from("<Q", buf, 0)[0]
    struct.pack_into("<Q", buf, 0, version + 1)  # odd: write in progress
    struct.pack_into("<I", buf, 8, len(payload))
    buf[DUMP_REGION_HEADER:DUMP_REGION_HEADER + len(payload)] = payload
    struct.pack_into("<Q", buf, 0, version + 2)  # even: consistent


def read_dump_region(buf, attempts: int = 16) -> Optional[dict]:
    """Read a dump published by :func:`write_dump_region`.

    Returns ``None`` if the region was never written or stays torn for
    ``attempts`` tries (writer mid-update on every look — vanishingly rare
    given the payload is a few KB).
    """
    for _ in range(attempts):
        before = struct.unpack_from("<Q", buf, 0)[0]
        if before == 0:
            return None
        if before & 1:
            continue
        length = struct.unpack_from("<I", buf, 8)[0]
        if length > len(buf) - DUMP_REGION_HEADER:
            continue
        payload = bytes(buf[DUMP_REGION_HEADER:DUMP_REGION_HEADER + length])
        if struct.unpack_from("<Q", buf, 0)[0] != before:
            continue
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue
    return None
