"""Request-scoped tracing: spans, trace propagation, Chrome trace export.

The paper's Fig. 4 splits one query into pre-processing, network, queueing,
and per-layer GPU compute; this module is the machinery that produces that
breakdown on the live service.  A :class:`Tracer` collects :class:`Span`
records; trace and span IDs travel on the wire (protocol v2 frames, see
:mod:`repro.core.protocol`) so one client request yields a single trace
covering client serialize → gateway route/retry → backend queue/batch/
forward/respond, across every process-in-a-process hop.

Tracing is **off by default** and zero-cost when disabled: ``tracer.span()``
short-circuits to a shared no-op span, and the serving hot paths guard all
instrumentation behind ``tracer.enabled``.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from time import monotonic
from typing import Callable, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "Span",
    "Tracer",
    "new_id",
    "get_tracer",
    "coverage",
    "format_trace",
    "log_event",
]

_id_lock = threading.Lock()
_id_state = int.from_bytes(os.urandom(8), "little") | 1


def new_id() -> int:
    """A process-unique, nonzero 64-bit ID (trace or span)."""
    global _id_state
    with _id_lock:
        # xorshift64: fast, never hits zero from a nonzero seed
        x = _id_state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        _id_state = x
        return x


class Span:
    """One timed operation within a trace."""

    __slots__ = ("name", "category", "trace_id", "span_id", "parent_id",
                 "start_s", "end_s", "thread", "attrs")

    def __init__(self, name: str, category: str, trace_id: int, span_id: int,
                 parent_id: int, start_s: float):
        self.name = name
        self.category = category
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.thread = threading.get_ident()
        self.attrs: Dict[str, object] = {}

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def set(self, **attrs: object) -> "Span":
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, object]:
        """JSON-able record (``djinn trace --json`` / ``djinn slow --json``)."""
        return {
            "name": self.name,
            "category": self.category,
            "trace_id": f"{self.trace_id:016x}",
            "span_id": f"{self.span_id:016x}",
            "parent_id": f"{self.parent_id:016x}",
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "thread": self.thread,
            "attrs": {k: str(v) for k, v in self.attrs.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Span({self.name!r}, trace={self.trace_id:#x}, "
                f"dur={self.duration_s * 1e3:.3f}ms)")


class _NoopSpan:
    """Stand-in yielded by a disabled tracer; absorbs all use."""

    __slots__ = ()
    name = ""
    category = ""
    trace_id = 0
    span_id = 0
    parent_id = 0
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0
    attrs: Dict[str, object] = {}

    def set(self, **attrs: object) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects spans; tracks the current span per thread for parenting.

    Parameters
    ----------
    clock:
        Monotonic time source; injected so tests can drive time by hand.
        Every component in the serving stack shares one clock kind
        (``time.monotonic``) so span timestamps line up across layers.
    max_spans:
        Bound on retained finished spans (oldest dropped first).
    enabled:
        Start enabled; default off — a disabled tracer costs one attribute
        read per instrumentation site.
    """

    def __init__(self, clock: Callable[[], float] = monotonic,
                 max_spans: int = 100_000, enabled: bool = False):
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.clock = clock
        self.max_spans = max_spans
        self._enabled = enabled
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._local = threading.local()

    # ------------------------------------------------------------- switches
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> "Tracer":
        self._enabled = True
        return self

    def disable(self) -> None:
        self._enabled = False

    # ------------------------------------------------------------- contexts
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_context(self) -> tuple:
        """(trace_id, span_id) of the current span, or (0, 0)."""
        span = self.current()
        return (span.trace_id, span.span_id) if span else (0, 0)

    @contextmanager
    def span(self, name: str, category: str = "", trace_id: int = 0,
             parent_id: int = 0, **attrs: object) -> Iterator[Span]:
        """Open a span; parents to the thread's current span by default.

        Pass ``trace_id``/``parent_id`` explicitly to join a trace arriving
        from the wire or from another thread.
        """
        if not self._enabled:
            yield NOOP_SPAN
            return
        if not trace_id:
            parent = self.current()
            if parent is not None:
                trace_id, parent_id = parent.trace_id, parent.span_id
            else:
                trace_id = new_id()
        span = Span(name, category, trace_id, new_id(), parent_id, self.clock())
        if attrs:
            span.attrs.update(attrs)
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            span.end_s = self.clock()
            stack.pop()
            self._record(span)

    def add_span(self, name: str, start_s: float, end_s: float, trace_id: int,
                 parent_id: int = 0, category: str = "", **attrs: object) -> Span:
        """Record an already-timed span (cross-thread work, batch workers)."""
        if not self._enabled:
            return NOOP_SPAN  # type: ignore[return-value]
        span = Span(name, category, trace_id, new_id(), parent_id, start_s)
        span.end_s = end_s
        if attrs:
            span.attrs.update(attrs)
        self._record(span)
        return span

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if len(self._spans) > self.max_spans:
                del self._spans[: len(self._spans) - self.max_spans]

    # -------------------------------------------------------------- reading
    def spans(self, trace_id: int = 0) -> List[Span]:
        """Finished spans, optionally filtered to one trace."""
        with self._lock:
            spans = list(self._spans)
        if trace_id:
            spans = [s for s in spans if s.trace_id == trace_id]
        return spans

    def trace_ids(self) -> List[int]:
        """Distinct trace IDs in completion order (oldest first)."""
        seen: Dict[int, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # ------------------------------------------------------------ exporting
    def to_chrome(self, trace_id: int = 0) -> dict:
        """Chrome trace-event JSON (load via chrome://tracing or Perfetto)."""
        events = []
        for span in self.spans(trace_id):
            if span.end_s is None:
                continue
            args = {"trace_id": f"{span.trace_id:016x}",
                    "span_id": f"{span.span_id:016x}",
                    "parent_id": f"{span.parent_id:016x}"}
            args.update({k: str(v) for k, v in span.attrs.items()})
            events.append({
                "name": span.name,
                "cat": span.category or "djinn",
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": os.getpid(),
                "tid": span.thread,
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def dump_chrome(self, path: str, trace_id: int = 0) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(trace_id), fh, indent=1)


_DEFAULT_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled until someone enables it)."""
    return _DEFAULT_TRACER


# ------------------------------------------------------------------- analysis
def coverage(spans: Sequence[Span]) -> float:
    """Fraction of a trace's wall-clock extent covered by span intervals.

    The union of all span intervals over (last end − first start); 1.0 means
    no part of the request's timeline is unaccounted for.
    """
    intervals = sorted(
        (s.start_s, s.end_s) for s in spans if s.end_s is not None
    )
    if not intervals:
        return 0.0
    wall_start = intervals[0][0]
    wall_end = max(end for _, end in intervals)
    wall = wall_end - wall_start
    if wall <= 0:
        return 1.0
    covered = 0.0
    cursor = wall_start
    for start, end in intervals:
        if end <= cursor:
            continue
        covered += end - max(start, cursor)
        cursor = end
    return covered / wall


def format_trace(spans: Sequence[Span]) -> str:
    """Indented parent→child rendering of one trace (durations in ms)."""
    finished = [s for s in spans if s.end_s is not None]
    if not finished:
        return "(no spans)"
    by_parent: Dict[int, List[Span]] = {}
    ids = {s.span_id for s in finished}
    for span in finished:
        parent = span.parent_id if span.parent_id in ids else 0
        by_parent.setdefault(parent, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: s.start_s)
    origin = min(s.start_s for s in finished)
    lines: List[str] = []

    def walk(parent: int, depth: int) -> None:
        for span in by_parent.get(parent, ()):
            attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            lines.append(
                f"{'  ' * depth}{span.name:<{max(1, 28 - 2 * depth)}s} "
                f"+{(span.start_s - origin) * 1e3:8.3f}ms "
                f"{span.duration_s * 1e3:9.3f}ms"
                + (f"  {attrs}" if attrs else "")
            )
            walk(span.span_id, depth + 1)

    walk(0, 0)
    return "\n".join(lines)


def log_event(logger, event: str, level: Optional[int] = None, **fields) -> None:
    """Emit one structured ``key=value`` log line (gateway health/retry events).

    ``logger.info("event=backend.mark_down backend=127.0.0.1:7890 failures=3")``
    — grep-able, one event per line, stable field order.
    """
    import logging

    parts = [f"event={event}"]
    parts.extend(f"{key}={fields[key]}" for key in fields)
    logger.log(logging.INFO if level is None else level, "%s", " ".join(parts))
