"""``repro.obs`` — observability substrate for the DjiNN serving stack.

The paper's analysis (Figs 4–9) is observability: per-layer timelines,
queueing vs. compute splits, fleet-level throughput accounting.  This
package is that machinery for the reproduction, and the measurement
substrate every later performance PR reports against.

Layers
------
:mod:`repro.obs.metrics`
    Thread-safe Counter/Gauge/Histogram families with labels, per-server
    :class:`MetricsRegistry`, Prometheus-style exposition, wire-friendly
    dumps and fleet-level merges.
:mod:`repro.obs.trace`
    :class:`Span`/:class:`Tracer` with wire-propagated trace IDs (protocol
    v2), Chrome trace-event export, coverage analysis, and the structured
    ``log_event`` helper.
:mod:`repro.obs.profile`
    :class:`LayerTimer`, the per-layer forward-pass breakdown hook.
:mod:`repro.obs.cost`
    Per-request cost ledgers: fold a span tree into the fixed stage
    taxonomy (:data:`~repro.obs.cost.STAGES`) with an honest unattributed
    residual.
:mod:`repro.obs.slo`
    :class:`BurnRateMonitor`, multi-window SLO error-budget burn alerting
    over per-class attainment counts.
"""

from .cost import (
    STAGES,
    CostLedger,
    aggregate_shares,
    build_ledger,
    build_ledgers,
    format_ledger,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    default_registry,
    merge_dumps,
    merge_exemplars,
    parse_exposition,
    percentile_from_counts,
    read_dump_region,
    render_exposition,
    write_dump_region,
)
from .profile import LayerRecord, LayerTimer
from .slo import DEFAULT_BURN_WINDOWS_S, BurnRateMonitor
from .trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    coverage,
    format_trace,
    get_tracer,
    log_event,
    new_id,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "default_registry",
    "merge_dumps",
    "merge_exemplars",
    "parse_exposition",
    "percentile_from_counts",
    "read_dump_region",
    "render_exposition",
    "write_dump_region",
    "LayerRecord",
    "LayerTimer",
    "STAGES",
    "CostLedger",
    "aggregate_shares",
    "build_ledger",
    "build_ledgers",
    "format_ledger",
    "BurnRateMonitor",
    "DEFAULT_BURN_WINDOWS_S",
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "coverage",
    "format_trace",
    "get_tracer",
    "log_event",
    "new_id",
]
