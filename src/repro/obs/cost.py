"""Per-request cost attribution: fold a span tree into a fixed stage ledger.

"Beyond Inference"-style serving analysis (and ROADMAP item 3) needs one
question answered per request: *where did the milliseconds go?*  Span trees
from :mod:`repro.obs.trace` carry the raw intervals; this module folds one
trace into a **cost ledger** over a fixed stage taxonomy:

    client.serialize → gateway.queue / gateway.route / gateway.admit /
    gateway.cache → gateway.rpc → backend.queue → sched.wait →
    batch.assemble → preprocess → net.forward (with per-layer
    sub-breakdown and an engine.cache probe window) → postprocess →
    respond

On the v5 APP path the ``preprocess``/``postprocess`` stages are fed by
the server-side ``app.preprocess``/``app.postprocess`` spans — the whole
point of pushing Tonic's pipeline behind the wire is that those
milliseconds become attributable server-side instead of vanishing into
the client's unattributed residual.

plus an explicit ``unattributed`` residual, so the ledger always sums to
the request's wall time and coverage (= 1 − residual/wall) is honest and
CI-gateable.

Attribution is **exclusive time via a deepest-span-wins sweep**: the root
span's extent is cut at every span start/end, and each elementary interval
is charged to the deepest span covering it (ties: the later-starting one).
That makes attribution exact even with overlapping *sibling* spans — hedged
duplicate arms, per-retry ``gateway.queue`` spans — where a naive
per-span-duration sum would double-count.  Container spans (``backend.infer``,
the bare envelope around the backend's work) map to no stage on purpose:
their exclusive time — request parse, bookkeeping, anything we have not
instrumented — lands in the residual instead of flattering a stage.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .trace import Span

__all__ = [
    "STAGES",
    "SPAN_STAGE",
    "CostLedger",
    "build_ledger",
    "build_ledgers",
    "aggregate_shares",
    "format_ledger",
]

#: The fixed stage taxonomy, in request order.  Every ledger carries every
#: stage (zero when unobserved) so aggregated shares line up across requests,
#: batch sizes, and execution modes.
STAGES: Tuple[str, ...] = (
    "client.serialize",
    "gateway.queue",
    "gateway.route",
    "gateway.admit",
    "gateway.cache",
    "gateway.rpc",
    "backend.queue",
    "sched.wait",
    "batch.assemble",
    "preprocess",
    "net.forward",
    "engine.cache",
    "postprocess",
    "respond",
)

#: Span name → stage.  ``None`` means *container*: the span exists to parent
#: others and its exclusive time is deliberately left unattributed.
SPAN_STAGE: Dict[str, Optional[str]] = {
    "client.infer": "client.serialize",   # root: serialize + wire + deserialize
    "client.app": "client.serialize",     # v5 raw-payload root envelope
    "gateway.infer": "gateway.route",
    "gateway.queue": "gateway.queue",
    "gateway.backend": "gateway.rpc",
    "gateway.hedge": "gateway.route",
    "sched.admit": "gateway.admit",
    "gateway.cache": "gateway.cache",     # response-cache probe (hit or miss)
    "engine.cache": "engine.cache",       # layer-cache probe window, nested
                                          # inside net.forward (deepest wins)
    "backend.infer": None,                # container → residual
    "backend.app": None,                  # APP-path container → residual
    "backend.queue": "backend.queue",
    "sched.wait": "sched.wait",
    "sched.expire": "sched.wait",
    "batch.assemble": "batch.assemble",
    "batch.scatter": "batch.assemble",    # disassembly: result hand-out
    "preprocess": "preprocess",
    "app.preprocess": "preprocess",       # server-side Tonic kernel (v5)
    "net.forward": "net.forward",
    "app.postprocess": "postprocess",
    "backend.respond": "respond",
}


def _stage_for(span: Span, depth: int) -> Optional[str]:
    if span.name.startswith("layer."):
        return "net.forward"
    stage = SPAN_STAGE.get(span.name)
    if stage == "client.serialize" and depth > 0:
        # A nested client.infer is the gateway's pooled hop to a backend,
        # not the end user's client: its exclusive time is RPC overhead.
        return "gateway.rpc"
    return stage


class CostLedger:
    """Where one request's wall time went, stage by stage.

    ``stages`` maps every name in :data:`STAGES` to exclusive seconds;
    ``residual_s`` is wall time no stage claimed.  ``layers`` sub-divides
    the ``net.forward`` stage by layer name (from ``layer.*`` spans).
    """

    __slots__ = ("trace_id", "model", "wall_s", "stages", "residual_s",
                 "layers", "span_count")

    def __init__(self, trace_id: int, model: str, wall_s: float,
                 stages: Mapping[str, float], residual_s: float,
                 layers: Mapping[str, float], span_count: int):
        self.trace_id = trace_id
        self.model = model
        self.wall_s = wall_s
        self.stages = {stage: float(stages.get(stage, 0.0)) for stage in STAGES}
        self.residual_s = residual_s
        self.layers = dict(layers)
        self.span_count = span_count

    @property
    def coverage(self) -> float:
        """Fraction of wall time attributed to a named stage."""
        if self.wall_s <= 0:
            return 1.0
        return max(0.0, 1.0 - self.residual_s / self.wall_s)

    def shares(self) -> Dict[str, float]:
        """Stage → fraction of wall time; includes ``unattributed``.

        Sums to 1.0 (up to float rounding) by construction.
        """
        if self.wall_s <= 0:
            return {**{stage: 0.0 for stage in STAGES}, "unattributed": 0.0}
        out = {stage: self.stages[stage] / self.wall_s for stage in STAGES}
        out["unattributed"] = self.residual_s / self.wall_s
        return out

    def to_dict(self) -> dict:
        return {
            "trace_id": f"{self.trace_id:016x}",
            "model": self.model,
            "wall_s": self.wall_s,
            "stages_s": dict(self.stages),
            "residual_s": self.residual_s,
            "coverage": self.coverage,
            "shares": self.shares(),
            "layers_s": dict(self.layers),
            "span_count": self.span_count,
        }


def _depths(spans: Sequence[Span]) -> Dict[int, int]:
    """span_id → depth below the trace root (root = 0)."""
    parents = {s.span_id: s.parent_id for s in spans}
    depths: Dict[int, int] = {}

    def depth(span_id: int) -> int:
        cached = depths.get(span_id)
        if cached is not None:
            return cached
        parent = parents.get(span_id, 0)
        d = 0 if parent not in parents else depth(parent) + 1
        depths[span_id] = d
        return d

    for s in spans:
        depth(s.span_id)
    return depths


def build_ledger(spans: Sequence[Span]) -> Optional[CostLedger]:
    """Fold one trace's spans into a :class:`CostLedger`.

    Returns ``None`` when the trace has no finished root (no ``client.infer``
    or other parentless span) — e.g. a trace captured mid-flight.
    """
    finished = [s for s in spans if s.end_s is not None]
    if not finished:
        return None
    ids = {s.span_id for s in finished}
    roots = [s for s in finished if s.parent_id not in ids]
    # prefer the client envelope; fall back to the earliest root
    client_roots = [s for s in roots if s.name in ("client.infer",
                                                   "client.app")]
    root = min(client_roots or roots, key=lambda s: s.start_s)
    wall = root.end_s - root.start_s
    depths = _depths(finished)

    model = str(root.attrs.get("model", ""))
    if not model:
        for s in finished:
            if s.attrs.get("model"):
                model = str(s.attrs["model"])
                break

    # Deepest-span-wins sweep over the root's extent.
    cuts = sorted({
        t for s in finished
        for t in (s.start_s, s.end_s)
        if root.start_s <= t <= root.end_s
    } | {root.start_s, root.end_s})
    stages = {stage: 0.0 for stage in STAGES}
    layers: Dict[str, float] = {}
    residual = 0.0
    for lo, hi in zip(cuts, cuts[1:]):
        width = hi - lo
        if width <= 0:
            continue
        owner = None
        owner_key = (-1, -float("inf"), -1)
        for s in finished:
            if s.start_s <= lo and s.end_s >= hi:
                key = (depths[s.span_id], s.start_s, s.span_id)
                if key > owner_key:
                    owner, owner_key = s, key
        stage = _stage_for(owner, depths[owner.span_id]) if owner else None
        if stage is None:
            residual += width
        else:
            stages[stage] += width
            if owner.name.startswith("layer."):
                layer = owner.name[len("layer."):]
                layers[layer] = layers.get(layer, 0.0) + width
    return CostLedger(root.trace_id, model, wall, stages, residual, layers,
                      span_count=len(finished))


def build_ledgers(spans: Sequence[Span]) -> List[CostLedger]:
    """Group spans by trace and build one ledger per complete trace."""
    by_trace: Dict[int, List[Span]] = {}
    for s in spans:
        by_trace.setdefault(s.trace_id, []).append(s)
    ledgers = []
    for trace_spans in by_trace.values():
        ledger = build_ledger(trace_spans)
        if ledger is not None:
            ledgers.append(ledger)
    return ledgers


def aggregate_shares(ledgers: Sequence[CostLedger]) -> Dict[str, float]:
    """Wall-time-weighted mean share per stage across many ledgers.

    Weighting by wall time makes the aggregate read as "share of total
    serving seconds", which is what capacity planning wants; it also means
    the output still sums to 1.0.
    """
    total_wall = sum(l.wall_s for l in ledgers)
    out = {stage: 0.0 for stage in STAGES}
    out["unattributed"] = 0.0
    if total_wall <= 0:
        return out
    for ledger in ledgers:
        for stage in STAGES:
            out[stage] += ledger.stages[stage]
        out["unattributed"] += ledger.residual_s
    return {stage: seconds / total_wall for stage, seconds in out.items()}


def format_ledger(ledger: CostLedger, width: int = 40) -> str:
    """Human rendering: one bar per stage, slowest layers, coverage line."""
    lines = [
        f"trace {ledger.trace_id:016x}  model={ledger.model or '?'}  "
        f"wall={ledger.wall_s * 1e3:.3f}ms  coverage={ledger.coverage:.1%}"
    ]
    rows = [(stage, ledger.stages[stage]) for stage in STAGES]
    rows.append(("unattributed", ledger.residual_s))
    peak = max((seconds for _, seconds in rows), default=0.0)
    for stage, seconds in rows:
        share = seconds / ledger.wall_s if ledger.wall_s > 0 else 0.0
        bar = "#" * (round(width * seconds / peak) if peak > 0 else 0)
        lines.append(f"  {stage:<16s} {seconds * 1e3:9.3f}ms {share:6.1%}  {bar}")
    if ledger.layers:
        slowest = sorted(ledger.layers.items(), key=lambda kv: -kv[1])[:5]
        layer_text = ", ".join(f"{name} {s * 1e3:.3f}ms" for name, s in slowest)
        lines.append(f"  slowest layers: {layer_text}")
    return "\n".join(lines)
