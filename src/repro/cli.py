"""Command-line interface: operate the DjiNN service like the original
release's binaries.

Commands
--------
``djinn models``
    Print the Tonic model zoo (Table 1).
``djinn serve [--models dig,pos,...] [--port N] [--batch N --timeout-ms T]
[--workers proc:N]``
    Start a DjiNN server with seeded models and block until Ctrl-C.
    ``--workers proc:N`` executes forwards in N shared-memory worker
    processes (weights mapped read-only, one physical copy).
``djinn query --host H --port P --app dig``
    Run one Tonic query against a live server and print the result.
``djinn stream --host H --port P [--model asr] [--chunks K] [--words a,b]``
    Open a protocol-v4 streaming session: for ``asr``, synthesize an
    utterance, feed it in chunks, and print the incremental partial
    transcripts plus the exact final one; for any other model, stream
    stamped chunks through the generic label app.  Works against a server
    or a gateway (streams are pinned to one backend for their lifetime).
``djinn gateway --backends N [--models ...] [--policy P] [--port N]``
    Launch an in-process fleet of N DjiNN backends behind a sharded,
    fault-tolerant gateway speaking the same protocol (clients and
    ``djinn query`` work unchanged against the gateway port).
``djinn metrics --host H --port P [--json]``
    Fetch a live server's (or gateway's fleet-merged) metrics registry and
    print it as Prometheus-style text exposition.
``djinn trace [--backends N] [--requests K] [--out trace.json] [--json]``
    Run a small in-process fleet behind a gateway with tracing and
    per-layer profiling on, send traced queries, print the span tree, and
    dump a Chrome trace (chrome://tracing / Perfetto) plus the metrics
    exposition — the paper's Fig-4 breakdown, live.  ``--json`` prints
    the last trace as structured span records instead of the tree.
``djinn slow [--backends N] [--requests K] [--top K] [--json]``
    Run a traced in-process fleet, then chase the tail: the latency
    histograms carry trace-id exemplars for their slowest requests, and
    ``slow`` resolves each one back to its full span tree and per-stage
    cost ledger (where the p99 actually went).
``djinn top --host H --port P [--interval S] [--iterations N]``
    Live terminal view of a running server or gateway: per-model qps and
    p50/p95/p99, stage-breakdown bars from the always-on stage-seconds
    counters, SLO burn rates, and worker health — fleet-wide when pointed
    at a gateway (its metrics merge every backend's shm dump).
``djinn chaos [--scenario NAME] [--seed N] [--requests K] [--json] [--out D]``
    Run seeded fault-injection scenarios against an in-process gateway +
    fleet and check the end-to-end invariants (no request lost or answered
    twice, retries within budget and matching the metrics, traces closed).
    ``--list`` prints the catalog; exits nonzero on any violation.
``djinn plan``
    Per-GPU capability and WSC design comparison (the capacity-planning
    example, in command form).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

import numpy as np

__all__ = ["main"]

SERVABLE = ("dig", "pos", "chk", "ner", "imc", "face", "asr")


def _build_registry(names: List[str]):
    from .core import ModelRegistry
    from .models import build_spec

    registry = ModelRegistry()
    for seed, name in enumerate(names):
        if name not in SERVABLE:
            raise SystemExit(f"unknown model {name!r}; choose from {', '.join(SERVABLE)}")
        print(f"loading {name} (seeded synthetic weights)...", file=sys.stderr)
        registry.register_spec(name, build_spec(name), seed=seed)
    return registry


def cmd_models(_args) -> int:
    from .models import APPLICATIONS, build_net, model_info

    print(f"{'app':5s} {'network':9s} {'type':4s} {'params':>13s} {'input':>16s} {'output':>8s}")
    for app in APPLICATIONS:
        info = model_info(app)
        net = build_net(app)
        print(f"{app:5s} {info.network:9s} {info.network_type:4s} "
              f"{net.param_count():>13,d} {str(net.input_shape):>16s} "
              f"{str(net.output_shape):>8s}")
    return 0


def _layer_cache_config(args):
    """``--layer-cache N`` (+ ``--layer-cache-tol``) → LayerCacheConfig."""
    if not getattr(args, "layer_cache", 0):
        return None
    from .nn import LayerCacheConfig

    return LayerCacheConfig(max_entries=args.layer_cache,
                            tolerance=args.layer_cache_tol)


def cmd_serve(args) -> int:
    from .core import BatchPolicy, DjinnServer

    registry = _build_registry([m for m in args.models.split(",") if m])
    for entry in args.load or []:
        try:
            path, name = entry.rsplit("=", 1)
        except ValueError:
            raise SystemExit(f"--load expects PATH=NAME, got {entry!r}")
        from .nn import load_net

        print(f"loading {name} from {path}...")
        registry.register(name, load_net(path))
    batching = None
    if args.batch:
        batching = BatchPolicy(max_batch=args.batch, timeout_ms=args.timeout_ms)
    layer_cache = _layer_cache_config(args)
    if layer_cache is not None and not batching:
        raise SystemExit("--layer-cache requires --batch")
    server = DjinnServer(registry, host=args.host, port=args.port, batching=batching,
                         workers=args.workers or None,
                         sched=args.sched or None,
                         layer_cache=layer_cache)
    server.start()
    host, port = server.address
    mode = "batched" if batching else "unbatched"
    if args.sched:
        mode += f", {args.sched} sched"
    if args.workers:
        mode += f", {args.workers} shm workers"
    if layer_cache is not None:
        mode += f", layer cache {layer_cache.max_entries} entries"
    print(f"DjiNN serving {registry.names()} on {host}:{port} "
          f"({mode}); Ctrl-C to stop")
    try:
        while server._running.is_set():
            time.sleep(0.5)
    except KeyboardInterrupt:
        print("\nstopping...")
    finally:
        server.stop()
    return 0


def _query_raw(client, args) -> int:
    """``--raw``: ship the unpreprocessed payload on a v5 APP frame.

    The server runs the whole Tonic preprocess → DNN → postprocess
    pipeline and answers with the app's JSON result; the dig payload goes
    as uint8 pixel bytes (a quarter of the float wire size), NLP queries
    as UTF-8 text.
    """
    kwargs = dict(deadline_ms=args.deadline_ms, priority=args.priority,
                  tenant=args.tenant)
    if args.app == "dig":
        from .tonic import digit_dataset

        images, labels = digit_dataset(args.count, seed=args.seed)
        start = time.perf_counter()
        results = [client.infer_app("dig", (img * 255).astype(np.uint8),
                                    **kwargs)
                   for img in images]
        elapsed = time.perf_counter() - start
        predictions = [r[0] if isinstance(r, list) else r for r in results]
        print(f"predictions: {predictions}")
        print(f"labels:      {list(labels)}")
    else:
        from .tonic import generate_corpus

        sentence = generate_corpus(1, seed=args.seed)[0]
        start = time.perf_counter()
        tags = client.infer_app(args.app, " ".join(sentence.words), **kwargs)
        elapsed = time.perf_counter() - start
        print(" ".join(f"{w}/{t}" for w, t in zip(sentence.words, tags)))
    print(f"({elapsed * 1e3:.2f} ms round trips; "
          f"pre/postprocess ran server-side)")
    print("server stats:", client.stats())
    return 0


def cmd_query(args) -> int:
    from .core import DjinnClient, RemoteBackend

    with DjinnClient(args.host, args.port) as client:
        if args.raw:
            return _query_raw(client, args)
        backend = RemoteBackend(client, deadline_ms=args.deadline_ms,
                                priority=args.priority, tenant=args.tenant)
        if args.app == "dig":
            from .tonic import DigApp, digit_dataset

            images, labels = digit_dataset(args.count, seed=args.seed)
            result, timing = DigApp(backend).run_timed(images)
            print(f"predictions: {result}")
            print(f"labels:      {list(labels)}")
        elif args.app in ("pos", "chk", "ner"):
            from .tonic import PosApp, Vocabulary, WindowFeaturizer, generate_corpus
            from .tonic.nlp import NlpApp

            sentence = generate_corpus(1, seed=args.seed)[0]
            featurizer = WindowFeaturizer(Vocabulary(sentence.words))
            app = (PosApp(backend, featurizer) if args.app == "pos"
                   else NlpApp(args.app, backend, featurizer))
            tags, timing = app.run_timed(list(sentence.words))
            print(" ".join(f"{w}/{t}" for w, t in zip(sentence.words, tags)))
        else:
            raise SystemExit(f"query does not support app {args.app!r} yet")
        print(f"(pre {timing.pre_s * 1e3:.2f} ms | dnn {timing.dnn_s * 1e3:.2f} ms | "
              f"post {timing.post_s * 1e3:.2f} ms)")
        print("server stats:", client.stats())
    return 0


def cmd_stream(args) -> int:
    from .core import DjinnClient

    with DjinnClient(args.host, args.port) as client:
        if args.model == "asr":
            from .tonic import LEXICON, synthesize_words

            words = [w for w in args.words.split(",") if w] or list(LEXICON)[:2]
            audio, _ = synthesize_words(words, seed=args.seed)
            chunk = max(1, -(-len(audio) // args.chunks))
            with client.open_stream("asr") as stream:
                for start in range(0, len(audio), chunk):
                    result = stream.send(audio[start:start + chunk])
                    print(f"chunk {result.seq}: partial="
                          f"{result.data.get('partial', '')!r}"
                          f"{'  [endpoint]' if result.final else ''}")
                    if result.final:
                        break
                final = stream.close()
            print(f"final transcript: {final.data.get('transcript', '')!r} "
                  f"(said: {' '.join(words)!r})")
        else:
            from .models import build_spec

            shape = tuple(build_spec(args.model).input_shape)
            rng = np.random.default_rng(args.seed)
            for index in range(args.streams):
                with client.open_stream(args.model) as stream:
                    for _ in range(args.chunks):
                        x = rng.normal(size=(1,) + shape).astype(np.float32)
                        result = stream.send(x)
                        print(f"stream {stream.stream_id} chunk {result.seq}: "
                              f"labels={result.data.get('labels')}")
                    final = stream.close()
                print(f"stream {stream.stream_id} final: "
                      f"{final.data.get('count')} chunk(s), "
                      f"transcript={final.data.get('labels')}")
    return 0


def cmd_gateway(args) -> int:
    from .core import BatchPolicy
    from .gateway import ClusterLauncher, GatewayServer, RetryPolicy

    if args.backends < 1:
        raise SystemExit(f"--backends must be >= 1, got {args.backends}")
    registry = _build_registry([m for m in args.models.split(",") if m])
    batching = None
    if args.batch:
        batching = BatchPolicy(max_batch=args.batch, timeout_ms=args.timeout_ms)
    qos = None
    if args.admission or args.tenant_qps or args.hedge_ms:
        from .sched import QosConfig

        qos = QosConfig(admission=args.admission, tenant_qps=args.tenant_qps,
                        hedge_ms=args.hedge_ms)
    layer_cache = _layer_cache_config(args)
    if layer_cache is not None and not batching:
        raise SystemExit("--layer-cache requires --batch")
    cluster = ClusterLauncher(
        registry, backends=args.backends, batching=batching,
        service_floor_s=args.floor_ms / 1e3,
        workers=args.workers or None,
        sched=args.sched or None,
        layer_cache=layer_cache,
    )
    cluster.start()
    try:
        gateway = GatewayServer(
            cluster.addresses, host=args.host, port=args.port,
            policy=args.policy,
            retry=RetryPolicy(max_attempts=args.retries),
            health_interval_s=args.health_interval,
            qos=qos,
            cache_mb=args.cache_mb,
        )
        gateway.start()
        try:
            host, port = gateway.address
            qos_note = ""
            if qos is not None:
                qos_note = (f", admission={'on' if qos.admission else 'off'}"
                            f", tenant_qps={qos.tenant_qps:g}"
                            f", hedge_ms={qos.hedge_ms:g}")
            if args.cache_mb:
                qos_note += f", cache={args.cache_mb:g}MiB"
            print(f"gateway fronting {len(cluster)} backends "
                  f"{[p for _, p in cluster.addresses]} on {host}:{port} "
                  f"(policy={args.policy}{qos_note}); Ctrl-C to stop")
            while gateway._running.is_set():
                time.sleep(0.5)
        except KeyboardInterrupt:
            print("\nstopping...")
        finally:
            gateway.stop()
    finally:
        cluster.stop()
    return 0


def cmd_metrics(args) -> int:
    import json

    from .core import DjinnClient

    with DjinnClient(args.host, args.port) as client:
        if args.json:
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
        else:
            sys.stdout.write(client.metrics_text())
    return 0


#: span names a healthy traced request must produce (``djinn trace --check``).
#: ``backend.queue`` is checked separately: an idle model serves batch-1
#: requests on the fast path, which skips the queue by design — its absence
#: is only healthy when the fast-path counter accounts for the request.
REQUIRED_SPANS = (
    "client.infer", "gateway.infer", "gateway.queue", "gateway.backend",
    "backend.infer", "batch.assemble", "net.forward",
)


def cmd_trace(args) -> int:
    import json
    import os

    from .core import BatchPolicy, DjinnClient
    from .gateway import ClusterLauncher, GatewayServer
    from .obs import coverage, format_trace, get_tracer, parse_exposition

    names = [m for m in args.models.split(",") if m]
    registry = _build_registry(names)
    out = sys.stderr if args.json else sys.stdout
    tracer = get_tracer()
    tracer.clear()
    tracer.enable()
    rng = np.random.default_rng(args.seed)
    cluster = ClusterLauncher(
        registry, backends=args.backends,
        batching=BatchPolicy(max_batch=args.batch, timeout_ms=args.timeout_ms),
        profile_layers=True,
    )
    try:
        with cluster:
            gateway = GatewayServer(cluster.addresses)
            gateway.start()
            try:
                host, port = gateway.address
                print(f"fleet of {len(cluster)} backends behind {host}:{port}; "
                      f"sending {args.requests} traced request(s)...", file=out)
                with DjinnClient(host, port) as client:
                    for i in range(args.requests):
                        model = names[i % len(names)]
                        shape = (2,) + tuple(registry.get(model).input_shape)
                        client.infer(model, rng.normal(size=shape).astype(np.float32))
                    metrics_text = client.metrics_text()
            finally:
                gateway.stop()
    finally:
        tracer.disable()

    trace_ids = tracer.trace_ids()
    if not trace_ids:
        print("no traces captured", file=sys.stderr)
        return 1
    spans = tracer.spans(trace_ids[-1])
    cov = coverage(spans)
    if args.json:
        print(json.dumps({
            "trace_id": f"{trace_ids[-1]:016x}",
            "coverage": cov,
            "spans": [span.to_dict() for span in spans],
        }, indent=2, sort_keys=True))
    else:
        print(f"\n--- last trace ({len(spans)} spans, "
              f"coverage {cov:.1%} of client-observed wall time) ---")
        print(format_trace(spans))

    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        tracer.dump_chrome(args.out)
        print(f"\nChrome trace ({len(trace_ids)} traces) -> {args.out}", file=out)
    if args.metrics_out:
        os.makedirs(os.path.dirname(args.metrics_out) or ".", exist_ok=True)
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(metrics_text)
        print(f"metrics exposition -> {args.metrics_out}", file=out)

    if args.check:
        failures = []
        seen = {span.name for span in spans}
        for required in REQUIRED_SPANS:
            if required not in seen:
                failures.append(f"missing span {required!r}")
        if not any(name.startswith("layer.") for name in seen):
            failures.append("missing per-layer spans (layer.*)")
        if "backend.queue" not in seen:
            try:
                fast_hits = sum(
                    parse_exposition(metrics_text)
                    .get("djinn_fast_path_total", {}).values())
            except ValueError:
                fast_hits = 0.0
            if not fast_hits:
                failures.append(
                    "missing span 'backend.queue' with no fast-path hits — "
                    "the request took neither serving path")
        if cov < 0.95:
            failures.append(f"trace coverage {cov:.1%} < 95%")
        try:
            samples = parse_exposition(metrics_text)
        except ValueError as exc:
            failures.append(f"exposition does not parse: {exc}")
        else:
            for metric in ("djinn_requests_total", "djinn_request_latency_seconds_bucket",
                           "gateway_requests_total"):
                if metric not in samples:
                    failures.append(f"exposition lacks {metric}")
        if failures:
            print("\nCHECK FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
            return 1
        print("\ncheck ok: all required spans present, coverage >= 95%, "
              "exposition parses", file=out)
    tracer.clear()
    return 0


def _latency_exemplars(dump: dict) -> List:
    """``(latency_s, trace_id_hex)`` tail exemplars from a metrics dump,
    slowest first.  Prefers the gateway's client-observed histogram (it
    includes queueing and routing) over the backend one."""
    metrics = dump.get("metrics", {})
    for name in ("gateway_request_latency_seconds", "djinn_request_latency_seconds"):
        entry = metrics.get(name)
        if entry is None:
            continue
        found = []
        for sample in entry.get("samples", ()):
            for value, label in sample.get("exemplars", ()):
                found.append((float(value), str(label)))
        if found:
            found.sort(key=lambda e: (-e[0], e[1]))
            return found
    return []


def cmd_slow(args) -> int:
    import json

    from .core import BatchPolicy, DjinnClient
    from .gateway import ClusterLauncher, GatewayServer
    from .obs import build_ledger, format_ledger, format_trace, get_tracer

    names = [m for m in args.models.split(",") if m]
    registry = _build_registry(names)
    out = sys.stderr if args.json else sys.stdout
    tracer = get_tracer()
    tracer.clear()
    tracer.enable()
    rng = np.random.default_rng(args.seed)
    cluster = ClusterLauncher(
        registry, backends=args.backends,
        batching=BatchPolicy(max_batch=args.batch, timeout_ms=args.timeout_ms),
        profile_layers=True,
    )
    try:
        with cluster:
            gateway = GatewayServer(cluster.addresses)
            gateway.start()
            try:
                host, port = gateway.address
                print(f"fleet of {len(cluster)} backends behind {host}:{port}; "
                      f"sending {args.requests} traced request(s)...", file=out)
                with DjinnClient(host, port) as client:
                    for i in range(args.requests):
                        model = names[i % len(names)]
                        shape = (1,) + tuple(registry.get(model).input_shape)
                        client.infer(model, rng.normal(size=shape).astype(np.float32))
                    dump = client.metrics()
            finally:
                gateway.stop()
    finally:
        tracer.disable()

    exemplars = _latency_exemplars(dump)
    if not exemplars:
        print("no tail exemplars captured", file=sys.stderr)
        return 1
    reports = []
    for value, trace_hex in exemplars[:args.top]:
        spans = tracer.spans(int(trace_hex, 16))
        if spans:
            reports.append((value, trace_hex, spans, build_ledger(spans)))
    if not reports:
        print("exemplar trace ids did not resolve to captured spans",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps([{
            "rank": rank,
            "latency_s": value,
            "trace_id": trace_hex,
            "ledger": ledger.to_dict(),
            "spans": [span.to_dict() for span in spans],
        } for rank, (value, trace_hex, spans, ledger)
            in enumerate(reports, 1)], indent=2, sort_keys=True))
    else:
        for rank, (value, trace_hex, spans, ledger) in enumerate(reports, 1):
            print(f"\n=== #{rank} slowest: {value * 1e3:.2f} ms"
                  f"  trace {trace_hex} ===")
            print(format_trace(spans))
            print()
            print(format_ledger(ledger))
    tracer.clear()
    return 0


def _sample_map(dump: dict, name: str):
    """``{sorted-label-tuple: sample}`` plus histogram bucket bounds."""
    entry = dump.get("metrics", {}).get(name)
    if not entry:
        return {}, []
    samples = {}
    for sample in entry.get("samples", ()):
        key = tuple(sorted(sample.get("labels", {}).items()))
        samples[key] = sample
    return samples, list(entry.get("buckets", ()))


def _top_frame(dump: dict, prev: dict, elapsed_s: float, monitor) -> str:
    """Render one ``djinn top`` frame from two consecutive metrics dumps."""
    from .obs import percentile_from_counts

    prefix = ("gateway" if "gateway_requests_total" in dump.get("metrics", {})
              else "djinn")
    requests, _ = _sample_map(dump, f"{prefix}_requests_total")
    prev_requests, _ = _sample_map(prev, f"{prefix}_requests_total")
    latency, bounds = _sample_map(dump, f"{prefix}_request_latency_seconds")
    prev_latency, _ = _sample_map(prev, f"{prefix}_request_latency_seconds")

    lines = [f"{'model':8s} {'qps':>8s} {'p50ms':>8s} {'p95ms':>8s} "
             f"{'p99ms':>8s} {'burn5m':>7s} {'burn1h':>7s}  slo"]
    for key, sample in sorted(requests.items()):
        model = dict(key).get("model", "?")
        delta = sample["value"] - prev_requests.get(key, {}).get("value", 0.0)
        qps = delta / elapsed_s if elapsed_s > 0 else 0.0
        counts = []
        hist = latency.get(key)
        if hist is not None:
            counts = list(hist["counts"])
            prev_hist = prev_latency.get(key)
            if prev_hist is not None:
                fresh = [c - p for c, p in zip(counts, prev_hist["counts"])]
                if sum(fresh) > 0:  # interval percentiles when there is traffic
                    counts = fresh
        pcts = [percentile_from_counts(bounds, counts, q) * 1e3
                if counts and sum(counts) else 0.0 for q in (50.0, 95.0, 99.0)]
        snap = monitor.snapshot(model)
        state = "FIRING" if snap["firing"] else "ok"
        lines.append(f"{model:8s} {qps:>8.1f} {pcts[0]:>8.2f} {pcts[1]:>8.2f} "
                     f"{pcts[2]:>8.2f} "
                     f"{snap[f'burn_{int(monitor.windows_s[0])}s']:>7.2f} "
                     f"{snap[f'burn_{int(monitor.windows_s[-1])}s']:>7.2f}  {state}")

    stages = {}
    for family in ("gateway_stage_seconds_total", "djinn_stage_seconds_total"):
        cur, _ = _sample_map(dump, family)
        old, _ = _sample_map(prev, family)
        for key, sample in cur.items():
            stage = dict(key).get("stage", "?")
            delta = sample["value"] - old.get(key, {}).get("value", 0.0)
            stages[stage] = stages.get(stage, 0.0) + max(0.0, delta)
    if sum(stages.values()) <= 0.0:  # no traffic this interval: lifetime shares
        for family in ("gateway_stage_seconds_total", "djinn_stage_seconds_total"):
            cur, _ = _sample_map(dump, family)
            for key, sample in cur.items():
                stage = dict(key).get("stage", "?")
                stages[stage] = stages.get(stage, 0.0) + sample["value"]
    total_stage = sum(stages.values())
    if total_stage > 0.0:
        lines.append("stage breakdown (request-weighted share of serving time):")
        for stage, seconds in sorted(stages.items(), key=lambda e: -e[1]):
            share = seconds / total_stage
            lines.append(f"  {stage:16s} {share:>6.1%} {'#' * int(round(share * 30))}")

    health = []
    workers, _ = _sample_map(dump, "djinn_proc_workers")
    if workers:
        live = sum(s["value"] for s in workers.values())
        respawns, _ = _sample_map(dump, "djinn_proc_worker_respawns_total")
        died = sum(s["value"] for s in respawns.values())
        health.append(f"proc workers: {live:g} live, {died:g} respawned")
    transitions, _ = _sample_map(dump, "gateway_backend_transitions_total")
    if transitions:
        flips = sum(s["value"] for s in transitions.values())
        health.append(f"backend health transitions: {flips:g}")
    if health:
        lines.append(" | ".join(health))
    return "\n".join(lines)


def cmd_top(args) -> int:
    from .core import DjinnClient
    from .obs import BurnRateMonitor

    monitor = BurnRateMonitor(objective=args.objective)
    prev = None
    prev_t = 0.0
    frames = 0
    try:
        while True:
            try:
                with DjinnClient(args.host, args.port) as client:
                    dump = client.metrics()
            except OSError as exc:
                print(f"cannot reach {args.host}:{args.port}: {exc}",
                      file=sys.stderr)
                return 1
            now = time.monotonic()
            for family in ("gateway_slo_requests_total", "djinn_slo_requests_total"):
                samples, _ = _sample_map(dump, family)
                if not samples:
                    continue
                per_model = {}
                for key, sample in samples.items():
                    labels = dict(key)
                    acc = per_model.setdefault(labels.get("model", "?"), [0.0, 0.0])
                    acc[1] += sample["value"]
                    if labels.get("outcome") == "met":
                        acc[0] += sample["value"]
                for model, (met, total) in per_model.items():
                    monitor.record_totals(model, met, total)
                break  # gateway view already folds in the fleet
            monitor.check()
            if prev is not None:
                frame = _top_frame(dump, prev, now - prev_t, monitor)
                if sys.stdout.isatty() and not args.iterations:
                    sys.stdout.write("\x1b[2J\x1b[H")
                print(f"djinn top — {args.host}:{args.port} — "
                      f"frame {frames + 1}, {now - prev_t:.1f}s window")
                print(frame)
                sys.stdout.flush()
                frames += 1
                if args.iterations and frames >= args.iterations:
                    return 0
            prev, prev_t = dump, now
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def cmd_chaos(args) -> int:
    import json
    import os

    from .faults import SCENARIOS, default_registry, run_scenario

    if args.list:
        width = max(len(name) for name in SCENARIOS)
        for name, scenario in SCENARIOS.items():
            print(f"{name:{width}s}  {scenario.description}")
        return 0
    names = [s for s in args.scenario.split(",") if s] or list(SCENARIOS)
    for name in names:
        if name not in SCENARIOS:
            raise SystemExit(f"unknown scenario {name!r}; see `djinn chaos --list`")
    registry = default_registry()
    failed = 0
    for name in names:
        report = run_scenario(name, seed=args.seed, registry=registry,
                              requests=args.requests or None)
        violations = report.check()
        if args.json:
            print(report.to_json())
        else:
            verdict = "OK" if not violations else "FAIL"
            print(f"{name:26s} {verdict:4s} ok={report.ok:3d} "
                  f"errors={report.error_total} lost={report.lost} "
                  f"retries={report.retries_metric} "
                  f"injected={report.injected_total}")
            for violation in violations:
                print(f"  VIOLATION: {violation}")
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, f"{name}.json")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(report.to_json() + "\n")
        failed += bool(violations)
    if failed:
        print(f"\n{failed} scenario(s) violated invariants", file=sys.stderr)
        return 1
    return 0


def cmd_plan(_args) -> int:
    from .gpusim import all_app_models, select_batch
    from .gpusim.mps import service_segments, simulate_concurrent
    from .wsc import MIXED, WscDesigner

    print(f"{'app':5s} {'tuned batch':>11s} {'QPS/GPU (4 MPS)':>16s} {'latency':>9s}")
    for model in all_app_models():
        choice = select_batch(model)
        result = simulate_concurrent(service_segments(model), 4, "mps")
        qps = result.qps * model.best_batch
        print(f"{model.app:5s} {choice.batch:>11d} {qps:>16,.0f} "
              f"{result.mean_latency_s * 1e3:>7.2f}ms")
    designer = WscDesigner()
    results = designer.all_designs(MIXED, 0.7)
    base = results["cpu_only"].total_tco
    print("\nMIXED workload at 70% DNN share (500-server baseline):")
    for name, result in results.items():
        print(f"  {name:14s} ${result.total_tco / 1e6:6.2f}M "
              f"({result.total_tco / base:.2f}x of CPU-only)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="djinn", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="print the Tonic model zoo")

    serve = sub.add_parser("serve", help="start a DjiNN server")
    serve.add_argument("--models", default="dig,pos", help="comma-separated model names")
    serve.add_argument("--load", action="append", metavar="PATH=NAME",
                       help="serve a trained model saved with repro.nn.save_net")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7889)
    serve.add_argument("--batch", type=int, default=0, help="enable dynamic batching")
    serve.add_argument("--timeout-ms", type=float, default=2.0)
    serve.add_argument("--sched", default="", choices=("", "fixed", "adaptive"),
                       help="batch scheduling policy (EDF queue with deadline "
                            "expiry; 'adaptive' also sizes batches to fit "
                            "deadlines)")
    serve.add_argument("--workers", default="",
                       help="execute forwards in a shared-memory process pool "
                            "(e.g. proc:4)")
    serve.add_argument("--layer-cache", type=int, default=0, metavar="N",
                       help="arm the engine layer cache with an LRU of N "
                            "activation snapshots per model (0 = off; "
                            "requires --batch)")
    serve.add_argument("--layer-cache-tol", type=float, default=0.0,
                       help="layer-cache digest quantum: activations within "
                            "this distance share a cache key (0 = exact "
                            "bytes only)")

    query = sub.add_parser("query", help="run one Tonic query against a server")
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=7889)
    query.add_argument("--app", default="dig", choices=("dig", "pos", "chk", "ner"))
    query.add_argument("--count", type=int, default=5)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--deadline-ms", type=float, default=0.0,
                       help="stamp a latency budget on every request "
                            "(0 = none)")
    query.add_argument("--priority", type=int, default=0,
                       help="scheduling priority class (higher runs first)")
    query.add_argument("--tenant", default="",
                       help="tenant id for per-tenant gateway rate limits")
    query.add_argument("--raw", action="store_true",
                       help="send the raw payload (protocol v5 APP frame) "
                            "and let the server run preprocess/postprocess; "
                            "dig ships uint8 pixel bytes, NLP apps ship "
                            "query text (the server must be configured "
                            "with the app)")

    stream = sub.add_parser(
        "stream", help="open streaming sessions against a server or gateway")
    stream.add_argument("--host", default="127.0.0.1")
    stream.add_argument("--port", type=int, default=7889)
    stream.add_argument("--model", default="asr",
                        help="model to stream to; 'asr' streams synthesized "
                             "audio and prints partial transcripts, any "
                             "other servable model streams stamped chunks "
                             "through the generic label app")
    stream.add_argument("--streams", type=int, default=1,
                        help="how many sequential streams to run")
    stream.add_argument("--chunks", type=int, default=4,
                        help="chunks per stream (for asr: how many pieces "
                             "the utterance is cut into)")
    stream.add_argument("--words", default="",
                        help="comma-separated words to speak (asr only)")
    stream.add_argument("--seed", type=int, default=0)

    gateway = sub.add_parser(
        "gateway", help="front an in-process DjiNN fleet with the gateway")
    gateway.add_argument("--backends", type=int, default=2,
                         help="fleet size (one DjiNN instance per replica)")
    gateway.add_argument("--models", default="dig,pos", help="comma-separated model names")
    gateway.add_argument("--host", default="127.0.0.1")
    gateway.add_argument("--port", type=int, default=7888)
    gateway.add_argument("--policy", default="round_robin",
                         choices=("round_robin", "least_outstanding", "model_affinity"))
    gateway.add_argument("--retries", type=int, default=3,
                         help="per-request transport-failure retry budget")
    gateway.add_argument("--health-interval", type=float, default=0.5,
                         help="seconds between backend health probes")
    gateway.add_argument("--batch", type=int, default=0,
                         help="enable dynamic batching on each backend")
    gateway.add_argument("--timeout-ms", type=float, default=2.0)
    gateway.add_argument("--floor-ms", type=float, default=0.0,
                         help="device-pace each backend (min service ms per batch)")
    gateway.add_argument("--sched", default="", choices=("", "fixed", "adaptive"),
                         help="batch scheduling policy on each backend")
    gateway.add_argument("--admission", action="store_true",
                         help="shed requests predicted to miss their deadline "
                              "(typed OVERLOADED with retry_after_ms)")
    gateway.add_argument("--tenant-qps", type=float, default=0.0,
                         help="per-tenant token-bucket rate limit (0 = off)")
    gateway.add_argument("--hedge-ms", type=float, default=0.0,
                         help="hedge slow requests to a second backend after "
                              "this delay (-1 = derive from latency model)")
    gateway.add_argument("--workers", default="",
                         help="give each backend a shared-memory process pool "
                              "(e.g. proc:2)")
    gateway.add_argument("--cache-mb", type=float, default=0.0,
                         help="gateway response-cache budget in MiB "
                              "(content-addressed LRU; 0 = off)")
    gateway.add_argument("--layer-cache", type=int, default=0, metavar="N",
                         help="arm each backend's engine layer cache with an "
                              "LRU of N activation snapshots per model "
                              "(0 = off; requires --batch)")
    gateway.add_argument("--layer-cache-tol", type=float, default=0.0,
                         help="layer-cache digest quantum (0 = exact bytes)")

    metrics = sub.add_parser(
        "metrics", help="fetch and print a live server's metrics exposition")
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument("--port", type=int, default=7889)
    metrics.add_argument("--json", action="store_true",
                         help="print the raw registry dump instead of text exposition")

    trace = sub.add_parser(
        "trace", help="run a traced fleet demo and dump a Chrome trace")
    trace.add_argument("--backends", type=int, default=2)
    trace.add_argument("--models", default="dig,pos", help="comma-separated model names")
    trace.add_argument("--requests", type=int, default=4,
                       help="traced queries to send through the gateway")
    trace.add_argument("--batch", type=int, default=8,
                       help="dynamic batching max batch on each backend")
    trace.add_argument("--timeout-ms", type=float, default=2.0)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", default="trace.json",
                       help="Chrome trace-event JSON output path ('' to skip)")
    trace.add_argument("--metrics-out", default="",
                       help="also write the fleet metrics exposition here")
    trace.add_argument("--check", action="store_true",
                       help="exit nonzero unless required spans, >=95%% coverage, "
                            "and parseable exposition are all present")
    trace.add_argument("--json", action="store_true",
                       help="print the last trace as JSON span records "
                            "(progress chatter goes to stderr)")

    slow = sub.add_parser(
        "slow", help="trace a fleet and dissect its slowest requests")
    slow.add_argument("--backends", type=int, default=2)
    slow.add_argument("--models", default="dig,pos", help="comma-separated model names")
    slow.add_argument("--requests", type=int, default=24,
                      help="traced queries to send through the gateway")
    slow.add_argument("--batch", type=int, default=8,
                      help="dynamic batching max batch on each backend")
    slow.add_argument("--timeout-ms", type=float, default=2.0)
    slow.add_argument("--seed", type=int, default=0)
    slow.add_argument("--top", type=int, default=3,
                      help="how many tail exemplars to dissect")
    slow.add_argument("--json", action="store_true",
                      help="print span trees and cost ledgers as JSON")

    top = sub.add_parser(
        "top", help="live qps/latency/stage/burn view of a running server")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7889)
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between metric polls")
    top.add_argument("--iterations", type=int, default=0,
                     help="stop after N rendered frames (0 = until Ctrl-C)")
    top.add_argument("--objective", type=float, default=0.99,
                     help="SLO attainment objective for burn-rate math")

    chaos = sub.add_parser(
        "chaos", help="run seeded fault-injection scenarios and check invariants")
    chaos.add_argument("--scenario", default="",
                       help="comma-separated scenario names (default: all)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan seed (same seed -> identical report)")
    chaos.add_argument("--requests", type=int, default=0,
                       help="override the per-scenario request count")
    chaos.add_argument("--json", action="store_true",
                       help="print full invariant reports as JSON")
    chaos.add_argument("--out", default="",
                       help="directory to write per-scenario report JSON into")
    chaos.add_argument("--list", action="store_true",
                       help="print the scenario catalog and exit")

    sub.add_parser("plan", help="capacity and TCO planning summary")

    args = parser.parse_args(argv)
    return {"models": cmd_models, "serve": cmd_serve, "query": cmd_query,
            "stream": cmd_stream,
            "gateway": cmd_gateway, "metrics": cmd_metrics, "trace": cmd_trace,
            "slow": cmd_slow, "top": cmd_top,
            "chaos": cmd_chaos, "plan": cmd_plan}[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
