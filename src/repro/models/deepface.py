"""DeepFace (Taigman et al., CVPR'14) — the FACE network.

Table 1 of the paper: CNN, 8 layers, ~120M parameters.  The 8 layers are
C1-M2-C3-L4-L5-L6-F7-F8, where L4-L6 are *locally connected* (unshared
weights), the layer type responsible for both the parameter count and
FACE's comparatively poor GPU speedup (weights are single-use, so the
forward pass is memory-bandwidth-bound).

Dimensions follow the DeepFace paper: 152x152x3 aligned face input;
L5 uses stride 2.  With the original 4030-way classifier the network has
~118.9M parameters (the Table 1 "120M").  Tonic retargets the classifier to
the 83 celebrities of PubFig83+LFW, which is the default here.
"""

from __future__ import annotations

from ..nn.netspec import LayerSpec, NetSpec

__all__ = ["deepface", "DEEPFACE_ORIGINAL_IDENTITIES", "PUBFIG83_IDENTITIES"]

#: Identity count of the original DeepFace classifier (SFC dataset).
DEEPFACE_ORIGINAL_IDENTITIES = 4030
#: Identity count of Tonic's PubFig83+LFW retarget (paper §3.2.1).
PUBFIG83_IDENTITIES = 83


def deepface(num_identities: int = PUBFIG83_IDENTITIES, include_softmax: bool = True) -> NetSpec:
    """Build the DeepFace spec for 152x152 RGB aligned-face inputs."""
    if num_identities <= 1:
        raise ValueError(f"num_identities must be > 1, got {num_identities}")
    layers = [
        LayerSpec("Convolution", "c1", {"num_output": 32, "kernel_size": 11}),
        LayerSpec("ReLU", "relu1"),
        LayerSpec("Pooling", "m2", {"kernel_size": 3, "stride": 2, "mode": "max"}),
        LayerSpec("Convolution", "c3", {"num_output": 16, "kernel_size": 9}),
        LayerSpec("ReLU", "relu3"),
        LayerSpec("LocallyConnected", "l4", {"num_output": 16, "kernel_size": 9}),
        LayerSpec("ReLU", "relu4"),
        LayerSpec("LocallyConnected", "l5", {"num_output": 16, "kernel_size": 7, "stride": 2}),
        LayerSpec("ReLU", "relu5"),
        LayerSpec("LocallyConnected", "l6", {"num_output": 16, "kernel_size": 5}),
        LayerSpec("ReLU", "relu6"),
        LayerSpec("InnerProduct", "f7", {"num_output": 4096}),
        LayerSpec("ReLU", "relu7"),
        LayerSpec("Dropout", "drop7", {"ratio": 0.5}),
        LayerSpec("InnerProduct", "f8", {"num_output": num_identities}),
    ]
    if include_softmax:
        layers.append(LayerSpec("Softmax", "prob"))
    return NetSpec(name="deepface", input_shape=(3, 152, 152), layers=tuple(layers))
