"""The Tonic model zoo: one entry per application, with Table 1 metadata.

The registry is the single point where application names (``imc``, ``dig``,
``face``, ``asr``, ``pos``, ``chk``, ``ner``) map to network architectures,
mirroring how DjiNN "houses the trained DNN network architecture and
configuration in-memory for each Tonic Suite application" (paper §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..nn.netspec import NetSpec
from ..nn.network import Net
from .alexnet import alexnet
from .deepface import deepface
from .kaldi import kaldi_asr
from .lenet import lenet5
from .senna import senna

__all__ = ["ModelInfo", "APPLICATIONS", "model_info", "build_spec", "build_net", "weighted_layer_count"]


@dataclass(frozen=True)
class ModelInfo:
    """Table 1 row: application, source network, type, published size."""

    app: str                      # tonic application key, e.g. "imc"
    title: str                    # e.g. "Image Classification (IMC)"
    service: str                  # "image" | "speech" | "nlp"
    network: str                  # published network name (AlexNet, ...)
    network_type: str             # "CNN" | "DNN"
    paper_layers: int             # layer count as quoted in Table 1
    paper_params: int             # parameter count as quoted in Table 1
    factory: Callable[[], NetSpec]


_REGISTRY: Dict[str, ModelInfo] = {}


def _register(info: ModelInfo) -> None:
    _REGISTRY[info.app] = info


_register(ModelInfo("imc", "Image Classification (IMC)", "image", "AlexNet", "CNN", 22, 60_000_000, alexnet))
_register(ModelInfo("dig", "Digit Recognition (DIG)", "image", "MNIST", "CNN", 7, 60_000, lenet5))
_register(ModelInfo("face", "Facial Recognition (FACE)", "image", "DeepFace", "CNN", 8, 120_000_000, deepface))
_register(ModelInfo("asr", "Automatic Speech Recognition (ASR)", "speech", "Kaldi", "DNN", 13, 30_000_000, kaldi_asr))
_register(ModelInfo("pos", "Part-of-Speech Tagging (POS)", "nlp", "SENNA", "DNN", 3, 180_000, lambda: senna("pos")))
_register(ModelInfo("chk", "Chunking (CHK)", "nlp", "SENNA", "DNN", 3, 180_000, lambda: senna("chk")))
_register(ModelInfo("ner", "Name Entity Recognition (NER)", "nlp", "SENNA", "DNN", 3, 180_000, lambda: senna("ner")))

#: Tonic Suite application keys in the paper's presentation order.
APPLICATIONS: Tuple[str, ...] = ("imc", "dig", "face", "asr", "pos", "chk", "ner")


def model_info(app: str) -> ModelInfo:
    """Table 1 metadata for an application key."""
    try:
        return _REGISTRY[app]
    except KeyError:
        raise ValueError(f"unknown application {app!r}; known: {sorted(_REGISTRY)}") from None


def build_spec(app: str) -> NetSpec:
    """The network spec for an application."""
    return model_info(app).factory()


def build_net(app: str, materialize: bool = False, seed: int = 0) -> Net:
    """An instantiated network, optionally with seeded synthetic weights.

    Shape-only nets (the default) cost nothing to build and are what the GPU
    performance model consumes; materialize only when running real inference.
    """
    net = Net(build_spec(app))
    if materialize:
        net.materialize(seed)
    return net


#: Layer types that do not appear as standalone stages in classic layer
#: counts (LeNet-5's "7 layers" counts weighted + pooling stages only).
_TRANSPARENT = {"ReLU", "Sigmoid", "Tanh", "HardTanh", "Dropout", "Softmax", "Flatten"}


def weighted_layer_count(spec: NetSpec) -> int:
    """Weighted + pooling + normalization stages (LeNet-style layer count)."""
    return sum(1 for layer in spec.layers if layer.type not in _TRANSPARENT)
