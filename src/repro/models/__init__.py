"""``repro.models`` — the Tonic Suite model zoo (paper Table 1).

Seven applications backed by five architectures: AlexNet (IMC), LeNet-5
(DIG), DeepFace (FACE), a Kaldi-style hybrid acoustic DNN (ASR), and three
SENNA window networks (POS, CHK, NER).
"""

from .alexnet import alexnet
from .deepface import DEEPFACE_ORIGINAL_IDENTITIES, PUBFIG83_IDENTITIES, deepface
from .kaldi import DEFAULT_SENONES, FBANK_DIMS, SPLICE_FRAMES, kaldi_asr
from .lenet import lenet5
from .registry import (
    APPLICATIONS,
    ModelInfo,
    build_net,
    build_spec,
    model_info,
    weighted_layer_count,
)
from .senna import CHUNK_TAGS, NER_TAGS, POS_TAGS, senna

__all__ = [
    "alexnet",
    "lenet5",
    "deepface",
    "kaldi_asr",
    "senna",
    "APPLICATIONS",
    "ModelInfo",
    "build_net",
    "build_spec",
    "model_info",
    "weighted_layer_count",
    "POS_TAGS",
    "CHUNK_TAGS",
    "NER_TAGS",
    "SPLICE_FRAMES",
    "FBANK_DIMS",
    "DEFAULT_SENONES",
    "PUBFIG83_IDENTITIES",
    "DEEPFACE_ORIGINAL_IDENTITIES",
]
