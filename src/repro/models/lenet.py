"""LeNet-5 (LeCun et al., 1998) — the DIG network.

Table 1 of the paper: CNN, 7 layers, ~60K parameters.  This matches the
original LeNet-5 (61,706 weights; C1-S2-C3-S4-C5-F6-OUTPUT = 7 weighted/
pooling stages) rather than Caffe's larger ``lenet.prototxt`` (~430K).
Inputs are 32x32 single-channel images (28x28 MNIST-style digits padded by
2, as in the original paper).
"""

from __future__ import annotations

from ..nn.netspec import LayerSpec, NetSpec

__all__ = ["lenet5"]


def lenet5(num_classes: int = 10, include_softmax: bool = True) -> NetSpec:
    """Build the LeNet-5 spec for 32x32 grayscale inputs."""
    layers = [
        LayerSpec("Convolution", "c1", {"num_output": 6, "kernel_size": 5}),
        LayerSpec("Tanh", "act1"),
        LayerSpec("Pooling", "s2", {"kernel_size": 2, "stride": 2, "mode": "ave"}),
        LayerSpec("Convolution", "c3", {"num_output": 16, "kernel_size": 5}),
        LayerSpec("Tanh", "act3"),
        LayerSpec("Pooling", "s4", {"kernel_size": 2, "stride": 2, "mode": "ave"}),
        # C5 in the original is a 5x5 convolution that exactly covers the
        # 5x5 input, i.e. a fully connected layer over 16x5x5 = 400 inputs.
        LayerSpec("InnerProduct", "c5", {"num_output": 120}),
        LayerSpec("Tanh", "act5"),
        LayerSpec("InnerProduct", "f6", {"num_output": 84}),
        LayerSpec("Tanh", "act6"),
        LayerSpec("InnerProduct", "output", {"num_output": num_classes}),
    ]
    if include_softmax:
        layers.append(LayerSpec("Softmax", "prob"))
    return NetSpec(name="lenet5", input_shape=(1, 32, 32), layers=tuple(layers))
