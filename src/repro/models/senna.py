"""SENNA window networks (Collobert et al., JMLR'11) — POS / CHK / NER.

Table 1 of the paper: DNN, 3 layers, ~180K parameters each.  SENNA's window
approach scores one word at a time from a 5-word context window; each word
contributes a 50-dim word embedding plus a 10-dim discrete-feature embedding
(capitalization and, for CHK, the POS tag produced by a chained POS request
— paper §3.2.3).  That gives 5 x 60 = 300 inputs into Linear(500) ->
HardTanh -> Linear(tags): 173K parameters for POS's 45 tags, i.e. the
"180K" of Table 1.

Embedding lookups are *preprocessing* (they happen app-side in
:mod:`repro.tonic.nlp`, as in Tonic); the network itself is the 3-layer DNN
the DjiNN service runs.
"""

from __future__ import annotations

from ..nn.netspec import LayerSpec, NetSpec

__all__ = [
    "senna",
    "WINDOW",
    "WORD_DIM",
    "FEATURE_DIM",
    "POS_TAGS",
    "CHUNK_TAGS",
    "NER_TAGS",
]

#: Context window (2 words either side of the scored word).
WINDOW = 5
#: Word-embedding dimensionality.
WORD_DIM = 50
#: Discrete-feature embedding dimensionality (caps / chained POS).
FEATURE_DIM = 10

#: Penn Treebank part-of-speech tag set (45 tags), as used by SENNA.
POS_TAGS = (
    "CC CD DT EX FW IN JJ JJR JJS LS MD NN NNS NNP NNPS PDT POS PRP PRP$ "
    "RB RBR RBS RP SYM TO UH VB VBD VBG VBN VBP VBZ WDT WP WP$ WRB "
    "# $ '' ( ) , . : ``"
).split()

#: CoNLL-2000 chunking tag set (IOB2 over 11 phrase types + O = 23 tags).
CHUNK_TAGS = tuple(
    f"{prefix}-{phrase}"
    for phrase in ("NP", "VP", "PP", "ADVP", "ADJP", "SBAR", "PRT", "CONJP", "INTJ", "LST", "UCP")
    for prefix in ("B", "I")
) + ("O",)

#: CoNLL-2003 named-entity tag set (IOB2 over 4 entity types + O = 9 tags).
NER_TAGS = tuple(
    f"{prefix}-{entity}" for entity in ("PER", "LOC", "ORG", "MISC") for prefix in ("B", "I")
) + ("O",)

_TASK_TAGS = {"pos": len(POS_TAGS), "chk": len(CHUNK_TAGS), "ner": len(NER_TAGS)}


def senna(
    task: str = "pos",
    hidden_units: int = 500,
    num_tags: int = None,
    include_softmax: bool = True,
) -> NetSpec:
    """Build a SENNA window-network spec for ``task`` in {'pos','chk','ner'}."""
    if num_tags is None:
        try:
            num_tags = _TASK_TAGS[task]
        except KeyError:
            raise ValueError(f"unknown SENNA task {task!r}; known: {sorted(_TASK_TAGS)}") from None
    input_dim = WINDOW * (WORD_DIM + FEATURE_DIM)
    layers = [
        LayerSpec("InnerProduct", "l1", {"num_output": hidden_units}),
        LayerSpec("HardTanh", "hardtanh"),
        LayerSpec("InnerProduct", "l3", {"num_output": num_tags}),
    ]
    if include_softmax:
        layers.append(LayerSpec("Softmax", "prob"))
    return NetSpec(name=f"senna_{task}", input_shape=(input_dim,), layers=tuple(layers))
