"""Kaldi-style DNN acoustic model — the ASR network.

Table 1 of the paper: DNN, 13 layers, ~30M parameters.  This is the standard
Kaldi nnet1 hybrid recipe of the era: spliced filterbank features (11 frames
x 40 dims = 440 inputs), six 2048-unit sigmoid hidden layers, and a senone
softmax.  The 13 layers are the six (affine, sigmoid) pairs plus the output
affine; ~29.2M parameters with 3483 senones.

The DjiNN service evaluates this network once per feature frame; a Tonic ASR
query ships a whole utterance of frames at once (Table 3: 548 feature
vectors per query), which is why ASR keeps a GPU busy even at batch size 1.
"""

from __future__ import annotations

from ..nn.netspec import LayerSpec, NetSpec

__all__ = ["kaldi_asr", "SPLICE_FRAMES", "FBANK_DIMS", "DEFAULT_SENONES"]

#: Context splicing: 5 frames either side of the center frame.
SPLICE_FRAMES = 11
#: Log-mel filterbank coefficients per frame.
FBANK_DIMS = 40
#: Tied-triphone state (senone) count of the hybrid system.
DEFAULT_SENONES = 3483


def kaldi_asr(
    num_senones: int = DEFAULT_SENONES,
    hidden_units: int = 2048,
    hidden_layers: int = 6,
    include_softmax: bool = True,
) -> NetSpec:
    """Build the Kaldi acoustic-model spec over spliced fbank inputs."""
    if hidden_layers < 1:
        raise ValueError(f"need at least one hidden layer, got {hidden_layers}")
    layers = []
    for i in range(1, hidden_layers + 1):
        layers.append(LayerSpec("InnerProduct", f"affine{i}", {"num_output": hidden_units}))
        layers.append(LayerSpec("Sigmoid", f"sigmoid{i}"))
    layers.append(LayerSpec("InnerProduct", "senone", {"num_output": num_senones}))
    if include_softmax:
        layers.append(LayerSpec("Softmax", "posterior"))
    return NetSpec(
        name="kaldi_asr",
        input_shape=(SPLICE_FRAMES * FBANK_DIMS,),
        layers=tuple(layers),
    )
