"""AlexNet (Krizhevsky et al., NIPS'12) — the IMC network.

Table 1 of the paper: CNN, 22 layers, ~60M parameters, 1000 ImageNet classes.
This is the exact Caffe ``bvlc_alexnet`` topology: the 22 layers are the
prototxt stages conv1..fc8 (convolutions, ReLUs, pools, LRNs, dropouts and
inner products); the inference-time softmax rides on top as in Caffe.
"""

from __future__ import annotations

from ..nn.netspec import LayerSpec, NetSpec

__all__ = ["alexnet"]


def alexnet(num_classes: int = 1000, include_softmax: bool = True) -> NetSpec:
    """Build the AlexNet spec for 227x227 RGB inputs."""
    if num_classes <= 1:
        raise ValueError(f"num_classes must be > 1, got {num_classes}")
    gauss = lambda std: ("gaussian", {"std": std})  # noqa: E731 - local shorthand
    layers = [
        LayerSpec("Convolution", "conv1", {"num_output": 96, "kernel_size": 11, "stride": 4, "weight_filler": gauss(0.01)}),
        LayerSpec("ReLU", "relu1"),
        LayerSpec("Pooling", "pool1", {"kernel_size": 3, "stride": 2, "mode": "max"}),
        LayerSpec("LRN", "norm1", {"local_size": 5, "alpha": 1e-4, "beta": 0.75}),
        LayerSpec("Convolution", "conv2", {"num_output": 256, "kernel_size": 5, "pad": 2, "group": 2, "weight_filler": gauss(0.01)}),
        LayerSpec("ReLU", "relu2"),
        LayerSpec("Pooling", "pool2", {"kernel_size": 3, "stride": 2, "mode": "max"}),
        LayerSpec("LRN", "norm2", {"local_size": 5, "alpha": 1e-4, "beta": 0.75}),
        LayerSpec("Convolution", "conv3", {"num_output": 384, "kernel_size": 3, "pad": 1, "weight_filler": gauss(0.01)}),
        LayerSpec("ReLU", "relu3"),
        LayerSpec("Convolution", "conv4", {"num_output": 384, "kernel_size": 3, "pad": 1, "group": 2, "weight_filler": gauss(0.01)}),
        LayerSpec("ReLU", "relu4"),
        LayerSpec("Convolution", "conv5", {"num_output": 256, "kernel_size": 3, "pad": 1, "group": 2, "weight_filler": gauss(0.01)}),
        LayerSpec("ReLU", "relu5"),
        LayerSpec("Pooling", "pool5", {"kernel_size": 3, "stride": 2, "mode": "max"}),
        LayerSpec("InnerProduct", "fc6", {"num_output": 4096, "weight_filler": gauss(0.005)}),
        LayerSpec("ReLU", "relu6"),
        LayerSpec("Dropout", "drop6", {"ratio": 0.5}),
        LayerSpec("InnerProduct", "fc7", {"num_output": 4096, "weight_filler": gauss(0.005)}),
        LayerSpec("ReLU", "relu7"),
        LayerSpec("Dropout", "drop7", {"ratio": 0.5}),
        LayerSpec("InnerProduct", "fc8", {"num_output": num_classes, "weight_filler": gauss(0.01)}),
    ]
    if include_softmax:
        layers.append(LayerSpec("Softmax", "prob"))
    return NetSpec(name="alexnet", input_shape=(3, 227, 227), layers=tuple(layers))
