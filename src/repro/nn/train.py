"""Minibatch SGD training.

The paper serves *pre-trained* models; training is out of its scope, but a
reproduction needs weights from somewhere.  Large nets get seeded synthetic
weights (throughput does not depend on weight values); the small nets (DIG's
LeNet-5, SENNA's taggers) are genuinely trained on synthetic datasets with
this solver so the end-to-end examples classify correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from .layers.softmax import softmax_cross_entropy
from .network import Net

__all__ = ["SgdSolver", "TrainLog", "accuracy"]


@dataclass
class TrainLog:
    """Per-step loss history plus per-epoch evaluation accuracy."""

    losses: List[float] = field(default_factory=list)
    epoch_accuracy: List[float] = field(default_factory=list)


def accuracy(net: Net, inputs: np.ndarray, labels: np.ndarray, batch: int = 256) -> float:
    """Top-1 accuracy of ``net`` over a dataset."""
    if len(inputs) == 0:
        raise ValueError("empty evaluation set")
    correct = 0
    for start in range(0, len(inputs), batch):
        xb = inputs[start : start + batch]
        yb = labels[start : start + batch]
        correct += int((net.predict(xb) == yb).sum())
    return correct / len(inputs)


class SgdSolver:
    """Plain SGD with momentum and L2 weight decay (Caffe's default solver).

    The solver trains a net whose final layer emits *logits*; the softmax and
    cross-entropy are fused in the loss (build nets for training with
    ``spec.without("Softmax")``).
    """

    def __init__(
        self,
        net: Net,
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        lr_decay: float = 1.0,
    ):
        if not net.materialized:
            raise ValueError("materialize the net before constructing a solver")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.net = net
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.lr_decay = lr_decay
        self._velocity = [np.zeros(b.shape, dtype=np.float32) for b in net.params()]

    def step(self, x: np.ndarray, labels: np.ndarray) -> float:
        """One forward/backward/update step on a minibatch; returns the loss."""
        self.net.zero_grad()
        logits = self.net.forward(x, train=True)
        loss, dlogits = softmax_cross_entropy(logits, labels)
        self.net.backward(dlogits)
        for blob, vel in zip(self.net.params(), self._velocity):
            grad = blob.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * blob.data
            vel *= self.momentum
            vel -= self.lr * grad
            blob.data += vel
        return loss

    def fit(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        epochs: int = 1,
        batch: int = 32,
        seed: int = 0,
        eval_set: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        on_epoch: Optional[Callable[[int, TrainLog], None]] = None,
    ) -> TrainLog:
        """Train over a dataset for ``epochs`` passes with shuffling."""
        if len(inputs) != len(labels):
            raise ValueError("inputs and labels disagree on length")
        rng = np.random.default_rng(seed)
        log = TrainLog()
        for epoch in range(epochs):
            order = rng.permutation(len(inputs))
            for start in range(0, len(inputs), batch):
                idx = order[start : start + batch]
                log.losses.append(self.step(inputs[idx], labels[idx]))
            if eval_set is not None:
                log.epoch_accuracy.append(accuracy(self.net, *eval_set))
            if on_epoch is not None:
                on_epoch(epoch, log)
            self.lr *= self.lr_decay
        return log
