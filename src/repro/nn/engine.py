"""Planned execution: compile a net into an arena-backed ``ExecutionPlan``.

The paper's serving path pays its latency in GEMMs; this numpy substrate was
paying it in allocation — every ``Net.forward`` built fresh activation and
im2col buffers, so the "steady state" of a DjiNN backend was a page-fault
loop.  The fix follows the TPU playbook: walk the layer graph once, size
every output and scratch buffer for a maximum batch, and lay them out in one
reusable arena so repeated forwards allocate nothing.

Compilation
-----------
:class:`ExecutionPlan` accepts either a sequential :class:`repro.nn.Net` or a
DAG :class:`repro.nn.GraphNet` (duck-typed on its ``_specs`` table) and
lowers it to a list of steps, one per layer.  Each step's output buffer is
assigned by a liveness scan:

* ``plan_alias`` layers (Dropout at inference, Flatten) produce a *view* of
  their input's buffer — no memory, no kernel;
* ``plan_inplace`` layers (activations, Softmax) write over their input's
  buffer when nothing else reads it later (DAG fan-out disables this);
* everything else gets a first-fit offset among the buffers live at that
  step, so ping/pong reuse falls out of lifetime analysis rather than a
  hard-coded double-buffer scheme.

Per-layer scratch (im2col columns, padded copies, reduction slots — declared
via :meth:`repro.nn.layers.base.Layer.plan_scratch`) shares a single slab
sized by the hungriest step; steps never overlap in time, so the slab needs
no liveness tracking.

Execution
---------
``execute(n)`` runs the compiled steps over the arena for any batch ``n`` up
to ``max_batch`` — partial batches are prefix views, no re-stack, and the
views are cached per ``n`` so the steady state creates no Python garbage
either.  The per-layer ``timer`` hook (:class:`repro.obs.LayerTimer`) fires
for every step, including aliases, so the planned path emits the exact span
taxonomy of the legacy loop.

Because both paths run the same ``forward_into`` kernels, planned output is
byte-identical to the allocating ``forward`` — the equivalence suite in
``tests/test_engine.py`` pins that per model.

Thread safety: a plan is one arena, so callers must hold :attr:`lock` around
gather + execute + result consumption.  ``Net.forward`` and
:class:`repro.core.BatchingExecutor` both do; the latter keeps the lock until
every response view has been serialized (its lease barrier).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from .layers.base import Layer
from .layers.merge import MultiInputLayer

__all__ = ["PlanError", "ExecutionPlan", "LayerCache", "LayerCacheConfig",
           "measure_steady_state_alloc"]

#: Reserved top name for the network input (mirrors ``repro.nn.graph.INPUT``).
INPUT = "input"

#: Byte alignment of every arena / scratch region.
ALIGN = 64

_F32 = np.dtype(np.float32)


class PlanError(RuntimeError):
    """A net cannot be compiled or a plan is used outside its envelope."""


def _align(nbytes: int) -> int:
    return (nbytes + ALIGN - 1) & ~(ALIGN - 1)


class _Step:
    """One compiled layer invocation."""

    __slots__ = ("layer", "bottoms", "top", "alias", "multi")

    def __init__(self, layer: Layer, bottoms: List[str], top: str):
        self.layer = layer
        self.bottoms = bottoms
        self.top = top
        self.alias = bool(layer.plan_alias)
        self.multi = isinstance(layer, MultiInputLayer)


class _Views:
    """Per-batch-size bound views over the arena (cached per ``n``)."""

    __slots__ = ("input", "output", "steps", "tops")

    def __init__(self, input_view, output_view, steps, tops):
        self.input = input_view
        self.output = output_view
        self.steps = steps
        self.tops = tops


class ExecutionPlan:
    """A net compiled for batches up to ``max_batch`` over one arena.

    ``allocate=False`` compiles shapes and layout only (no arena), which is
    what :func:`repro.nn.workspace.plan_footprint` uses to cost a plan
    without committing the memory.
    """

    def __init__(self, net, max_batch: int, allocate: bool = True):
        if max_batch < 1:
            raise PlanError(f"max_batch must be >= 1, got {max_batch}")
        self.net = net
        self.max_batch = int(max_batch)
        self.lock = threading.RLock()
        self._steps, self._output = self._extract(net)
        self._shapes: Dict[str, Tuple[int, ...]] = {INPUT: tuple(net.input_shape)}
        for step in self._steps:
            self._shapes[step.top] = tuple(step.layer.out_shape)
        self._assign_slots()
        self._layout()
        self.scratch_bytes = max(
            (self._scratch_total(step, self.max_batch) for step in self._steps),
            default=0,
        )
        self._arena: Optional[np.ndarray] = None
        self._scratch: Optional[np.ndarray] = None
        self._view_cache: Dict[int, _Views] = {}
        if allocate:
            # zeros (not empty) so a fresh plan is deterministic: stale-data
            # bleed between batches would show up as an exact-equality diff
            self._arena = np.zeros(self.arena_bytes, dtype=np.uint8)
            self._scratch = np.zeros(self.scratch_bytes, dtype=np.uint8)

    # ------------------------------------------------------------ compile
    @staticmethod
    def _extract(net) -> Tuple[List[_Step], str]:
        layers = getattr(net, "layers", None)
        if not layers:
            raise PlanError(f"net {getattr(net, 'name', net)!r} has no layers")
        specs = getattr(net, "_specs", None)
        steps: List[_Step] = []
        if specs is not None:  # GraphNet: named bottoms, declared output
            for layer in layers:
                spec = specs[layer.name]
                steps.append(_Step(layer, list(spec.bottoms), layer.name))
            output = net.spec.output
        else:  # Net: a chain
            prev = INPUT
            for layer in layers:
                steps.append(_Step(layer, [prev], layer.name))
                prev = layer.name
            output = prev
        for step in steps:
            if step.alias and len(step.bottoms) != 1:
                raise PlanError(
                    f"alias layer {step.layer.name!r} must have exactly one bottom")
        return steps, output

    def _sample_bytes(self, name: str) -> int:
        return int(np.prod(self._shapes[name])) * _F32.itemsize

    def _assign_slots(self) -> None:
        """Map every top to a storage slot (alias/in-place merge inputs)."""
        steps = self._steps
        reads: Dict[str, List[int]] = {INPUT: []}
        for i, step in enumerate(steps):
            reads[step.top] = []
            for bottom in step.bottoms:
                reads[bottom].append(i)
        # the network output must survive until after the last step
        reads[self._output].append(len(steps))

        slot_of: Dict[str, int] = {INPUT: 0}
        slot_names: List[List[str]] = [[INPUT]]
        slot_bytes: List[int] = [self._sample_bytes(INPUT)]

        def fresh_slot(name: str) -> int:
            slot_names.append([name])
            slot_bytes.append(self._sample_bytes(name))
            return len(slot_names) - 1

        for i, step in enumerate(steps):
            nbytes = self._sample_bytes(step.top)
            slot = None
            if step.alias or (step.layer.plan_inplace and len(step.bottoms) == 1):
                candidate = slot_of[step.bottoms[0]]
                if step.alias:
                    if nbytes != slot_bytes[candidate]:
                        raise PlanError(
                            f"alias layer {step.layer.name!r} changes buffer size")
                    slot = candidate
                # in-place: legal only if no later step reads anything stored
                # in the candidate slot, and never over the input slab (the
                # serve path gathers the next batch into it)
                elif (candidate != 0 and nbytes == slot_bytes[candidate]
                        and not any(j > i for name in slot_names[candidate]
                                    for j in reads[name])):
                    slot = candidate
            if slot is None:
                slot = fresh_slot(step.top)
            else:
                slot_names[slot].append(step.top)
            slot_of[step.top] = slot

        last_use = [0] * len(slot_names)
        produced_at: Dict[str, int] = {INPUT: -1}
        for i, step in enumerate(steps):
            produced_at[step.top] = i
        for slot, names in enumerate(slot_names):
            last_use[slot] = max(
                max((produced_at[name] for name in names)),
                max((j for name in names for j in reads[name]), default=-1),
            )
        self._slot_of = slot_of
        self._slot_bytes = slot_bytes
        self._slot_last_use = last_use
        # retained for split-point liveness (live_tops / run_from)
        self._reads = reads
        self._produced_at = produced_at

    def _layout(self) -> None:
        """First-fit offsets driven by slot liveness (the ping/pong slabs)."""
        max_batch = self.max_batch
        offsets: List[Optional[int]] = [None] * len(self._slot_bytes)
        live: List[Tuple[int, int, int]] = []  # (offset, end, slot)

        def place(slot: int) -> None:
            size = _align(self._slot_bytes[slot] * max_batch)
            candidates = sorted({0, *(end for _, end, _ in live)})
            for off in candidates:
                if all(off + size <= o or off >= e for o, e, _ in live):
                    offsets[slot] = off
                    live.append((off, off + size, slot))
                    return
            raise PlanError("first-fit placement failed")  # pragma: no cover

        def release(step_index: int) -> None:
            live[:] = [iv for iv in live
                       if self._slot_last_use[iv[2]] > step_index]

        place(0)  # the input slab
        release(-1)
        for i, step in enumerate(self._steps):
            slot = self._slot_of[step.top]
            if offsets[slot] is None:
                place(slot)  # outputs placed before this step's inputs die
            release(i)
        self._slot_offsets = [off if off is not None else 0 for off in offsets]
        self.arena_bytes = max(
            (self._slot_offsets[s] + _align(self._slot_bytes[s] * max_batch)
             for s in range(len(self._slot_bytes))),
            default=0,
        )

    @staticmethod
    def _scratch_total(step: _Step, batch: int) -> int:
        total = 0
        for shape, dtype in step.layer.plan_scratch(batch).values():
            total += _align(int(np.prod(shape)) * np.dtype(dtype).itemsize)
        return total

    # ------------------------------------------------------------- binding
    def _views_for(self, n: int) -> _Views:
        views = self._view_cache.get(n)
        if views is not None:
            return views
        if not 1 <= n <= self.max_batch:
            raise PlanError(
                f"batch {n} outside plan envelope [1, {self.max_batch}]")
        if self._arena is None:
            raise PlanError("plan was compiled with allocate=False")
        top_view: Dict[str, np.ndarray] = {}
        for name, shape in self._shapes.items():
            off = self._slot_offsets[self._slot_of[name]]
            nbytes = n * self._sample_bytes(name)
            top_view[name] = (
                self._arena[off:off + nbytes].view(_F32).reshape((n,) + shape))
        bound = []
        for step in self._steps:
            scratch: Dict[str, np.ndarray] = {}
            off = 0
            for key, (shape, dtype) in step.layer.plan_scratch(n).items():
                dtype = np.dtype(dtype)
                nbytes = int(np.prod(shape)) * dtype.itemsize
                scratch[key] = (
                    self._scratch[off:off + nbytes].view(dtype).reshape(shape))
                off += _align(nbytes)
            xs = [top_view[b] for b in step.bottoms]
            bound.append((step, xs, top_view[step.top], scratch))
        views = _Views(top_view[INPUT], top_view[self._output], bound, top_view)
        self._view_cache[n] = views
        return views

    def input_view(self, n: int) -> np.ndarray:
        """The input slab for a batch of ``n`` — gather payloads into this."""
        return self._views_for(n).input

    def output_view(self, n: int) -> np.ndarray:
        """The output slab view for a batch of ``n`` (valid post-execute)."""
        return self._views_for(n).output

    # ------------------------------------------------------------- execute
    def execute(self, n: int, timer=None) -> np.ndarray:
        """Run the plan over whatever is in the input slab for batch ``n``.

        Returns the output-slab view (owned by the arena: callers copy it or
        hold :attr:`lock` until they are done reading).  ``timer`` is the
        same begin/end hook the legacy loop drives, fired for every step —
        alias steps included — so profiles and ``layer.*`` spans match.
        """
        if not self.net.materialized:
            raise PlanError(f"net {self.net.name!r} is not materialized")
        views = self._views_for(n)
        for step, xs, out, scratch in views.steps:
            layer = step.layer
            if timer is not None:
                timer.begin(layer)
            if not step.alias:
                layer.forward_into(xs if step.multi else xs[0], out, scratch,
                                   train=False)
            if timer is not None:
                timer.end(layer)
        return views.output

    def execute_range(self, n: int, start: int, stop: Optional[int] = None,
                      timer=None) -> np.ndarray:
        """Run only steps ``[start, stop)`` over the arena for batch ``n``.

        The building block of split execution: ``execute_range(n, 0, k + 1)``
        is the prefix through layer ``k``, ``execute_range(n, k + 1)`` the
        suffix from it.  Callers restoring state for a suffix run must have
        written every :meth:`live_tops` buffer first (``run_from`` does).
        Returns the output-slab view (meaningful once the final step ran).
        """
        if not self.net.materialized:
            raise PlanError(f"net {self.net.name!r} is not materialized")
        if stop is None:
            stop = len(self._steps)
        if not 0 <= start <= stop <= len(self._steps):
            raise PlanError(
                f"step range [{start}, {stop}) outside plan "
                f"[0, {len(self._steps)})")
        views = self._views_for(n)
        for step, xs, out, scratch in views.steps[start:stop]:
            layer = step.layer
            if timer is not None:
                timer.begin(layer)
            if not step.alias:
                layer.forward_into(xs if step.multi else xs[0], out, scratch,
                                   train=False)
            if timer is not None:
                timer.end(layer)
        return views.output

    # -------------------------------------------------------- split points
    def live_tops(self, k: int) -> Tuple[str, ...]:
        """Tops still needed by steps after ``k`` — the restore set.

        A suffix run from split point ``k`` (steps ``k+1..``) reads exactly
        these buffers: every top produced at or before step ``k`` (the input
        counts as step ``-1``) with a reader after ``k``.  The network
        output's phantom read keeps it live through the last step.  Slot
        reuse never clobbers a live top *before* its last read, so a
        snapshot taken right after step ``k`` executes is always intact.
        """
        if not 0 <= k < len(self._steps):
            raise PlanError(
                f"split point {k} outside plan steps [0, {len(self._steps)})")
        names = []
        for name in self._shapes:
            if self._produced_at.get(name, -1) > k:
                continue
            if any(j > k for j in self._reads[name]):
                names.append(name)
        return tuple(names)

    def safe_splits(self) -> Tuple[int, ...]:
        """Split points where step ``k``'s own top is the *only* live buffer.

        At these points a digest of layer ``k``'s activation fully
        determines the suffix output, which is what makes layer caching
        sound there (see :class:`LayerCache`).  Chains qualify at every
        layer; DAG fan-out regions disqualify the splits they span.
        """
        return tuple(
            k for k in range(len(self._steps))
            if self.live_tops(k) == (self._steps[k].top,))

    def snapshot(self, k: int, n: int) -> Dict[str, np.ndarray]:
        """Owned copies of every live top at split ``k`` for batch ``n``.

        Only meaningful immediately after the prefix through step ``k`` has
        executed for this batch (``execute_range(n, 0, k + 1)``); later
        steps may reuse a live top's arena range once its last read passes.
        Callers hold :attr:`lock`.
        """
        views = self._views_for(n)
        return {name: views.tops[name].copy() for name in self.live_tops(k)}

    def run_from(self, k: int,
                 restored: Union[np.ndarray, Mapping[str, np.ndarray]],
                 timer=None) -> np.ndarray:
        """Restore split-``k`` state and execute only the suffix.

        ``restored`` maps top names to ``(n, *shape)`` activations — a
        :meth:`snapshot` taken at the same split — or is a bare array when
        a single top is live there (every :meth:`safe_splits` point).  The
        suffix runs the same ``forward_into`` kernels over the same arena
        views as a full pass at batch ``n``, so the result is byte-identical
        to the full execution that produced the snapshot — pinned per model
        and per split in ``tests/test_cache.py``.  Returns an owned copy.
        """
        names = self.live_tops(k)
        if isinstance(restored, np.ndarray):
            if len(names) != 1:
                raise PlanError(
                    f"split {k} has live tops {names}; pass a mapping")
            restored = {names[0]: restored}
        if set(restored) != set(names):
            raise PlanError(
                f"split {k} needs tops {sorted(names)}, "
                f"got {sorted(restored)}")
        sizes = {np.asarray(a).shape[0] for a in restored.values()}
        if len(sizes) != 1:
            raise PlanError(f"inconsistent batch sizes {sorted(sizes)}")
        n = sizes.pop()
        with self.lock:
            views = self._views_for(n)
            for name in names:
                arr = np.asarray(restored[name], dtype=np.float32)
                if arr.shape != views.tops[name].shape:
                    raise PlanError(
                        f"restored top {name!r} has shape {arr.shape}, "
                        f"plan expects {views.tops[name].shape}")
                np.copyto(views.tops[name], arr)
            return self.execute_range(n, k + 1, timer=timer).copy()

    def run(self, x: np.ndarray, timer=None) -> np.ndarray:
        """Gather ``x`` into the arena, execute, return an owned copy.

        This is the safe single-caller surface ``Net.forward`` dispatches
        through; the copy-free path (views + lease barrier) lives in
        :class:`repro.core.BatchingExecutor`.
        """
        x = np.asarray(x, dtype=np.float32)
        n = x.shape[0]
        with self.lock:
            inp = self.input_view(n)
            if x.shape != inp.shape:
                raise PlanError(
                    f"plan expects input of shape {inp.shape}, got {x.shape}")
            np.copyto(inp, x)
            return self.execute(n, timer=timer).copy()

    def run_into(self, x: np.ndarray, out: np.ndarray, timer=None) -> np.ndarray:
        """Gather ``x``, execute, and write the batch result into ``out``.

        The destination-passing twin of :meth:`run`: ``out`` is typically a
        response-slot view over a shared-memory ring
        (:mod:`repro.core.procpool`), so the steady state moves exactly two
        slabs — input into the arena, output into the slot — and allocates
        nothing.  Returns ``out``.
        """
        x = np.asarray(x, dtype=np.float32)
        n = x.shape[0]
        with self.lock:
            inp = self.input_view(n)
            if x.shape != inp.shape:
                raise PlanError(
                    f"plan expects input of shape {inp.shape}, got {x.shape}")
            result_shape = self.output_view(n).shape
            if tuple(out.shape) != result_shape:
                raise PlanError(
                    f"plan produces output of shape {result_shape}, "
                    f"destination has {tuple(out.shape)}")
            np.copyto(inp, x)
            np.copyto(out, self.execute(n, timer=timer))
        return out

    # ------------------------------------------------------------ reports
    def describe(self) -> dict:
        """Layout summary (arena map, slot sharing, scratch high-water)."""
        steps = []
        for step in self._steps:
            slot = self._slot_of[step.top]
            steps.append({
                "layer": step.layer.name,
                "type": step.layer.type_name,
                "top": step.top,
                "bottoms": list(step.bottoms),
                "mode": ("alias" if step.alias else
                         "inplace" if slot == self._slot_of[step.bottoms[0]]
                         and len(step.bottoms) == 1 else "compute"),
                "slot": slot,
                "offset": self._slot_offsets[slot],
                "bytes": self._slot_bytes[slot] * self.max_batch,
                "scratch_bytes": self._scratch_total(step, self.max_batch),
            })
        return {
            "net": self.net.name,
            "max_batch": self.max_batch,
            "arena_bytes": self.arena_bytes,
            "scratch_bytes": self.scratch_bytes,
            "slots": len(self._slot_bytes),
            "steps": steps,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ExecutionPlan({self.net.name!r}, max_batch={self.max_batch}, "
                f"arena={self.arena_bytes}B, scratch={self.scratch_bytes}B)")


@dataclass(frozen=True)
class LayerCacheConfig:
    """Knobs for :class:`LayerCache` (the engine-level activation cache).

    ``split`` is the step index to cache at (``-1`` picks the earliest safe
    split, maximizing the skipped suffix); ``max_entries`` bounds the LRU of
    retained activation snapshots; ``tolerance`` quantizes the activation
    digest so near-duplicates share a key (``0.0`` = exact bytes only, the
    lossless default).
    """

    split: int = -1
    max_entries: int = 256
    tolerance: float = 0.0

    def __post_init__(self):
        if self.max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {self.max_entries}")
        if self.tolerance < 0.0:
            raise ValueError(
                f"tolerance must be >= 0, got {self.tolerance}")


class _CacheServe:
    """Outcome of one :meth:`LayerCache.serve` call (worker accounting)."""

    __slots__ = ("outputs", "hits", "misses", "collisions",
                 "fidelity_max", "probe_start", "probe_end")

    def __init__(self, outputs, hits, misses, collisions, fidelity_max,
                 probe_start, probe_end):
        self.outputs = outputs
        self.hits = hits
        self.misses = misses
        self.collisions = collisions
        self.fidelity_max = fidelity_max
        self.probe_start = probe_start
        self.probe_end = probe_end


class LayerCache:
    """Memoize suffix execution keyed on a digest of layer-``k`` activations.

    The amortization axis past batching (arXiv 2209.08625): near-duplicate
    inputs produce near-duplicate early activations, so after running the
    prefix through the split layer, a digest of that activation can stand in
    for the whole suffix.  A hit skips ``execute_range(k+1, ..)`` and reuses
    the cached output row; misses run as one *partial-batch suffix* over the
    plan's existing slabs and are inserted afterwards.

    Safety: only :meth:`ExecutionPlan.safe_splits` points are legal — there
    the split layer's top is the sole live buffer, so its bytes fully
    determine the suffix.  Every cached entry retains the activation
    snapshot that produced it; a hit is *verified* against that snapshot
    (byte-equal at ``tolerance=0``, within ``tolerance`` otherwise), so a
    digest collision degrades to a counted miss, never a wrong answer.  The
    per-hit distance is the fidelity metric: exactly ``0.0`` in lossless
    mode, bounded by ``tolerance`` otherwise.

    Locking: the LRU has its own lock (probe/insert are thread-safe on
    their own); :meth:`serve` additionally assumes the caller holds the
    plan's arena lock, exactly like ``execute``.
    """

    def __init__(self, plan: ExecutionPlan, split: int = -1,
                 max_entries: int = 256, tolerance: float = 0.0,
                 digest=None):
        safe = plan.safe_splits()
        if not safe:
            raise PlanError(
                f"plan for {plan.net.name!r} has no safe split points")
        if split == -1:
            split = safe[0]
        if split not in safe:
            raise PlanError(
                f"split {split} is not a safe split point (safe: {safe})")
        if max_entries < 1:
            raise PlanError(f"max_entries must be >= 1, got {max_entries}")
        if tolerance < 0.0:
            raise PlanError(f"tolerance must be >= 0, got {tolerance}")
        self.plan = plan
        self.split = split
        self.top = plan._steps[split].top
        self.max_entries = int(max_entries)
        self.tolerance = float(tolerance)
        #: injectable digest fn (activation bytes -> key); tests exercise
        #: collision handling by passing a deliberately weak one
        self._digest_fn = digest
        self._lock = threading.Lock()
        self._lru: "OrderedDict[bytes, Tuple[np.ndarray, np.ndarray]]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.collisions = 0
        self.fidelity_max = 0.0

    @classmethod
    def from_config(cls, plan: ExecutionPlan,
                    config: LayerCacheConfig) -> "LayerCache":
        return cls(plan, split=config.split, max_entries=config.max_entries,
                   tolerance=config.tolerance)

    # -------------------------------------------------------------- keying
    def digest(self, activation: np.ndarray) -> bytes:
        """Content key for one sample's layer-``k`` activation.

        ``tolerance > 0`` buckets values on a grid of that pitch before
        hashing, so activations within half a quantum of each other share a
        key; ``tolerance == 0`` hashes the exact bytes.
        """
        arr = np.ascontiguousarray(activation, dtype=np.float32)
        if self.tolerance > 0.0:
            arr = np.ascontiguousarray(np.round(arr / self.tolerance))
        if self._digest_fn is not None:
            return self._digest_fn(arr.tobytes())
        return hashlib.sha256(arr.tobytes()).digest()

    # ------------------------------------------------------- probe / insert
    def probe(self, key: bytes,
              activation: np.ndarray) -> Optional[np.ndarray]:
        """Verified lookup: the cached output row, or ``None`` on a miss.

        A key match whose retained snapshot is not within ``tolerance`` of
        ``activation`` is a digest collision — counted and refused.  Counts
        hits/misses; the accepted hit's distance feeds ``fidelity_max``.
        """
        with self._lock:
            entry = self._lru.get(key)
            if entry is not None:
                snap, out = entry
                if self.tolerance == 0.0:
                    ok = (snap.shape == activation.shape
                          and np.array_equal(snap, activation))
                    distance = 0.0
                else:
                    ok = snap.shape == activation.shape
                    if ok:
                        distance = float(
                            np.max(np.abs(snap - activation), initial=0.0))
                        ok = distance <= self.tolerance
                if ok:
                    self._lru.move_to_end(key)
                    self.hits += 1
                    if self.tolerance > 0.0:
                        self.fidelity_max = max(self.fidelity_max, distance)
                    return out
                self.collisions += 1
            self.misses += 1
            return None

    def insert(self, key: bytes, activation: np.ndarray,
               output: np.ndarray) -> None:
        """Retain one (activation snapshot, output row) pair; LRU-evict."""
        with self._lock:
            self._lru[key] = (np.array(activation, dtype=np.float32),
                              np.array(output, dtype=np.float32))
            self._lru.move_to_end(key)
            while len(self._lru) > self.max_entries:
                self._lru.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "collisions": self.collisions,
                    "entries": len(self._lru),
                    "fidelity_max": self.fidelity_max}

    # -------------------------------------------------------------- serve
    def serve(self, n: int, timer=None, clock=None) -> _CacheServe:
        """Serve the gathered batch of ``n`` rows through the cache.

        Caller contract matches ``execute``: inputs are already in the
        input slab and the plan lock is held.  Runs the prefix for all
        rows, probes per row, then one partial-batch suffix for the misses
        (at the miss count's width — BLAS may reassociate differently than
        an ``n``-wide pass, which is the same per-composition caveat the
        batching executor already documents).  Returns owned, read-only
        outputs plus the probe window for span/stage accounting.
        """
        import time as _time

        clock = clock or _time.monotonic
        plan = self.plan
        k = self.split
        plan.execute_range(n, 0, k + 1, timer=timer)
        views = plan._views_for(n)
        probe_start = clock()
        acts = views.tops[self.top]
        keys = [self.digest(acts[i]) for i in range(n)]
        hits_before, coll_before = self.hits, self.collisions
        cached: List[Optional[np.ndarray]] = [
            self.probe(keys[i], acts[i]) for i in range(n)]
        miss_rows = [i for i in range(n) if cached[i] is None]
        miss_acts = [np.array(acts[i], dtype=np.float32) for i in miss_rows]
        probe_end = clock()
        out_shape = tuple(views.output.shape[1:])
        outputs = np.empty((n,) + out_shape, dtype=np.float32)
        if miss_rows:
            m = len(miss_rows)
            stacked = np.stack(miss_acts, axis=0)
            suffix_views = plan._views_for(m)
            np.copyto(suffix_views.tops[self.top], stacked)
            suffix_out = plan.execute_range(m, k + 1, timer=timer)
            for j, i in enumerate(miss_rows):
                outputs[i] = suffix_out[j]
                self.insert(keys[i], miss_acts[j], suffix_out[j])
        for i in range(n):
            if cached[i] is not None:
                outputs[i] = cached[i]
        outputs.flags.writeable = False
        return _CacheServe(
            outputs,
            hits=self.hits - hits_before,
            misses=len(miss_rows),
            collisions=self.collisions - coll_before,
            fidelity_max=self.fidelity_max,
            probe_start=probe_start, probe_end=probe_end)


def measure_steady_state_alloc(plan: ExecutionPlan, batches=None,
                               iters: int = 3) -> int:
    """Peak bytes of new Python/numpy allocation per steady-state execute.

    Warms the plan (first call per batch size builds cached views), then
    watches ``iters`` full sweeps under :mod:`tracemalloc` and reports the
    peak traced growth.  Snapshot diffs would net alloc/free churn out to
    zero; the *peak* is what catches a kernel that still allocates
    per-call.  A clean plan measures a few hundred bytes of interpreter
    noise; an allocating layer measures its buffer sizes.
    """
    import tracemalloc

    batch_list = sorted(set(batches)) if batches else [plan.max_batch]
    with plan.lock:
        for n in batch_list:
            plan.input_view(n)
            plan.execute(n)
        tracemalloc.start()
        try:
            base = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
            for _ in range(iters):
                for n in batch_list:
                    plan.execute(n)
            peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
    return max(0, peak - base)
