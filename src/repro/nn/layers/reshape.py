"""Shape-adapting layers: Flatten (CNN -> classifier handoff)."""

from __future__ import annotations

import math

import numpy as np

from .base import Layer, register_layer

__all__ = ["FlattenLayer"]


@register_layer
class FlattenLayer(Layer):
    """Flatten all sample dimensions to a vector (Caffe's ``Flatten``)."""

    type_name = "Flatten"
    #: a pure reshape — execution plans alias output to the input's buffer
    plan_alias = True

    def _infer_shape(self, in_shape):
        return (int(math.prod(in_shape)),)

    def forward(self, x, train=False):
        self._check_input(x)
        self._in_batch_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout):
        return dout.reshape(self._in_batch_shape)
