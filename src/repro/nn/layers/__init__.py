"""Layer implementations for the ``repro.nn`` framework.

Importing this package registers every built-in layer type with the layer
registry used by :class:`repro.nn.netspec.NetSpec`.
"""

from .base import Layer, ShapeError, create_layer, layer_registry, register_layer
from .activation import HardTanhLayer, ReLULayer, SigmoidLayer, TanhLayer
from .convolution import ConvolutionLayer
from .dropout import DropoutLayer
from .inner_product import InnerProductLayer
from .locally_connected import LocallyConnectedLayer
from .merge import ConcatLayer, EltwiseSumLayer
from .normalization import LRNLayer
from .pooling import PoolingLayer
from .reshape import FlattenLayer
from .softmax import SoftmaxLayer, softmax, softmax_cross_entropy

__all__ = [
    "Layer",
    "ShapeError",
    "create_layer",
    "layer_registry",
    "register_layer",
    "ReLULayer",
    "SigmoidLayer",
    "TanhLayer",
    "HardTanhLayer",
    "ConvolutionLayer",
    "DropoutLayer",
    "InnerProductLayer",
    "LocallyConnectedLayer",
    "ConcatLayer",
    "EltwiseSumLayer",
    "LRNLayer",
    "PoolingLayer",
    "FlattenLayer",
    "SoftmaxLayer",
    "softmax",
    "softmax_cross_entropy",
]
