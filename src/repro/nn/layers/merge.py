"""Multi-input merge layers: Concat and element-wise Sum.

These only make sense inside a :class:`repro.nn.graph.GraphNet` (the
sequential :class:`~repro.nn.network.Net` has nothing to merge); their
``setup``/``forward``/``backward`` operate on *lists* of shapes/arrays.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .base import Layer, ShapeError, register_layer

__all__ = ["ConcatLayer", "EltwiseSumLayer"]

Shape = Tuple[int, ...]


class MultiInputLayer(Layer):
    """Base for layers taking several bottoms.  ``setup`` gets a shape list."""

    multi_input = True

    def setup(self, in_shapes: Sequence[Shape]) -> Shape:  # type: ignore[override]
        if not in_shapes:
            raise ShapeError(f"layer {self.name!r} needs at least one input")
        self.in_shapes = [tuple(int(d) for d in s) for s in in_shapes]
        self.in_shape = self.in_shapes[0]  # for base-class bookkeeping
        self.out_shape = self._infer_multi(self.in_shapes)
        self._declare_params()
        return self.out_shape

    def _infer_multi(self, in_shapes: List[Shape]) -> Shape:
        raise NotImplementedError

    def forward(self, xs: List[np.ndarray], train: bool = False) -> np.ndarray:
        """Allocating wrapper over :meth:`forward_into` (list-input form)."""
        xs = [np.asarray(x) for x in xs]
        n = xs[0].shape[0]
        dtype = np.result_type(np.float32, *[x.dtype for x in xs])
        out = np.empty((n,) + tuple(self.out_shape), dtype=dtype)
        self.forward_into(xs, out, self.alloc_scratch(n, dtype=dtype), train=train)
        return out

    def activation_bytes_per_sample(self) -> int:
        n_in = sum(int(np.prod(s)) for s in self.in_shapes)
        n_out = int(np.prod(self.out_shape))
        return (n_in + n_out) * 4


@register_layer
class ConcatLayer(MultiInputLayer):
    """Concatenate bottoms along the first sample dimension (channels for
    CHW inputs, features for vectors) — Caffe's ``Concat`` with axis=1.
    """

    type_name = "Concat"

    def _infer_multi(self, in_shapes):
        first = in_shapes[0]
        for shape in in_shapes[1:]:
            if len(shape) != len(first) or shape[1:] != first[1:]:
                raise ShapeError(
                    f"layer {self.name!r}: cannot concat {in_shapes} along axis 0"
                )
        self._starts = [0]
        for shape in in_shapes:
            self._starts.append(self._starts[-1] + shape[0])
        return (sum(s[0] for s in in_shapes),) + first[1:]

    def forward_into(self, xs: List[np.ndarray], out, scratch, train=False):
        if len(xs) != len(self.in_shapes):
            raise ShapeError(f"layer {self.name!r} expects {len(self.in_shapes)} inputs")
        for x, a, b in zip(xs, self._starts, self._starts[1:]):
            np.copyto(out[:, a:b], x)

    def backward(self, dout: np.ndarray) -> List[np.ndarray]:
        # split points are static (the declared bottom shapes), so inference
        # passes stay stateless
        splits = np.cumsum([s[0] for s in self.in_shapes])[:-1]
        return list(np.split(dout, splits, axis=1))

    def flops_per_sample(self) -> int:
        return 0  # a copy


@register_layer
class EltwiseSumLayer(MultiInputLayer):
    """Element-wise sum of same-shaped bottoms (Caffe's ``Eltwise`` SUM)."""

    type_name = "EltwiseSum"

    def _infer_multi(self, in_shapes):
        first = in_shapes[0]
        if any(shape != first for shape in in_shapes[1:]):
            raise ShapeError(f"layer {self.name!r}: eltwise inputs differ: {in_shapes}")
        return first

    def forward_into(self, xs: List[np.ndarray], out, scratch, train=False):
        if len(xs) != len(self.in_shapes):
            raise ShapeError(f"layer {self.name!r} expects {len(self.in_shapes)} inputs")
        np.copyto(out, xs[0])
        for x in xs[1:]:
            np.add(out, x, out=out)

    def backward(self, dout: np.ndarray) -> List[np.ndarray]:
        return [dout] * len(self.in_shapes)

    def flops_per_sample(self) -> int:
        return (len(self.in_shapes) - 1) * int(np.prod(self.out_shape))
