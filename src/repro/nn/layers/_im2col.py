"""im2col / col2im lowering used by convolution and locally-connected layers.

This mirrors how Caffe executes convolutions: unfold input windows into a
matrix, then run a GEMM.  The unfolded shapes are also what the GPU cost
model treats as the kernel's GEMM dimensions.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["conv_output_size", "im2col", "col2im", "Im2colPlan"]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial extent of a convolution along one dimension."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"kernel {kernel} (stride {stride}, pad {pad}) does not fit input of size {size}"
        )
    return out


class Im2colPlan:
    """Precomputed column-buffer geometry for one window-sliding layer.

    The original :func:`im2col` recomputed output extents, padded shapes and
    window strides on every call; convolution, locally-connected and pooling
    layers now hoist that into setup by building one of these, and both the
    allocating and the planned execution paths reuse it.  All methods are
    allocation-free given destination buffers.
    """

    __slots__ = ("in_c", "in_h", "in_w", "kh", "kw", "stride", "pad",
                 "out_h", "out_w", "padded_h", "padded_w", "fan_in", "length")

    def __init__(self, in_shape: Tuple[int, int, int], kh: int, kw: int,
                 stride: int, pad: int):
        self.in_c, self.in_h, self.in_w = (int(d) for d in in_shape)
        self.kh, self.kw = int(kh), int(kw)
        self.stride, self.pad = int(stride), int(pad)
        self.out_h = conv_output_size(self.in_h, self.kh, self.stride, self.pad)
        self.out_w = conv_output_size(self.in_w, self.kw, self.stride, self.pad)
        self.padded_h = self.in_h + 2 * self.pad
        self.padded_w = self.in_w + 2 * self.pad
        self.fan_in = self.in_c * self.kh * self.kw
        self.length = self.out_h * self.out_w

    # ------------------------------------------------------------- scratch
    def pad_spec(self, batch: int) -> Dict[str, Tuple[Tuple[int, ...], np.dtype]]:
        """Scratch entry for the padded input copy (empty when pad == 0)."""
        if not self.pad:
            return {}
        return {"xpad": ((batch, self.in_c, self.padded_h, self.padded_w),
                         np.dtype(np.float32))}

    def cols_spec(self, batch: int) -> Dict[str, Tuple[Tuple[int, ...], np.dtype]]:
        """Scratch entry for the unfolded column buffer."""
        return {"cols": ((batch, self.fan_in, self.length), np.dtype(np.float32))}

    # ------------------------------------------------------------- kernels
    def padded(self, x: np.ndarray, scratch: Dict[str, np.ndarray],
               fill: float = 0.0) -> np.ndarray:
        """Return the (possibly padded) source array windows slide over.

        With padding, the border of ``scratch["xpad"]`` is refilled and the
        center overwritten each call — scratch regions are shared between
        steps, so nothing can be assumed about their previous contents.
        """
        if not self.pad:
            return x
        xpad = scratch["xpad"][: x.shape[0]]
        p = self.pad
        xpad[:, :, :p, :].fill(fill)
        xpad[:, :, -p:, :].fill(fill)
        xpad[:, :, p:-p, :p].fill(fill)
        xpad[:, :, p:-p, -p:].fill(fill)
        np.copyto(xpad[:, :, p:-p, p:-p], x)
        return xpad

    def filter_windows(self, src: np.ndarray) -> np.ndarray:
        """(N, C, kh, kw, out_h, out_w) view — the im2col gather order."""
        s0, s1, s2, s3 = src.strides
        return np.lib.stride_tricks.as_strided(
            src,
            shape=(src.shape[0], self.in_c, self.kh, self.kw, self.out_h, self.out_w),
            strides=(s0, s1, s2, s3, s2 * self.stride, s3 * self.stride),
            writeable=False,
        )

    def pool_windows(self, src: np.ndarray) -> np.ndarray:
        """(N, C, out_h, out_w, kh, kw) view — the pooling reduce order."""
        s0, s1, s2, s3 = src.strides
        return np.lib.stride_tricks.as_strided(
            src,
            shape=(src.shape[0], self.in_c, self.out_h, self.out_w, self.kh, self.kw),
            strides=(s0, s1, s2 * self.stride, s3 * self.stride, s2, s3),
            writeable=False,
        )

    def gather(self, x: np.ndarray, scratch: Dict[str, np.ndarray]) -> np.ndarray:
        """Unfold ``x`` into ``scratch["cols"]`` (N, C*kh*kw, L); returns it."""
        n = x.shape[0]
        cols = scratch["cols"][:n]
        src = self.padded(x, scratch)
        cols6 = cols.reshape(n, self.in_c, self.kh, self.kw, self.out_h, self.out_w)
        np.copyto(cols6, self.filter_windows(src))
        return cols


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """Unfold ``x`` of shape (N, C, H, W) into (N, C*kh*kw, out_h*out_w)."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    hp, wp = x.shape[2], x.shape[3]
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    return windows.reshape(n, c * kh * kw, out_h * out_w)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Scatter-add the inverse of :func:`im2col` (used by backward passes)."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    xpad = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            xpad[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += cols6[
                :, :, i, j
            ]
    if pad:
        return xpad[:, :, pad : pad + h, pad : pad + w]
    return xpad
