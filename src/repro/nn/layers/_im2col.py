"""im2col / col2im lowering used by convolution and locally-connected layers.

This mirrors how Caffe executes convolutions: unfold input windows into a
matrix, then run a GEMM.  The unfolded shapes are also what the GPU cost
model treats as the kernel's GEMM dimensions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["conv_output_size", "im2col", "col2im"]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial extent of a convolution along one dimension."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"kernel {kernel} (stride {stride}, pad {pad}) does not fit input of size {size}"
        )
    return out


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """Unfold ``x`` of shape (N, C, H, W) into (N, C*kh*kw, out_h*out_w)."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    hp, wp = x.shape[2], x.shape[3]
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    return windows.reshape(n, c * kh * kw, out_h * out_w)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Scatter-add the inverse of :func:`im2col` (used by backward passes)."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    xpad = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            xpad[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += cols6[
                :, :, i, j
            ]
    if pad:
        return xpad[:, :, pad : pad + h, pad : pad + w]
    return xpad
