"""Local Response Normalization (cross-channel), as used by AlexNet."""

from __future__ import annotations

import numpy as np

from .base import Layer, ShapeError, register_layer

__all__ = ["LRNLayer"]


def _channel_window_sum(x: np.ndarray, half: int) -> np.ndarray:
    """Sum over a sliding channel window of radius ``half`` (axis=1)."""
    c = x.shape[1]
    csum = np.concatenate(
        [np.zeros_like(x[:, :1]), np.cumsum(x, axis=1)], axis=1
    )  # csum[:, i] = sum of first i channels
    lo = np.clip(np.arange(c) - half, 0, c)
    hi = np.clip(np.arange(c) + half + 1, 0, c)
    return csum[:, hi] - csum[:, lo]


@register_layer
class LRNLayer(Layer):
    """``y_i = x_i / (k + alpha/n * sum_{j near i} x_j^2)^beta``.

    Defaults are AlexNet's (local_size=5, alpha=1e-4, beta=0.75, k=1).
    """

    type_name = "LRN"

    def __init__(self, name: str, local_size: int = 5, alpha: float = 1e-4, beta: float = 0.75, k: float = 1.0):
        super().__init__(name)
        if local_size <= 0 or local_size % 2 == 0:
            raise ValueError(f"layer {name!r}: local_size must be odd and positive")
        self.local_size = int(local_size)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.k = float(k)
        self._cache = None

    def _infer_shape(self, in_shape):
        if len(in_shape) != 3:
            raise ShapeError(f"layer {self.name!r} expects (C, H, W) input, got {in_shape}")
        return in_shape

    def plan_scratch(self, batch):
        c, h, w = self.in_shape
        f32 = np.dtype(np.float32)
        return {
            "sq": ((batch, c, h, w), f32),
            "csum": ((batch, c + 1, h, w), f32),
            "win": ((batch, c, h, w), f32),
        }

    def forward_into(self, x, out, scratch, train=False):
        c = self.in_shape[0]
        half = (self.local_size - 1) // 2
        n = x.shape[0]
        sq = scratch["sq"][:n]
        csum = scratch["csum"][:n]
        win = scratch["win"][:n]
        np.multiply(x, x, out=sq)
        csum[:, 0].fill(0.0)
        np.cumsum(sq, axis=1, out=csum[:, 1:])
        # win[:, i] = csum[:, hi] - csum[:, lo] with hi = min(i+half+1, c),
        # lo = max(i-half, 0); the clipped gathers decompose into slices
        # (np.take with out= allocates a temporary, so it is avoided here).
        top = max(c - half, 0)
        np.copyto(win[:, :top], csum[:, half + 1:])
        np.copyto(win[:, top:], csum[:, c:c + 1])
        if half + 1 < c:
            np.subtract(win[:, half + 1:], csum[:, 1:c - half],
                        out=win[:, half + 1:])
        np.multiply(win, self.alpha / self.local_size, out=win)
        np.add(win, self.k, out=win)
        if train:
            self._cache = (x, win.copy())
        np.power(win, -self.beta, out=win)
        np.multiply(x, win, out=out)

    def backward(self, dout):
        if self._cache is None:
            raise RuntimeError(f"layer {self.name!r}: backward before forward(train=True)")
        x, scale = self._cache
        half = (self.local_size - 1) // 2
        pow_term = np.power(scale, -self.beta)
        # dL/dx_m = dout_m * scale_m^-b
        #         - (2*a*b/n) * x_m * sum_{i: m in window(i)} dout_i x_i scale_i^{-b-1}
        inner = dout * x * pow_term / scale
        window = _channel_window_sum(inner, half)
        coeff = 2.0 * self.alpha * self.beta / self.local_size
        return dout * pow_term - coeff * x * window

    def flops_per_sample(self) -> int:
        assert self.in_shape is not None
        # square, window-sum, scale, pow, multiply: ~ (local_size + 4) per elem
        return (self.local_size + 4) * int(np.prod(self.in_shape))
