"""GEMM-lowered convolution with group support (AlexNet's conv2/4/5 are
grouped).  Forward and backward are implemented via im2col/col2im, exactly
the lowering Caffe uses and the one the paper's GPU kernels execute.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..initializers import constant, get_filler, xavier
from ._im2col import Im2colPlan, col2im
from .base import GemmShape, Layer, ShapeError, register_layer

__all__ = ["ConvolutionLayer"]


@register_layer
class ConvolutionLayer(Layer):
    """2-D convolution over (C, H, W) inputs.

    Parameters mirror Caffe's ``ConvolutionParameter``: ``num_output``,
    ``kernel_size``, ``stride``, ``pad``, ``group``.
    """

    type_name = "Convolution"

    def __init__(
        self,
        name: str,
        num_output: int,
        kernel_size: int,
        stride: int = 1,
        pad: int = 0,
        group: int = 1,
        bias: bool = True,
        weight_filler="xavier",
        bias_filler=None,
    ):
        super().__init__(name)
        if num_output <= 0 or kernel_size <= 0 or stride <= 0 or pad < 0 or group <= 0:
            raise ValueError(f"layer {name!r}: invalid convolution geometry")
        if num_output % group:
            raise ValueError(f"layer {name!r}: num_output {num_output} not divisible by group {group}")
        self.num_output = int(num_output)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.pad = int(pad)
        self.group = int(group)
        self.bias = bool(bias)
        self._weight_filler = get_filler(weight_filler) if weight_filler else xavier()
        self._bias_filler = get_filler(bias_filler) if bias_filler else constant(0.0)
        self._cache = None

    # --------------------------------------------------------------- set-up
    def _infer_shape(self, in_shape):
        if len(in_shape) != 3:
            raise ShapeError(f"layer {self.name!r} expects (C, H, W) input, got {in_shape}")
        c, h, w = in_shape
        if c % self.group:
            raise ShapeError(f"layer {self.name!r}: {c} channels not divisible by group {self.group}")
        self.in_channels = c
        k = self.kernel_size
        # column-buffer geometry hoisted out of the per-call path
        self._lowering = Im2colPlan(in_shape, k, k, self.stride, self.pad)
        self.out_h = self._lowering.out_h
        self.out_w = self._lowering.out_w
        return (self.num_output, self.out_h, self.out_w)

    def _declare_params(self):
        k = self.kernel_size
        cin_g = self.in_channels // self.group
        self.weight = self._add_param("weight", (self.num_output, cin_g, k, k), self._weight_filler)
        if self.bias:
            self.bias_blob = self._add_param("bias", (self.num_output,), self._bias_filler)

    # -------------------------------------------------------------- compute
    def plan_scratch(self, batch):
        spec = dict(self._lowering.cols_spec(batch))
        spec.update(self._lowering.pad_spec(batch))
        return spec

    def forward_into(self, x, out, scratch, train=False):
        n = x.shape[0]
        g = self.group
        k = self.kernel_size
        cin_g = self.in_channels // g
        cout_g = self.num_output // g
        length = self._lowering.length
        cols = self._lowering.gather(x, scratch)  # (N, C*k*k, L)
        cols_g = cols.reshape(n, g, cin_g * k * k, length)
        w = self.weight.require_data().reshape(g, cout_g, cin_g * k * k)
        out_g = out.reshape(n, g, cout_g, length)
        for gi in range(g):
            # (cout_g, K) @ (N, K, L) -> (N, cout_g, L), written in place
            np.matmul(w[gi], cols_g[:, gi], out=out_g[:, gi])
        if self.bias:
            np.add(out, self.bias_blob.require_data()[None, :, None, None], out=out)
        if train:
            self._cache = (cols_g, x.shape)

    def backward(self, dout):
        if self._cache is None:
            raise RuntimeError(f"layer {self.name!r}: backward before forward(train=True)")
        cols_g, x_shape = self._cache
        n = dout.shape[0]
        g = self.group
        k = self.kernel_size
        cin_g = self.in_channels // g
        cout_g = self.num_output // g
        length = self.out_h * self.out_w
        dout_g = dout.reshape(n, g, cout_g, length)
        dw = np.einsum("ngol,ngkl->gok", dout_g, cols_g, optimize=True)
        self.weight.grad += dw.reshape(self.weight.shape)
        if self.bias:
            self.bias_blob.grad += dout.sum(axis=(0, 2, 3))
        w = self.weight.require_data().reshape(g, cout_g, cin_g * k * k)
        dcols = np.einsum("gok,ngol->ngkl", w, dout_g, optimize=True)
        dcols = dcols.reshape(n, self.in_channels * k * k, length)
        return col2im(dcols, x_shape, k, k, self.stride, self.pad)

    # ------------------------------------------------------ cost accounting
    def flops_per_sample(self) -> int:
        k = self.kernel_size
        cin_g = self.in_channels // self.group
        flops = 2 * self.num_output * cin_g * k * k * self.out_h * self.out_w
        if self.bias:
            flops += self.num_output * self.out_h * self.out_w
        return flops

    def gemm_shapes(self, batch: int) -> List[GemmShape]:
        k = self.kernel_size
        cin_g = self.in_channels // self.group
        cout_g = self.num_output // self.group
        length = self.out_h * self.out_w * int(batch)
        return [(cout_g, length, cin_g * k * k)] * self.group
