"""Locally-connected layer: convolution geometry with *unshared* weights.

DeepFace (the FACE network, Table 1: ~120M parameters in 8 layers) owes its
size to three of these: every output position owns a private filter bank.
Two performance consequences matter for the reproduction and fall straight
out of this structure:

* the parameter count is ``out_h*out_w`` times a same-geometry convolution's,
  so a single forward pass must stream hundreds of megabytes of weights —
  the layer is memory-bandwidth-bound on a GPU, which is why FACE only
  reaches ~40x (vs >100x for the others) in the paper's Figure 10;
* the GEMM decomposes into many small per-position multiplies rather than
  one large one, capping achievable occupancy.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..initializers import constant, get_filler, xavier
from ._im2col import Im2colPlan, col2im
from .base import GemmShape, Layer, ShapeError, register_layer

__all__ = ["LocallyConnectedLayer"]


@register_layer
class LocallyConnectedLayer(Layer):
    """2-D locally-connected layer over (C, H, W) inputs."""

    type_name = "LocallyConnected"

    def __init__(
        self,
        name: str,
        num_output: int,
        kernel_size: int,
        stride: int = 1,
        pad: int = 0,
        bias: bool = True,
        weight_filler="xavier",
        bias_filler=None,
    ):
        super().__init__(name)
        if num_output <= 0 or kernel_size <= 0 or stride <= 0 or pad < 0:
            raise ValueError(f"layer {name!r}: invalid geometry")
        self.num_output = int(num_output)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.pad = int(pad)
        self.bias = bool(bias)
        self._weight_filler = get_filler(weight_filler) if weight_filler else xavier()
        self._bias_filler = get_filler(bias_filler) if bias_filler else constant(0.0)
        self._cache = None

    # --------------------------------------------------------------- set-up
    def _infer_shape(self, in_shape):
        if len(in_shape) != 3:
            raise ShapeError(f"layer {self.name!r} expects (C, H, W) input, got {in_shape}")
        c, h, w = in_shape
        self.in_channels = c
        k = self.kernel_size
        # column-buffer geometry hoisted out of the per-call path
        self._lowering = Im2colPlan(in_shape, k, k, self.stride, self.pad)
        self.out_h = self._lowering.out_h
        self.out_w = self._lowering.out_w
        self.positions = self.out_h * self.out_w
        return (self.num_output, self.out_h, self.out_w)

    def _declare_params(self):
        k = self.kernel_size
        fan_in = self.in_channels * k * k
        self.weight = self._add_param(
            "weight", (self.positions, self.num_output, fan_in), self._weight_filler
        )
        if self.bias:
            self.bias_blob = self._add_param(
                "bias", (self.num_output, self.out_h, self.out_w), self._bias_filler
            )

    # -------------------------------------------------------------- compute
    def plan_scratch(self, batch):
        spec = dict(self._lowering.cols_spec(batch))
        spec.update(self._lowering.pad_spec(batch))
        return spec

    def forward_into(self, x, out, scratch, train=False):
        n = x.shape[0]
        cols = self._lowering.gather(x, scratch)  # (N, C*k*k, L)
        w = self.weight.require_data()  # (L, O, K)
        out3 = out.reshape(n, self.num_output, self.positions)
        # per-position contraction; optimized einsum allocates planner
        # intermediates (~0.5 MB here) but is ~8x faster than the strict
        # out=-only path — the one tolerated deviation from allocation-free
        # plans, so FACE sits outside the strict zero-alloc CI gate
        np.einsum("lok,nkl->nol", w, cols, out=out3, optimize=True)
        if self.bias:
            np.add(out, self.bias_blob.require_data()[None], out=out)
        if train:
            self._cache = (cols, x.shape)

    def backward(self, dout):
        if self._cache is None:
            raise RuntimeError(f"layer {self.name!r}: backward before forward(train=True)")
        cols, x_shape = self._cache
        n = dout.shape[0]
        k = self.kernel_size
        dout2 = dout.reshape(n, self.num_output, self.positions)
        self.weight.grad += np.einsum("nol,nkl->lok", dout2, cols, optimize=True)
        if self.bias:
            self.bias_blob.grad += dout.sum(axis=0)
        w = self.weight.require_data()
        dcols = np.einsum("lok,nol->nkl", w, dout2, optimize=True)
        return col2im(dcols, x_shape, k, k, self.stride, self.pad)

    # ------------------------------------------------------ cost accounting
    def flops_per_sample(self) -> int:
        k = self.kernel_size
        flops = 2 * self.positions * self.num_output * self.in_channels * k * k
        if self.bias:
            flops += self.num_output * self.positions
        return flops

    def gemm_shapes(self, batch: int) -> List[GemmShape]:
        # One small GEMM per output position: weights are not shared, so the
        # batched lowering cannot merge positions into a single large GEMM.
        k = self.kernel_size
        fan_in = self.in_channels * k * k
        return [(self.num_output, int(batch), fan_in)] * self.positions
