"""Element-wise activation layers: ReLU (AlexNet/LeNet/DeepFace), Sigmoid
(Kaldi's acoustic model), Tanh, and HardTanh (SENNA's nonlinearity).
"""

from __future__ import annotations

import numpy as np

from .base import Layer, register_layer

__all__ = ["ReLULayer", "SigmoidLayer", "TanhLayer", "HardTanhLayer"]


class _Activation(Layer):
    """Shared plumbing: shape-preserving, stateless except the train cache."""

    def __init__(self, name: str):
        super().__init__(name)
        self._cache = None

    def _infer_shape(self, in_shape):
        return in_shape

    def flops_per_sample(self) -> int:
        assert self.in_shape is not None
        return int(np.prod(self.in_shape))

    def _require_cache(self):
        if self._cache is None:
            raise RuntimeError(f"layer {self.name!r}: backward before forward(train=True)")
        return self._cache


@register_layer
class ReLULayer(_Activation):
    type_name = "ReLU"

    def forward(self, x, train=False):
        self._check_input(x)
        y = np.maximum(x, 0.0)
        if train:
            self._cache = x > 0
        return y

    def backward(self, dout):
        mask = self._require_cache()
        return dout * mask


@register_layer
class SigmoidLayer(_Activation):
    type_name = "Sigmoid"

    def forward(self, x, train=False):
        self._check_input(x)
        # numerically stable logistic
        y = np.empty_like(x, dtype=np.float64)
        pos = x >= 0
        y[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        y[~pos] = ex / (1.0 + ex)
        y = y.astype(x.dtype, copy=False)
        if train:
            self._cache = y
        return y

    def backward(self, dout):
        y = self._require_cache()
        return dout * y * (1.0 - y)


@register_layer
class TanhLayer(_Activation):
    type_name = "Tanh"

    def forward(self, x, train=False):
        self._check_input(x)
        y = np.tanh(x)
        if train:
            self._cache = y
        return y

    def backward(self, dout):
        y = self._require_cache()
        return dout * (1.0 - y * y)


@register_layer
class HardTanhLayer(_Activation):
    """SENNA's clipped-linear nonlinearity: clamp(x, -1, 1)."""

    type_name = "HardTanh"

    def forward(self, x, train=False):
        self._check_input(x)
        y = np.clip(x, -1.0, 1.0)
        if train:
            self._cache = (x > -1.0) & (x < 1.0)
        return y

    def backward(self, dout):
        mask = self._require_cache()
        return dout * mask
