"""Element-wise activation layers: ReLU (AlexNet/LeNet/DeepFace), Sigmoid
(Kaldi's acoustic model), Tanh, and HardTanh (SENNA's nonlinearity).
"""

from __future__ import annotations

import numpy as np

from .base import Layer, register_layer

__all__ = ["ReLULayer", "SigmoidLayer", "TanhLayer", "HardTanhLayer"]


class _Activation(Layer):
    """Shared plumbing: shape-preserving, stateless except the train cache."""

    def __init__(self, name: str):
        super().__init__(name)
        self._cache = None

    def _infer_shape(self, in_shape):
        return in_shape

    def flops_per_sample(self) -> int:
        assert self.in_shape is not None
        return int(np.prod(self.in_shape))

    def _require_cache(self):
        if self._cache is None:
            raise RuntimeError(f"layer {self.name!r}: backward before forward(train=True)")
        return self._cache


@register_layer
class ReLULayer(_Activation):
    type_name = "ReLU"
    plan_inplace = True

    def forward_into(self, x, out, scratch, train=False):
        if train:
            self._cache = x > 0
        np.maximum(x, 0.0, out=out)

    def backward(self, dout):
        mask = self._require_cache()
        return dout * mask


@register_layer
class SigmoidLayer(_Activation):
    type_name = "Sigmoid"
    plan_inplace = True

    def plan_scratch(self, batch):
        shape = (batch,) + self.in_shape
        return {
            "t": (shape, np.dtype(np.float32)),
            "pos": (shape, np.dtype(np.bool_)),
            "neg": (shape, np.dtype(np.bool_)),
        }

    def forward_into(self, x, out, scratch, train=False):
        # numerically stable logistic, branch-selected with where= masks so
        # the kernel stays allocation-free and safe for out-is-x execution
        n = x.shape[0]
        t = scratch["t"][:n]
        pos = scratch["pos"][:n]
        neg = scratch["neg"][:n]
        np.greater_equal(x, 0.0, out=pos)
        np.logical_not(pos, out=neg)
        # x >= 0: 1 / (1 + exp(-x))
        np.negative(x, out=t, where=pos)
        np.exp(t, out=t, where=pos)
        np.add(t, 1.0, out=t, where=pos)
        np.reciprocal(t, out=t, where=pos)
        # x < 0: e / (1 + e) with e = exp(x)
        np.exp(x, out=out, where=neg)
        np.add(out, 1.0, out=t, where=neg)
        np.divide(out, t, out=t, where=neg)
        np.copyto(out, t)
        if train:
            self._cache = out

    def backward(self, dout):
        y = self._require_cache()
        return dout * y * (1.0 - y)


@register_layer
class TanhLayer(_Activation):
    type_name = "Tanh"
    plan_inplace = True

    def forward_into(self, x, out, scratch, train=False):
        np.tanh(x, out=out)
        if train:
            self._cache = out

    def backward(self, dout):
        y = self._require_cache()
        return dout * (1.0 - y * y)


@register_layer
class HardTanhLayer(_Activation):
    """SENNA's clipped-linear nonlinearity: clamp(x, -1, 1)."""

    type_name = "HardTanh"
    plan_inplace = True

    def forward_into(self, x, out, scratch, train=False):
        if train:
            self._cache = (x > -1.0) & (x < 1.0)
        np.clip(x, -1.0, 1.0, out=out)

    def backward(self, dout):
        mask = self._require_cache()
        return dout * mask
