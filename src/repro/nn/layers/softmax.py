"""Softmax classifier layer (the final layer of every Tonic network) and the
fused softmax + cross-entropy loss used for training.
"""

from __future__ import annotations

import numpy as np

from .base import Layer, ShapeError, register_layer

__all__ = ["SoftmaxLayer", "softmax", "softmax_cross_entropy"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray):
    """Mean cross-entropy loss and its gradient w.r.t. ``logits``.

    ``labels`` are integer class indices of shape ``(batch,)``.
    """
    if logits.ndim != 2:
        raise ShapeError(f"expected (batch, classes) logits, got {logits.shape}")
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ShapeError(f"expected {n} labels, got shape {labels.shape}")
    probs = softmax(logits, axis=1)
    picked = probs[np.arange(n), labels]
    loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
    dlogits = probs.copy()
    dlogits[np.arange(n), labels] -= 1.0
    dlogits /= n
    return loss, dlogits.astype(logits.dtype, copy=False)


@register_layer
class SoftmaxLayer(Layer):
    """Inference-time softmax over the last dimension.

    During training the fused :func:`softmax_cross_entropy` replaces this
    layer (its backward through a bare softmax is rarely wanted), so
    ``backward`` here propagates the exact softmax Jacobian for completeness.
    """

    type_name = "Softmax"
    plan_inplace = True

    def __init__(self, name: str):
        super().__init__(name)
        self._cache = None

    def _infer_shape(self, in_shape):
        return in_shape

    def plan_scratch(self, batch):
        # one reduction slot per row, reused for the max and the sum
        shape = (batch,) + self.in_shape[:-1] + (1,)
        return {"mx": (shape, np.dtype(np.float32))}

    def forward_into(self, x, out, scratch, train=False):
        mx = scratch["mx"][: x.shape[0]]
        np.max(x, axis=-1, keepdims=True, out=mx)
        np.subtract(x, mx, out=out)
        np.exp(out, out=out)
        np.sum(out, axis=-1, keepdims=True, out=mx)
        np.divide(out, mx, out=out)
        if train:
            self._cache = out

    def backward(self, dout):
        if self._cache is None:
            raise RuntimeError(f"layer {self.name!r}: backward before forward(train=True)")
        y = self._cache
        inner = (dout * y).sum(axis=-1, keepdims=True)
        return y * (dout - inner)

    def flops_per_sample(self) -> int:
        assert self.in_shape is not None
        return 3 * int(np.prod(self.in_shape))  # exp, sum, divide
