"""Layer protocol for the ``repro.nn`` framework.

Shapes are *batch-free*: a layer is configured with the shape of one sample
(e.g. ``(3, 227, 227)`` for an AlexNet input) and its ``forward``/``backward``
methods operate on arrays with a leading batch dimension.  Keeping the batch
out of the static shape lets the GPU performance model ask a single network
object for its cost at any batch size (`gemm_shapes(batch)`), which is exactly
the sweep the paper's Figure 7 performs.

Execution surface
-----------------
Every layer exposes two forward paths over the *same* kernel:

``forward_into(x, out, scratch, train=False)``
    The destination-passing kernel: write the result into ``out`` using the
    preallocated ``scratch`` buffers declared by :meth:`Layer.plan_scratch`.
    This is what :class:`repro.nn.engine.ExecutionPlan` drives with
    arena-backed buffers, and it must not allocate in steady state.

``forward(x, train=False)``
    A thin allocating wrapper: allocate ``out`` and scratch, then call
    ``forward_into``.  Because both paths run the identical kernel, a planned
    forward is byte-identical to the legacy allocating forward.

The wrapper preserves the input's float dtype (float64 in, float64 out) so
numerical gradient checking keeps full precision; plans always run float32.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..tensor import FLOAT_BYTES, Blob

__all__ = ["Layer", "register_layer", "layer_registry", "create_layer", "ShapeError"]

Shape = Tuple[int, ...]
GemmShape = Tuple[int, int, int]  # (M, N, K): C[MxN] += A[MxK] @ B[KxN]


class ShapeError(ValueError):
    """Raised when a layer cannot accept its input shape."""


class Layer:
    """Base class for all layers.

    Lifecycle::

        layer = SomeLayer("name", **params)
        out_shape = layer.setup(in_shape)     # shape inference, declares blobs
        layer.materialize(rng)                # optional: allocate weights
        y = layer.forward(x)                  # x: (batch, *in_shape)
        dx = layer.backward(dy)               # accumulates into blob.grad
    """

    #: Registry key; subclasses set this (e.g. "InnerProduct").
    type_name: str = "Layer"

    #: The layer's inference output *is* its input (identity or a reshape
    #: view).  An execution plan maps the output to the input's buffer and
    #: skips the kernel entirely (Dropout at inference, Flatten).
    plan_alias: bool = False

    #: The kernel may legally write ``out`` over ``x`` (element-wise layers
    #: whose reads never trail their writes).  A plan reuses the input buffer
    #: when the input has no other consumer.
    plan_inplace: bool = False

    def __init__(self, name: str):
        self.name = name
        self.in_shape: Optional[Shape] = None
        self.out_shape: Optional[Shape] = None
        self.params: List[Blob] = []
        self._fillers: List = []

    # --------------------------------------------------------------- set-up
    def setup(self, in_shape: Shape) -> Shape:
        """Infer the output shape and declare parameter blobs."""
        self.in_shape = tuple(int(d) for d in in_shape)
        self.out_shape = self._infer_shape(self.in_shape)
        self._declare_params()
        return self.out_shape

    def _infer_shape(self, in_shape: Shape) -> Shape:
        raise NotImplementedError

    def _declare_params(self) -> None:
        """Subclasses with weights call :meth:`_add_param` here."""

    def _add_param(self, suffix: str, shape: Shape, filler) -> Blob:
        blob = Blob(f"{self.name}.{suffix}", shape)
        self.params.append(blob)
        self._fillers.append(filler)
        return blob

    def materialize(self, rng: np.random.Generator) -> None:
        for blob, filler in zip(self.params, self._fillers):
            blob.materialize(filler, rng)

    # ------------------------------------------------------------- compute
    def plan_scratch(self, batch: int) -> Dict[str, Tuple[Shape, np.dtype]]:
        """Scratch buffers :meth:`forward_into` needs at ``batch``.

        Maps a scratch name to ``(shape, dtype)``.  An execution plan carves
        these from its shared scratch slab; the allocating ``forward`` wrapper
        allocates them fresh per call via :meth:`alloc_scratch`.
        """
        return {}

    def alloc_scratch(self, batch: int, dtype=np.float32) -> Dict[str, np.ndarray]:
        """Allocate the :meth:`plan_scratch` buffers (float entries take
        ``dtype`` so the wrapper can run float64 for gradient checking)."""
        scratch = {}
        for key, (shape, dt) in self.plan_scratch(batch).items():
            dt = np.dtype(dt)
            if dt.kind == "f":
                dt = np.dtype(dtype)
            scratch[key] = np.empty(shape, dtype=dt)
        return scratch

    def forward_into(self, x: np.ndarray, out: np.ndarray,
                     scratch: Dict[str, np.ndarray], train: bool = False) -> None:
        """Write ``forward(x)`` into ``out`` using preallocated ``scratch``.

        The default covers layers that only define an allocating ``forward``
        (it copies the result); hot-path layers override this with a
        destination-passing kernel and inherit ``forward`` from the wrapper.
        """
        if type(self).forward is Layer.forward:
            raise NotImplementedError(
                f"{self.type_name} defines neither forward nor forward_into")
        np.copyto(out, self.forward(x, train=train))

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Allocating forward: a thin wrapper over :meth:`forward_into`."""
        if type(self).forward_into is Layer.forward_into:
            raise NotImplementedError(
                f"{self.type_name} defines neither forward nor forward_into")
        x = np.asarray(x)
        self._check_input(x)
        dtype = np.result_type(x.dtype, np.float32)
        out = np.empty((x.shape[0],) + tuple(self.out_shape), dtype=dtype)
        self.forward_into(x, out, self.alloc_scratch(x.shape[0], dtype=dtype),
                          train=train)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError(f"{self.type_name} has no backward pass")

    # ------------------------------------------------------ cost accounting
    def flops_per_sample(self) -> int:
        """Forward-pass floating point operations for one sample.

        Multiply-accumulates count as 2 FLOPs, matching how GPU peak rates
        (and the paper's throughput arithmetic) are quoted.
        """
        return 0

    def gemm_shapes(self, batch: int) -> List[GemmShape]:
        """The matrix multiplications a Caffe-style lowering would execute.

        Returns ``[]`` for element-wise layers.  The GPU model derives kernel
        launch counts, occupancy and time from these shapes.
        """
        return []

    def param_count(self) -> int:
        return sum(b.size for b in self.params)

    def param_bytes(self) -> int:
        return sum(b.nbytes for b in self.params)

    def activation_bytes_per_sample(self) -> int:
        """Bytes of input read + output written per sample (float32)."""
        assert self.in_shape is not None and self.out_shape is not None
        n_in = int(np.prod(self.in_shape))
        n_out = int(np.prod(self.out_shape))
        return (n_in + n_out) * FLOAT_BYTES

    # ------------------------------------------------------------- helpers
    def _check_input(self, x: np.ndarray) -> None:
        if self.in_shape is None:
            raise RuntimeError(f"layer {self.name!r} used before setup()")
        if tuple(x.shape[1:]) != self.in_shape:
            raise ShapeError(
                f"layer {self.name!r} expected input of shape "
                f"(batch, {', '.join(map(str, self.in_shape))}), got {x.shape}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.type_name}({self.name!r}, in={self.in_shape}, "
            f"out={self.out_shape}, params={self.param_count()})"
        )


# ---------------------------------------------------------------------------
# Layer registry: maps spec type names ("Convolution") to classes, so network
# specs stay declarative the way prototxt files are.
# ---------------------------------------------------------------------------
_REGISTRY: Dict[str, Type[Layer]] = {}


def register_layer(cls: Type[Layer]) -> Type[Layer]:
    """Class decorator registering ``cls`` under ``cls.type_name``."""
    key = cls.type_name
    if key in _REGISTRY:
        raise ValueError(f"duplicate layer type {key!r}")
    _REGISTRY[key] = cls
    return cls


def layer_registry() -> Dict[str, Type[Layer]]:
    return dict(_REGISTRY)


def create_layer(type_name: str, name: str, **params) -> Layer:
    try:
        cls = _REGISTRY[type_name]
    except KeyError:
        raise ValueError(
            f"unknown layer type {type_name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(name, **params)
