"""Max and average pooling (the downsampling stages of the CNN pipelines)."""

from __future__ import annotations

import numpy as np

from ._im2col import Im2colPlan
from .base import Layer, ShapeError, register_layer

__all__ = ["PoolingLayer"]


@register_layer
class PoolingLayer(Layer):
    """Spatial pooling over (C, H, W) inputs.

    ``mode`` is ``"max"`` or ``"ave"`` (Caffe's naming).  Caffe-style *ceil*
    output sizing is not used; windows must tile the (padded) input exactly
    or hang off the end harmlessly via implicit -inf/0 padding.
    """

    type_name = "Pooling"

    def __init__(self, name: str, kernel_size: int, stride: int = None, pad: int = 0, mode: str = "max"):
        super().__init__(name)
        if mode not in ("max", "ave"):
            raise ValueError(f"layer {name!r}: mode must be 'max' or 'ave', got {mode!r}")
        if kernel_size <= 0 or pad < 0:
            raise ValueError(f"layer {name!r}: invalid pooling geometry")
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)
        self.pad = int(pad)
        self.mode = mode
        self._cache = None

    def _infer_shape(self, in_shape):
        if len(in_shape) != 3:
            raise ShapeError(f"layer {self.name!r} expects (C, H, W) input, got {in_shape}")
        c, h, w = in_shape
        k = self.kernel_size
        # window geometry hoisted out of the per-call path
        self._lowering = Im2colPlan(in_shape, k, k, self.stride, self.pad)
        self.out_h = self._lowering.out_h
        self.out_w = self._lowering.out_w
        return (c, self.out_h, self.out_w)

    @property
    def _pad_fill(self) -> float:
        return -np.inf if self.mode == "max" else 0.0

    def plan_scratch(self, batch):
        return dict(self._lowering.pad_spec(batch))

    def forward_into(self, x, out, scratch, train=False):
        src = self._lowering.padded(x, scratch, fill=self._pad_fill)
        k, s = self.kernel_size, self.stride
        oh, ow = self.out_h, self.out_w
        # accumulate k*k shifted strided slices elementwise instead of a
        # 6-D windowed reduction: each slice walks the image in memory
        # order, which is several times faster on the large early layers
        op = np.maximum if self.mode == "max" else np.add
        for i in range(k):
            for j in range(k):
                window = src[:, :, i : i + s * oh : s, j : j + s * ow : s]
                if i == 0 and j == 0:
                    np.copyto(out, window)
                else:
                    op(out, window, out=out)
        if self.mode == "ave":
            np.divide(out, k * k, out=out)
        if train:
            if self.mode == "max":
                win = self._lowering.pool_windows(src)  # (N, C, oh, ow, k, k)
                flat = win.reshape(*win.shape[:4], -1)
                idx = flat.argmax(axis=-1)
            else:
                idx = None
            self._cache = (idx, x.shape)

    def backward(self, dout):
        if self._cache is None:
            raise RuntimeError(f"layer {self.name!r}: backward before forward(train=True)")
        idx, x_shape = self._cache
        k, s, p = self.kernel_size, self.stride, self.pad
        n, c, h, w = x_shape
        hp, wp = h + 2 * p, w + 2 * p
        dxp = np.zeros((n, c, hp, wp), dtype=dout.dtype)
        oh, ow = self.out_h, self.out_w
        if self.mode == "max":
            ki, kj = np.divmod(idx, k)  # (n, c, oh, ow)
            base_i = np.arange(oh)[None, None, :, None] * s
            base_j = np.arange(ow)[None, None, None, :] * s
            rows = (base_i + ki).ravel()
            cols = (base_j + kj).ravel()
            nn, cc = np.meshgrid(np.arange(n), np.arange(c), indexing="ij")
            nn = np.broadcast_to(nn[..., None, None], idx.shape).ravel()
            cc = np.broadcast_to(cc[..., None, None], idx.shape).ravel()
            np.add.at(dxp, (nn, cc, rows, cols), dout.ravel())
        else:
            share = dout / (k * k)
            for i in range(k):
                for j in range(k):
                    dxp[:, :, i : i + s * oh : s, j : j + s * ow : s] += share
        if p:
            return dxp[:, :, p : p + h, p : p + w]
        return dxp

    def flops_per_sample(self) -> int:
        # one compare/add per window element
        assert self.out_shape is not None
        c = self.out_shape[0]
        return c * self.out_h * self.out_w * self.kernel_size * self.kernel_size
