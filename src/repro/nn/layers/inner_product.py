"""Fully-connected (inner product) layer — the GEMM at the heart of every
Tonic DNN (Kaldi's acoustic model and all three SENNA networks are stacks of
these, and the classifier layers of every CNN are too).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..initializers import constant, get_filler, xavier
from .base import GemmShape, Layer, ShapeError, register_layer

__all__ = ["InnerProductLayer"]


@register_layer
class InnerProductLayer(Layer):
    """``y = x @ W.T + b`` with ``W`` of shape ``(num_output, fan_in)``.

    Any input shape is accepted and flattened, as in Caffe.
    """

    type_name = "InnerProduct"

    def __init__(
        self,
        name: str,
        num_output: int,
        bias: bool = True,
        weight_filler="xavier",
        bias_filler=None,
    ):
        super().__init__(name)
        if num_output <= 0:
            raise ValueError(f"layer {name!r}: num_output must be positive")
        self.num_output = int(num_output)
        self.bias = bool(bias)
        self._weight_filler = get_filler(weight_filler) if weight_filler else xavier()
        self._bias_filler = get_filler(bias_filler) if bias_filler else constant(0.0)
        self._x_flat = None

    # --------------------------------------------------------------- set-up
    def _infer_shape(self, in_shape):
        self.fan_in = int(math.prod(in_shape))
        return (self.num_output,)

    def _declare_params(self):
        self.weight = self._add_param("weight", (self.num_output, self.fan_in), self._weight_filler)
        if self.bias:
            self.bias_blob = self._add_param("bias", (self.num_output,), self._bias_filler)

    # -------------------------------------------------------------- compute
    def forward_into(self, x, out, scratch, train=False):
        w = self.weight.require_data()
        x2 = x.reshape(x.shape[0], self.fan_in)
        np.matmul(x2, w.T, out=out)
        if self.bias:
            np.add(out, self.bias_blob.require_data(), out=out)
        if train:
            self._x_flat = x2
            self._x_shape = x.shape

    def backward(self, dout):
        if self._x_flat is None:
            raise RuntimeError(f"layer {self.name!r}: backward before forward(train=True)")
        if dout.shape != (self._x_flat.shape[0], self.num_output):
            raise ShapeError(f"layer {self.name!r}: bad gradient shape {dout.shape}")
        self.weight.grad += dout.T @ self._x_flat
        if self.bias:
            self.bias_blob.grad += dout.sum(axis=0)
        dx = dout @ self.weight.require_data()
        return dx.reshape(self._x_shape)

    # ------------------------------------------------------ cost accounting
    def flops_per_sample(self) -> int:
        flops = 2 * self.num_output * self.fan_in
        if self.bias:
            flops += self.num_output
        return flops

    def gemm_shapes(self, batch: int) -> List[GemmShape]:
        # C[num_output x batch] = W[num_output x fan_in] @ X[fan_in x batch]
        return [(self.num_output, int(batch), self.fan_in)]
