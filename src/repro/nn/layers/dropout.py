"""Dropout (AlexNet fc6/fc7, DeepFace F7).  Identity at inference, which is
the only mode the DjiNN service exercises; training applies inverted dropout
so inference needs no rescaling.
"""

from __future__ import annotations

import numpy as np

from .base import Layer, register_layer

__all__ = ["DropoutLayer"]


@register_layer
class DropoutLayer(Layer):
    type_name = "Dropout"
    #: identity at inference — execution plans alias output to input
    plan_alias = True

    def __init__(self, name: str, ratio: float = 0.5, seed: int = 0):
        super().__init__(name)
        if not 0.0 <= ratio < 1.0:
            raise ValueError(f"layer {name!r}: dropout ratio must be in [0, 1), got {ratio}")
        self.ratio = float(ratio)
        self._rng = np.random.default_rng(seed)
        self._mask = None

    def _infer_shape(self, in_shape):
        return in_shape

    def forward(self, x, train=False):
        self._check_input(x)
        if not train or self.ratio == 0.0:
            return x
        keep = 1.0 - self.ratio
        self._mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, dout):
        if self._mask is None:
            # forward ran in inference mode (or ratio 0): identity gradient
            return dout
        return dout * self._mask

    def flops_per_sample(self) -> int:
        return 0  # free at inference, which is what the service runs
