"""Static cost accounting over a network: per-layer FLOPs, GEMM shapes,
parameter and activation traffic.  This is the contract between the
functional framework (:mod:`repro.nn`) and the GPU performance model
(:mod:`repro.gpusim`): the same lowering that executes on numpy is what gets
costed on the modeled K40.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .network import Net
from .tensor import FLOAT_BYTES

__all__ = ["LayerCost", "NetCost", "analyze", "plan_footprint"]


@dataclass(frozen=True)
class LayerCost:
    """Cost profile of one layer at a given batch size."""

    name: str
    type: str
    flops: int                      # total forward FLOPs for the batch
    gemms: Tuple[Tuple[int, int, int], ...]  # (M, N, K) per lowered GEMM
    param_bytes: int                # weight bytes the layer must stream
    activation_bytes: int           # input read + output written

    @property
    def is_gemm(self) -> bool:
        return bool(self.gemms)


@dataclass(frozen=True)
class NetCost:
    """Aggregate cost profile of a network at a given batch size."""

    net_name: str
    batch: int
    layers: Tuple[LayerCost, ...]

    @property
    def total_flops(self) -> int:
        return sum(l.flops for l in self.layers)

    @property
    def total_param_bytes(self) -> int:
        return sum(l.param_bytes for l in self.layers)

    @property
    def total_activation_bytes(self) -> int:
        return sum(l.activation_bytes for l in self.layers)

    @property
    def gemm_count(self) -> int:
        return sum(len(l.gemms) for l in self.layers)

    @property
    def kernel_count(self) -> int:
        """Kernel launches: each GEMM plus one kernel per non-GEMM layer."""
        return sum(len(l.gemms) if l.is_gemm else 1 for l in self.layers)


def analyze(net: Net, batch: int = 1) -> NetCost:
    """Compute the :class:`NetCost` of ``net`` at ``batch`` (no weights needed)."""
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")
    layers: List[LayerCost] = []
    for layer in net.layers:
        layers.append(
            LayerCost(
                name=layer.name,
                type=layer.type_name,
                flops=layer.flops_per_sample() * batch,
                gemms=tuple(layer.gemm_shapes(batch)),
                param_bytes=layer.param_bytes(),
                activation_bytes=layer.activation_bytes_per_sample() * batch,
            )
        )
    return NetCost(net_name=net.name, batch=batch, layers=tuple(layers))


def plan_footprint(net, batch: int = 1) -> dict:
    """Memory footprint of an :class:`repro.nn.engine.ExecutionPlan` for
    ``net`` at ``batch`` — computed by compiling the plan *shape-only*
    (``allocate=False``), so 120M-parameter nets can be costed without
    committing their arenas.

    Returns ``{"arena_bytes", "scratch_bytes", "total_bytes", "steps"}``.
    """
    from .engine import ExecutionPlan

    plan = ExecutionPlan(net, batch, allocate=False)
    return {
        "arena_bytes": plan.arena_bytes,
        "scratch_bytes": plan.scratch_bytes,
        "total_bytes": plan.arena_bytes + plan.scratch_bytes,
        "steps": len(plan.describe()["steps"]),
    }


def input_bytes(net: Net, batch: int = 1) -> int:
    """Bytes of raw float input a batch ships to the device."""
    size = 1
    for d in net.input_shape:
        size *= d
    return size * batch * FLOAT_BYTES
