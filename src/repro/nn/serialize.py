"""Model serialization: save/load a net's spec + weights as a single file.

The original DjiNN release shipped pre-trained Caffe models that the
service loaded at startup; this is the equivalent for ``repro.nn`` nets —
an ``.npz`` archive holding the JSON net spec plus every parameter blob,
so trained models (e.g. the examples' LeNet-5 or the taggers) can be
persisted and served later without retraining.
"""

from __future__ import annotations

import json
from typing import Union

import numpy as np

from .graph import GraphNet, GraphSpec
from .netspec import NetSpec
from .network import Net

__all__ = ["save_net", "load_net"]

_SPEC_KEY = "__netspec_json__"


def save_net(net, path: Union[str, "os.PathLike"]) -> None:  # noqa: F821
    """Write a materialized net (spec + weights) to an ``.npz`` archive.

    Works for both sequential :class:`Net` and DAG :class:`GraphNet`.
    """
    if not net.materialized:
        raise ValueError(f"net {net.name!r} has no weights to save")
    arrays = {_SPEC_KEY: np.frombuffer(
        json.dumps(net.spec.to_dict()).encode("utf-8"), dtype=np.uint8
    )}
    for index, blob in enumerate(net.params()):
        arrays[f"param_{index:04d}"] = blob.require_data()
    np.savez_compressed(path, **arrays)


def load_net(path: Union[str, "os.PathLike"]):  # noqa: F821
    """Rebuild a net (spec + weights) from :func:`save_net`'s archive.

    Returns a :class:`Net` or :class:`GraphNet` according to what was saved.
    """
    with np.load(path) as archive:
        if _SPEC_KEY not in archive:
            raise ValueError(f"{path}: not a repro.nn model archive")
        spec_dict = json.loads(bytes(archive[_SPEC_KEY]).decode("utf-8"))
        if spec_dict.get("kind") == "graph":
            net = GraphNet(GraphSpec.from_dict(spec_dict))
        else:
            net = Net(NetSpec.from_dict(spec_dict))
        params = net.params()
        keys = sorted(k for k in archive.files if k.startswith("param_"))
        if len(keys) != len(params):
            raise ValueError(
                f"{path}: archive has {len(keys)} blobs, net expects {len(params)}"
            )
        for blob, key in zip(params, keys):
            data = archive[key]
            if data.shape != blob.shape:
                raise ValueError(
                    f"{path}: blob {blob.name} shape {blob.shape} != stored {data.shape}"
                )
            blob.data = np.ascontiguousarray(data, dtype=np.float32)
            blob.grad = np.zeros(blob.shape, dtype=np.float32)
    net._materialized = True
    return net
