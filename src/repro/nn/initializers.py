"""Weight fillers, mirroring the fillers Caffe ships with.

Each filler is a callable ``filler(shape, rng) -> ndarray``; layers choose a
default but every layer spec accepts a ``weight_filler`` override.
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

import numpy as np

__all__ = ["constant", "gaussian", "xavier", "uniform", "get_filler"]

Filler = Callable[[Tuple[int, ...], np.random.Generator], np.ndarray]


def constant(value: float = 0.0) -> Filler:
    """Fill with a constant (Caffe's ``constant`` filler; used for biases)."""

    def fill(shape, rng):
        return np.full(shape, value, dtype=np.float32)

    return fill


def gaussian(std: float = 0.01, mean: float = 0.0) -> Filler:
    """Fill with N(mean, std^2) (Caffe's ``gaussian`` filler)."""

    def fill(shape, rng):
        return rng.normal(mean, std, size=shape).astype(np.float32)

    return fill


def uniform(low: float = -0.05, high: float = 0.05) -> Filler:
    def fill(shape, rng):
        return rng.uniform(low, high, size=shape).astype(np.float32)

    return fill


def xavier() -> Filler:
    """Caffe's ``xavier`` filler: uniform in ±sqrt(3 / fan_in).

    fan_in is taken as the product of all dimensions but the first, which
    matches Caffe's convention for both inner-product and convolution blobs.
    """

    def fill(shape, rng):
        fan_in = max(1, int(math.prod(shape[1:])))
        scale = math.sqrt(3.0 / fan_in)
        return rng.uniform(-scale, scale, size=shape).astype(np.float32)

    return fill


_NAMED = {
    "constant": constant,
    "gaussian": gaussian,
    "uniform": uniform,
    "xavier": xavier,
}


def get_filler(spec) -> Filler:
    """Resolve a filler from a callable, a name, or ``(name, kwargs)``."""
    if callable(spec):
        return spec
    if isinstance(spec, str):
        try:
            return _NAMED[spec]()
        except KeyError:
            raise ValueError(f"unknown filler {spec!r}; known: {sorted(_NAMED)}") from None
    if isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[0], str):
        name, kwargs = spec
        try:
            return _NAMED[name](**kwargs)
        except KeyError:
            raise ValueError(f"unknown filler {name!r}; known: {sorted(_NAMED)}") from None
    raise TypeError(f"cannot interpret filler spec {spec!r}")
