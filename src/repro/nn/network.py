"""Net: an executable feed-forward network built from a :class:`NetSpec`.

All seven Tonic networks are layer chains, so the network is a sequence;
application-level composition (e.g. CHK invoking POS first, §3.2.3 of the
paper) happens in :mod:`repro.tonic`, matching the paper's structure.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from .layers.base import Layer, ShapeError
from .netspec import NetSpec
from .tensor import Blob

__all__ = ["Net"]


class Net:
    """An instantiated network.

    Construction performs full shape inference but allocates **no** weights;
    call :meth:`materialize` before :meth:`forward`.  The shape-only form is
    what the GPU performance model consumes, so 120M-parameter networks can
    be costed without half a gigabyte of allocation.
    """

    def __init__(self, spec: NetSpec):
        self.spec = spec
        self.layers: List[Layer] = spec.build_layers()
        shape: Tuple[int, ...] = spec.input_shape
        for layer in self.layers:
            try:
                shape = layer.setup(shape)
            except (ShapeError, ValueError) as exc:
                raise ShapeError(f"net {spec.name!r}, layer {layer.name!r}: {exc}") from exc
        self.output_shape = shape
        self._materialized = False
        self._plan = None

    # ----------------------------------------------------------- properties
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return self.spec.input_shape

    @property
    def materialized(self) -> bool:
        return self._materialized

    @property
    def plan(self):
        """The attached :class:`repro.nn.engine.ExecutionPlan`, if any."""
        return self._plan

    def compile_plan(self, max_batch: int):
        """Compile and attach an arena-backed plan for batches up to
        ``max_batch``; subsequent inference ``forward`` calls within the
        envelope execute through it (same kernels, zero steady-state
        allocation).  Returns the plan."""
        from .engine import ExecutionPlan

        self._plan = ExecutionPlan(self, max_batch)
        return self._plan

    def params(self) -> List[Blob]:
        return [blob for layer in self.layers for blob in layer.params]

    def param_count(self) -> int:
        return sum(layer.param_count() for layer in self.layers)

    def param_bytes(self) -> int:
        return sum(layer.param_bytes() for layer in self.layers)

    def flops_per_sample(self) -> int:
        return sum(layer.flops_per_sample() for layer in self.layers)

    # -------------------------------------------------------------- weights
    def materialize(self, seed: int = 0) -> "Net":
        """Allocate and fill all weights deterministically from ``seed``."""
        rng = np.random.default_rng(seed)
        for layer in self.layers:
            layer.materialize(rng)
        self._materialized = True
        return self

    def zero_grad(self) -> None:
        for blob in self.params():
            blob.zero_grad()

    def copy_weights_from(self, other: "Net") -> None:
        """Share weight arrays with ``other`` (read-only model sharing).

        This is how the DjiNN registry gives every worker thread access to a
        single in-memory copy of each model (§3.1 "Request Processing").
        """
        mine, theirs = self.params(), other.params()
        if len(mine) != len(theirs):
            raise ValueError(
                f"cannot share weights: {self.name!r} has {len(mine)} blobs, "
                f"{other.name!r} has {len(theirs)}"
            )
        for dst, src in zip(mine, theirs):
            if dst.shape != src.shape:
                raise ValueError(
                    f"blob shape mismatch {dst.name}: {dst.shape} vs {src.shape}"
                )
            dst.data = src.require_data()
            dst.grad = np.zeros(dst.shape, dtype=np.float32)
        self._materialized = True

    # -------------------------------------------------------------- compute
    def forward(self, x: np.ndarray, train: bool = False, timer=None) -> np.ndarray:
        """Run the forward pass on a batch ``x`` of shape (N, *input_shape).

        ``timer`` is an optional per-layer profiling hook (duck-typed to
        :class:`repro.obs.LayerTimer`): ``timer.begin(layer)`` /
        ``timer.end(layer)`` bracket each layer, yielding the paper's
        Fig-4-style breakdown.  ``timer=None`` (the default) runs the
        original loop — disabled profiling costs nothing.
        """
        if not self._materialized:
            raise RuntimeError(f"net {self.name!r} is not materialized")
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == len(self.input_shape):  # single sample convenience
            x = x[None]
        # inference within the plan envelope executes through the arena;
        # training and oversize batches fall back to the allocating loop
        if self._plan is not None and not train and x.shape[0] <= self._plan.max_batch:
            return self._plan.run(x, timer=timer)
        if timer is None:
            for layer in self.layers:
                x = layer.forward(x, train=train)
        else:
            for layer in self.layers:
                timer.begin(layer)
                x = layer.forward(x, train=train)
                timer.end(layer)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Backpropagate; accumulates parameter gradients, returns d(input)."""
        for layer in reversed(self.layers):
            dout = layer.backward(dout)
        return dout

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class indices (argmax over the final dimension) for a batch."""
        return np.argmax(self.forward(x), axis=-1)

    # -------------------------------------------------------------- reports
    def summary(self) -> str:
        """Human-readable per-layer table (shapes, params, MFLOPs)."""
        rows = [f"{self.name}: input {self.input_shape}"]
        header = f"{'layer':24s} {'type':18s} {'output':>20s} {'params':>12s} {'MFLOP':>10s}"
        rows.append(header)
        rows.append("-" * len(header))
        for layer in self.layers:
            rows.append(
                f"{layer.name:24s} {layer.type_name:18s} "
                f"{str(layer.out_shape):>20s} {layer.param_count():>12,d} "
                f"{layer.flops_per_sample() / 1e6:>10.2f}"
            )
        rows.append(
            f"{'total':24s} {'':18s} {'':>20s} {self.param_count():>12,d} "
            f"{self.flops_per_sample() / 1e6:>10.2f}"
        )
        return "\n".join(rows)

    def __iter__(self) -> Iterable[Layer]:
        return iter(self.layers)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Net({self.name!r}, layers={len(self.layers)}, params={self.param_count():,d})"
