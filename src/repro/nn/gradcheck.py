"""Numerical gradient checking utilities (used heavily by the test suite to
verify every layer's backward pass against central finite differences).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .layers.base import Layer

__all__ = ["numerical_gradient", "check_layer_gradients", "max_relative_error"]


def numerical_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-3
) -> np.ndarray:
    """Central-difference gradient of a scalar function at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = f(x)
        flat[i] = orig - eps
        minus = f(x)
        flat[i] = orig
        gflat[i] = (plus - minus) / (2.0 * eps)
    return grad


def max_relative_error(a: np.ndarray, b: np.ndarray, floor: float = 1e-4) -> float:
    """max |a-b| / max(|a|, |b|, floor), elementwise."""
    denom = np.maximum(np.maximum(np.abs(a), np.abs(b)), floor)
    return float(np.max(np.abs(a - b) / denom))


def check_layer_gradients(
    layer: Layer,
    x: np.ndarray,
    eps: float = 1e-3,
    seed: int = 0,
    projection: Optional[np.ndarray] = None,
) -> dict:
    """Compare analytic vs numerical gradients for a layer.

    The layer must already be set up (and materialized if it has weights).
    The scalar objective is ``sum(forward(x) * projection)`` with a fixed
    random projection, which exercises every output element.

    Returns a dict of max relative errors: ``{"input": e, "<blob name>": e}``.
    """
    rng = np.random.default_rng(seed)
    y = layer.forward(np.array(x, dtype=np.float64), train=True)
    proj = projection if projection is not None else rng.normal(size=y.shape)

    def objective_input(inp):
        return float(np.sum(layer.forward(inp, train=False) * proj))

    errors = {}
    num_dx = numerical_gradient(objective_input, np.array(x, dtype=np.float64), eps)
    # analytic pass (fresh forward so caches match the x we differentiate at)
    layer.forward(np.array(x, dtype=np.float64), train=True)
    for blob in layer.params:
        blob.zero_grad()
    ana_dx = layer.backward(proj)
    errors["input"] = max_relative_error(num_dx, np.asarray(ana_dx, dtype=np.float64))

    for blob in layer.params:
        def objective_param(w, _blob=blob):
            _blob.data = w.astype(np.float32)
            return float(np.sum(layer.forward(np.array(x, dtype=np.float64), train=False) * proj))

        w0 = blob.data.astype(np.float64).copy()
        num_dw = numerical_gradient(objective_param, w0.copy(), eps)
        blob.data = w0.astype(np.float32)
        errors[blob.name] = max_relative_error(num_dw, np.asarray(blob.grad, dtype=np.float64))
    return errors
