"""GraphNet: DAG-structured networks.

DjiNN's design goal is to serve "a spectrum of applications and neural
network architectures" (paper §3.1); the seven Tonic networks happen to be
chains, but 2014-era architectures already branched (GoogLeNet's inception
modules, multi-tower AlexNet).  :class:`GraphNet` generalizes
:class:`~repro.nn.network.Net` to arbitrary DAGs — named bottoms per layer,
topological execution, gradient fan-in on the backward pass — while
exposing the same serving surface (``input_shape``, ``forward``,
``materialize``, ``param_bytes``), so a GraphNet drops into the DjiNN model
registry unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .layers.base import Layer, ShapeError, create_layer, layer_registry
from .layers.merge import MultiInputLayer
from .tensor import Blob

__all__ = ["GraphLayerSpec", "GraphSpec", "GraphNet", "INPUT"]

#: The reserved bottom name referring to the network input.
INPUT = "input"


@dataclass(frozen=True)
class GraphLayerSpec:
    """One node: a layer plus the named tops it consumes."""

    type: str
    name: str
    bottoms: Tuple[str, ...]
    params: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if self.type not in layer_registry():
            raise ValueError(f"layer {self.name!r}: unknown type {self.type!r}")
        if not self.name or self.name == INPUT:
            raise ValueError(f"invalid layer name {self.name!r}")
        if not self.bottoms:
            raise ValueError(f"layer {self.name!r} consumes nothing")


@dataclass(frozen=True)
class GraphSpec:
    """A DAG network: one input, topologically ordered layers, one output."""

    name: str
    input_shape: Tuple[int, ...]
    layers: Tuple[GraphLayerSpec, ...]
    output: str  # name of the layer whose top is the network output

    def __post_init__(self):
        object.__setattr__(self, "input_shape", tuple(int(d) for d in self.input_shape))
        object.__setattr__(self, "layers", tuple(self.layers))
        self.validate()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "graph",
            "name": self.name,
            "input_shape": list(self.input_shape),
            "output": self.output,
            "layers": [
                {"type": s.type, "name": s.name, "bottoms": list(s.bottoms),
                 "params": dict(s.params)}
                for s in self.layers
            ],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "GraphSpec":
        return cls(
            name=d["name"],
            input_shape=tuple(d["input_shape"]),
            layers=tuple(
                GraphLayerSpec(type=s["type"], name=s["name"],
                               bottoms=tuple(s["bottoms"]),
                               params=dict(s.get("params", {})))
                for s in d["layers"]
            ),
            output=d["output"],
        )

    def validate(self) -> None:
        if not self.layers:
            raise ValueError(f"graph {self.name!r} has no layers")
        defined = {INPUT}
        for spec in self.layers:
            spec.validate()
            if spec.name in defined:
                raise ValueError(f"graph {self.name!r}: duplicate top {spec.name!r}")
            missing = [b for b in spec.bottoms if b not in defined]
            if missing:
                raise ValueError(
                    f"graph {self.name!r}: layer {spec.name!r} consumes "
                    f"undefined top(s) {missing} — layers must be listed in "
                    "topological order"
                )
            defined.add(spec.name)
        if self.output not in defined or self.output == INPUT:
            raise ValueError(f"graph {self.name!r}: output {self.output!r} is not a layer top")


class GraphNet:
    """An executable DAG network (the serving surface matches ``Net``)."""

    def __init__(self, spec: GraphSpec):
        self.spec = spec
        self.layers: List[Layer] = []
        self._specs: Dict[str, GraphLayerSpec] = {}
        shapes: Dict[str, Tuple[int, ...]] = {INPUT: spec.input_shape}
        for layer_spec in spec.layers:
            layer = create_layer(layer_spec.type, layer_spec.name, **layer_spec.params)
            in_shapes = [shapes[b] for b in layer_spec.bottoms]
            try:
                if isinstance(layer, MultiInputLayer):
                    shapes[layer_spec.name] = layer.setup(in_shapes)
                else:
                    if len(in_shapes) != 1:
                        raise ShapeError(
                            f"{layer_spec.type} takes one bottom, got {len(in_shapes)}"
                        )
                    shapes[layer_spec.name] = layer.setup(in_shapes[0])
            except (ShapeError, ValueError) as exc:
                raise ShapeError(f"graph {spec.name!r}, layer {layer_spec.name!r}: {exc}") from exc
            self.layers.append(layer)
            self._specs[layer_spec.name] = layer_spec
        self.output_shape = shapes[spec.output]
        #: consumers of each top (for gradient fan-in)
        self._consumers: Dict[str, List[str]] = {INPUT: []}
        for layer_spec in spec.layers:
            self._consumers[layer_spec.name] = []
            for bottom in layer_spec.bottoms:
                self._consumers[bottom].append(layer_spec.name)
        self._materialized = False
        self._plan = None

    # ------------------------------------------------------------ protocol
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return self.spec.input_shape

    @property
    def materialized(self) -> bool:
        return self._materialized

    @property
    def plan(self):
        """The attached :class:`repro.nn.engine.ExecutionPlan`, if any."""
        return self._plan

    def compile_plan(self, max_batch: int):
        """Compile and attach an arena-backed plan (see :meth:`repro.nn.Net.compile_plan`)."""
        from .engine import ExecutionPlan

        self._plan = ExecutionPlan(self, max_batch)
        return self._plan

    def params(self) -> List[Blob]:
        return [blob for layer in self.layers for blob in layer.params]

    def param_count(self) -> int:
        return sum(layer.param_count() for layer in self.layers)

    def param_bytes(self) -> int:
        return sum(layer.param_bytes() for layer in self.layers)

    def materialize(self, seed: int = 0) -> "GraphNet":
        rng = np.random.default_rng(seed)
        for layer in self.layers:
            layer.materialize(rng)
        self._materialized = True
        return self

    def zero_grad(self) -> None:
        for blob in self.params():
            blob.zero_grad()

    # ------------------------------------------------------------- compute
    def forward(self, x: np.ndarray, train: bool = False, timer=None) -> np.ndarray:
        """Run the DAG forward pass; ``timer`` is the same optional per-layer
        profiling hook as :meth:`repro.nn.Net.forward` (begin/end per layer)."""
        if not self._materialized:
            raise RuntimeError(f"graph {self.name!r} is not materialized")
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == len(self.input_shape):
            x = x[None]
        if self._plan is not None and not train and x.shape[0] <= self._plan.max_batch:
            return self._plan.run(x, timer=timer)
        tops: Dict[str, np.ndarray] = {INPUT: x}
        for layer in self.layers:
            spec = self._specs[layer.name]
            inputs = [tops[b] for b in spec.bottoms]
            if timer is not None:
                timer.begin(layer)
            if isinstance(layer, MultiInputLayer):
                tops[layer.name] = layer.forward(inputs, train=train)
            else:
                tops[layer.name] = layer.forward(inputs[0], train=train)
            if timer is not None:
                timer.end(layer)
        if train:
            self._tops_kept = True
        return tops[self.spec.output]

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Backpropagate from the output; returns d(input).

        Gradients fan in: a top consumed by several layers receives the sum
        of its consumers' input-gradients.
        """
        grads: Dict[str, Optional[np.ndarray]] = {self.spec.output: np.asarray(dout)}

        def accumulate(name: str, grad: np.ndarray) -> None:
            grads[name] = grad if grads.get(name) is None else grads[name] + grad

        for layer in reversed(self.layers):
            grad = grads.get(layer.name)
            if grad is None:
                continue  # dead branch: nothing downstream consumed it
            spec = self._specs[layer.name]
            dx = layer.backward(grad)
            if isinstance(layer, MultiInputLayer):
                for bottom, d in zip(spec.bottoms, dx):
                    accumulate(bottom, d)
            else:
                accumulate(spec.bottoms[0], dx)
        result = grads.get(INPUT)
        if result is None:
            raise RuntimeError(f"graph {self.name!r}: no gradient reached the input")
        return result

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(x), axis=-1)

    def __repr__(self) -> str:  # pragma: no cover
        return f"GraphNet({self.name!r}, layers={len(self.layers)}, params={self.param_count():,d})"
