"""Blob: the named parameter tensor used throughout the ``repro.nn`` framework.

A :class:`Blob` pairs a data array with a same-shaped gradient array, the way
Caffe's blobs do.  Blobs can exist *unmaterialized* — shape-only — so that the
GPU performance model (:mod:`repro.gpusim`) can reason about multi-hundred-
megabyte networks (e.g. DeepFace's ~120M parameters) without allocating them.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

__all__ = ["Blob", "FLOAT_BYTES"]

#: All arithmetic in the framework is single precision, as in Caffe/cuDNN.
FLOAT_BYTES = 4


class Blob:
    """A named, optionally materialized parameter tensor with a gradient.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"conv1.weight"``.
    shape:
        Tensor shape.  Known at construction even when unmaterialized.
    """

    def __init__(self, name: str, shape: Tuple[int, ...]):
        if any(int(d) <= 0 for d in shape):
            raise ValueError(f"blob {name!r}: non-positive dimension in shape {shape}")
        self.name = name
        self.shape = tuple(int(d) for d in shape)
        self.data: Optional[np.ndarray] = None
        self.grad: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ info
    @property
    def size(self) -> int:
        """Number of elements."""
        return int(math.prod(self.shape))

    @property
    def nbytes(self) -> int:
        """Bytes occupied when materialized (float32)."""
        return self.size * FLOAT_BYTES

    @property
    def materialized(self) -> bool:
        return self.data is not None

    # ------------------------------------------------------ materialization
    def materialize(self, filler, rng: np.random.Generator) -> None:
        """Allocate ``data`` using ``filler(shape, rng)`` and zero ``grad``."""
        self.data = np.asarray(filler(self.shape, rng), dtype=np.float32)
        if self.data.shape != self.shape:
            raise ValueError(
                f"filler for blob {self.name!r} produced shape "
                f"{self.data.shape}, expected {self.shape}"
            )
        self.grad = np.zeros(self.shape, dtype=np.float32)

    def require_data(self) -> np.ndarray:
        """Return ``data``, raising a clear error if unmaterialized."""
        if self.data is None:
            raise RuntimeError(
                f"blob {self.name!r} is not materialized; call Net.materialize() "
                "before running forward/backward"
            )
        return self.data

    def zero_grad(self) -> None:
        if self.grad is not None:
            self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "materialized" if self.materialized else "shape-only"
        return f"Blob({self.name!r}, shape={self.shape}, {state})"
