"""``repro.nn`` — a from-scratch, Caffe-equivalent DNN framework on numpy.

This is the reproduction's substitute for Caffe+cuDNN (paper §3.1): the same
layer vocabulary the Tonic networks need (convolution with groups, pooling,
LRN, inner product, DeepFace's locally-connected layers, the activations,
softmax, dropout), declarative network specs, forward inference, full
backpropagation, and an SGD solver.  Networks can be built *shape-only* so
the GPU performance model can cost 120M-parameter nets without allocating
them.
"""

from . import layers  # noqa: F401  (registers all layer types)
from .engine import (ExecutionPlan, LayerCache, LayerCacheConfig,
                     PlanError, measure_steady_state_alloc)
from .gradcheck import check_layer_gradients, max_relative_error, numerical_gradient
from .graph import INPUT, GraphLayerSpec, GraphNet, GraphSpec
from .netspec import LayerSpec, NetSpec
from .network import Net
from .serialize import load_net, save_net
from .tensor import FLOAT_BYTES, Blob
from .train import SgdSolver, TrainLog, accuracy
from .workspace import LayerCost, NetCost, analyze, plan_footprint

__all__ = [
    "layers",
    "LayerSpec",
    "NetSpec",
    "Net",
    "Blob",
    "FLOAT_BYTES",
    "SgdSolver",
    "TrainLog",
    "accuracy",
    "LayerCost",
    "NetCost",
    "analyze",
    "check_layer_gradients",
    "max_relative_error",
    "numerical_gradient",
    "save_net",
    "load_net",
    "GraphNet",
    "GraphSpec",
    "GraphLayerSpec",
    "INPUT",
    "ExecutionPlan",
    "LayerCache",
    "LayerCacheConfig",
    "PlanError",
    "measure_steady_state_alloc",
    "plan_footprint",
]
