"""Declarative network specifications — the prototxt analogue.

A :class:`NetSpec` is a named, validated, serializable description of a
feed-forward network: an input shape plus an ordered list of
:class:`LayerSpec` entries.  Model factories in :mod:`repro.models` produce
these; :class:`repro.nn.network.Net` instantiates them; the DjiNN model
registry ships them to the service; and :mod:`repro.gpusim` costs them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .layers.base import create_layer, layer_registry

__all__ = ["LayerSpec", "NetSpec"]


@dataclass(frozen=True)
class LayerSpec:
    """One layer: a registered type name, a unique name, and its parameters."""

    type: str
    name: str
    params: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if self.type not in layer_registry():
            raise ValueError(
                f"layer {self.name!r}: unknown type {self.type!r}; "
                f"known: {sorted(layer_registry())}"
            )
        if not self.name:
            raise ValueError("layer name must be non-empty")

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.type, "name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "LayerSpec":
        return cls(type=d["type"], name=d["name"], params=dict(d.get("params", {})))


@dataclass(frozen=True)
class NetSpec:
    """A whole network: name, per-sample input shape, ordered layers."""

    name: str
    input_shape: Tuple[int, ...]
    layers: Tuple[LayerSpec, ...]

    def __post_init__(self):
        object.__setattr__(self, "input_shape", tuple(int(d) for d in self.input_shape))
        object.__setattr__(self, "layers", tuple(self.layers))
        self.validate()

    def validate(self) -> None:
        if not self.layers:
            raise ValueError(f"net {self.name!r} has no layers")
        if any(d <= 0 for d in self.input_shape):
            raise ValueError(f"net {self.name!r}: bad input shape {self.input_shape}")
        seen = set()
        for spec in self.layers:
            spec.validate()
            if spec.name in seen:
                raise ValueError(f"net {self.name!r}: duplicate layer name {spec.name!r}")
            seen.add(spec.name)

    # ------------------------------------------------------------ utilities
    def build_layers(self) -> List:
        """Instantiate (but do not set up) the layer objects."""
        return [create_layer(s.type, s.name, **s.params) for s in self.layers]

    def without(self, *types: str) -> "NetSpec":
        """A copy with all layers of the given types removed.

        Used by the trainer to strip the inference-time Softmax when the
        fused softmax-cross-entropy loss is applied instead.
        """
        kept = tuple(s for s in self.layers if s.type not in types)
        return NetSpec(name=self.name, input_shape=self.input_shape, layers=kept)

    @property
    def depth(self) -> int:
        """Layer count as the paper's Table 1 counts layers (all stages)."""
        return len(self.layers)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "input_shape": list(self.input_shape),
            "layers": [s.to_dict() for s in self.layers],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "NetSpec":
        return cls(
            name=d["name"],
            input_shape=tuple(d["input_shape"]),
            layers=tuple(LayerSpec.from_dict(s) for s in d["layers"]),
        )
