"""Multi-GPU server scaling (paper §5.3 and §6.1, Figures 11-13).

A server hosts N GPUs, each running the application's chosen batch size with
4 MPS service instances (the paper's operating point).  GPUs do not
communicate; the only shared resource is the host's aggregate
host-to-device bandwidth, which is what flattens the NLP curves at ~4 GPUs
in Figure 11.  Pinning inputs in GPU memory (the paper's experiment for
Figure 12) removes transfers entirely, and the bandwidth a *pinned* system
would need to keep scaling is Figure 13's requirement curve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import List, Sequence

from .appmodel import AppModel, app_model
from .device import PLATFORM, PlatformSpec
from .mps import Segment, service_segments, simulate_concurrent

__all__ = ["GpuServerModel", "ScalingPoint"]

#: Concurrent MPS service instances per GPU (paper §5.3: "4 MPS processes").
MPS_INSTANCES = 4


@dataclass(frozen=True)
class ScalingPoint:
    """Throughput of an N-GPU server for one application."""

    app: str
    gpus: int
    qps: float                 # queries per second (Tonic queries)
    bandwidth_gbs: float       # host link traffic this throughput generates
    link_limited: bool


class GpuServerModel:
    """An N-GPU DjiNN server for one application."""

    def __init__(self, model: AppModel, platform: PlatformSpec = PLATFORM):
        self.model = model
        self.platform = platform

    # ------------------------------------------------------------ per GPU
    def per_gpu_qps(self, pinned: bool = False, instances: int = MPS_INSTANCES) -> float:
        """One GPU's query throughput at the Table 3 batch with MPS."""
        return _per_gpu_qps(self.model.app, self.platform, pinned, instances) * self.model.best_batch

    # ------------------------------------------------------------- scaling
    def scale(self, gpus: int, pinned: bool = False) -> ScalingPoint:
        """Throughput with ``gpus`` GPUs sharing the host link (Fig 11/12)."""
        if gpus < 1:
            raise ValueError(f"need at least one GPU, got {gpus}")
        per_gpu = self.per_gpu_qps(pinned=pinned)
        unconstrained = gpus * per_gpu
        if pinned:
            return ScalingPoint(self.model.app, gpus, unconstrained, 0.0, False)
        bytes_per_query = self.model.wire_bytes_per_query
        link_cap_qps = self.platform.host_link_gbs * 1e9 / bytes_per_query
        qps = min(unconstrained, link_cap_qps)
        return ScalingPoint(
            app=self.model.app,
            gpus=gpus,
            qps=qps,
            bandwidth_gbs=qps * bytes_per_query / 1e9,
            link_limited=unconstrained > link_cap_qps,
        )

    def sweep(self, gpu_counts: Sequence[int] = (1, 2, 4, 8), pinned: bool = False) -> List[ScalingPoint]:
        return [self.scale(n, pinned=pinned) for n in gpu_counts]

    # ----------------------------------------------------------- bandwidth
    def bandwidth_required_gbs(self, gpus: int) -> float:
        """Host bandwidth needed to sustain unconstrained scaling (Fig 13)."""
        per_gpu = self.per_gpu_qps(pinned=True)
        return gpus * per_gpu * self.model.wire_bytes_per_query / 1e9

    def speedup_vs_cpu_core(self, gpus: int, pinned: bool = False) -> float:
        """End-to-end DNN throughput vs one Xeon core (Figs 11/12 y-axis)."""
        cpu_qps = 1.0 / self.model.cpu_dnn_time(self.platform.cpu_core)
        return self.scale(gpus, pinned=pinned).qps / cpu_qps


@lru_cache(maxsize=None)
def _per_gpu_qps(app: str, platform: PlatformSpec, pinned: bool, instances: int) -> float:
    """Batched-request completions/second of one GPU (cached; in requests)."""
    model = app_model(app)
    segments = service_segments(model, platform)
    if pinned:
        # drop PCIe transfer segments (first/last), keep service overhead
        overhead = platform.service_overhead_us * 1e-6
        segments = [Segment("idle", overhead)] + list(segments[1:-1])
    result = simulate_concurrent(segments, instances, mode="mps")
    return result.qps
