"""Discrete-event cross-check of the multi-GPU scaling model.

:mod:`repro.gpusim.multigpu` predicts an N-GPU server's throughput
analytically: ``min(N x per-GPU rate, host link / bytes-per-query)``.  This
module reaches the same quantity a second, independent way — a
discrete-event simulation in which each batched request must first move its
bytes across a shared host-link resource and then occupy its GPU — so the
Figure 11 plateau is corroborated rather than assumed.  The agreement test
lives in ``tests/test_hostsim.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.core import Acquire, Environment, Release, Resource, Timeout
from .appmodel import AppModel
from .device import PLATFORM, PlatformSpec

__all__ = ["HostSimResult", "simulate_server"]


@dataclass(frozen=True)
class HostSimResult:
    """Steady-state behaviour of the simulated N-GPU server."""

    gpus: int
    qps: float                # Tonic queries per second
    link_utilization: float
    gpu_utilization: float


def simulate_server(
    model: AppModel,
    gpus: int,
    platform: PlatformSpec = PLATFORM,
    batches_per_gpu: int = 200,
    pinned: bool = False,
) -> HostSimResult:
    """Closed-loop DES of ``gpus`` devices fed through one host link.

    Each GPU runs a driver that, per batched request, (1) holds the host
    link for the batch's transfer time, then (2) occupies its GPU for the
    modeled forward-pass time.  Transfers from different GPUs serialize on
    the link; compute proceeds in parallel — exactly the contention the
    analytic model folds into its ``min()``.
    """
    if gpus < 1:
        raise ValueError("need at least one GPU")
    batch = model.best_batch
    bytes_per_batch = batch * model.wire_bytes_per_query
    transfer_s = bytes_per_batch / (platform.host_link_gbs * 1e9)
    compute_s = model.gpu_profile(batch, platform.gpu).time_s

    env = Environment()
    link = Resource(env, capacity=1, name="host-link")
    gpu_resources = [Resource(env, capacity=1, name=f"gpu{g}") for g in range(gpus)]
    completed = [0] * gpus

    def driver(gpu_index: int):
        gpu = gpu_resources[gpu_index]
        for _ in range(batches_per_gpu):
            if not pinned:
                yield Acquire(link)
                yield Timeout(transfer_s)
                yield Release(link)
            yield Acquire(gpu)
            yield Timeout(compute_s)
            yield Release(gpu)
            completed[gpu_index] += 1

    for g in range(gpus):
        env.process(driver(g), name=f"driver-{g}")
    env.run()

    total_batches = sum(completed)
    qps = total_batches * batch / env.now if env.now > 0 else 0.0
    return HostSimResult(
        gpus=gpus,
        qps=qps,
        link_utilization=link.utilization(),
        gpu_utilization=sum(r.utilization() for r in gpu_resources) / gpus,
    )
