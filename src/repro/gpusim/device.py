"""Device models: the NVIDIA Tesla K40 and the Intel Xeon E5-2620 v2 core.

This module is the reproduction's substitute for the paper's silicon
(Table 2).  Architectural numbers (SM count, clocks, DRAM bandwidth, thread
capacity, PCIe rates) are the devices' published specifications.  Four
*calibration constants* — the fractions of peak that real kernels achieve —
are free parameters of the model; their values were chosen once so the
batch-1 GPU/CPU speedups land in the neighbourhood of the paper's Figure 5
(ASR ~120x, NLP ~7x, >30M-parameter networks >20x) and are then held fixed
for every other experiment.  ``benchmarks/bench_ablation_efficiency.py``
sweeps them to show the paper's qualitative shapes do not depend on the
particular values.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuSpec", "CpuCoreSpec", "K40", "XEON_E5_2620V2_CORE", "PLATFORM"]


@dataclass(frozen=True)
class GpuSpec:
    """A CUDA GPU for the kernel cost model."""

    name: str
    num_sms: int
    cores_per_sm: int
    clock_ghz: float
    mem_bandwidth_gbs: float
    mem_bytes: int
    max_threads_per_sm: int
    max_concurrent_processes: int  # MPS client limit (16 on Kepler)
    # ---- calibration constants (see module docstring) ----
    gemm_efficiency: float         # fraction of peak FLOPs a full-occupancy GEMM achieves
    mem_efficiency: float          # fraction of DRAM peak streaming kernels achieve
    kernel_launch_us: float        # host-side cost per kernel launch
    min_kernel_us: float           # pipeline floor: no kernel completes faster
    occupancy_cap: float           # register/shared-memory limit on achievable occupancy
    lc_mem_penalty: float          # locally-connected weight streams are this much slower
    # GEMM tiling assumed by the occupancy model (cuBLAS-like)
    tile_m: int = 32
    tile_n: int = 32
    threads_per_block: int = 256

    @property
    def peak_gflops(self) -> float:
        """Single-precision peak, counting FMA as 2 FLOPs."""
        return 2.0 * self.num_sms * self.cores_per_sm * self.clock_ghz

    @property
    def max_threads(self) -> int:
        return self.num_sms * self.max_threads_per_sm

    @property
    def effective_mem_gbs(self) -> float:
        return self.mem_bandwidth_gbs * self.mem_efficiency


@dataclass(frozen=True)
class CpuCoreSpec:
    """One CPU core running an ATLAS-linked BLAS (the paper's baseline)."""

    name: str
    clock_ghz: float
    flops_per_cycle: float         # SIMD width x FMA (AVX on Ivy Bridge: 8 SP)
    mem_bandwidth_gbs: float       # single-core achievable stream bandwidth
    # ---- calibration constants ----
    gemm_efficiency: float         # ATLAS fraction of peak on large GEMMs
    layer_overhead_us: float       # framework overhead per layer invocation

    @property
    def peak_gflops(self) -> float:
        return self.clock_ghz * self.flops_per_cycle


#: NVIDIA Tesla K40: 15 SMX x 192 cores @ 745 MHz = 4.29 TFLOP/s SP peak,
#: 12 GB GDDR5 @ 288 GB/s, 2048 threads/SM.
K40 = GpuSpec(
    name="NVIDIA Tesla K40",
    num_sms=15,
    cores_per_sm=192,
    clock_ghz=0.745,
    mem_bandwidth_gbs=288.0,
    mem_bytes=12 * 1024**3,
    max_threads_per_sm=2048,
    max_concurrent_processes=16,
    gemm_efficiency=0.45,
    mem_efficiency=0.75,
    kernel_launch_us=7.0,
    min_kernel_us=3.0,
    occupancy_cap=0.9375,
    lc_mem_penalty=3.0,
)

#: One core of the Intel Xeon E5-2620 v2 (Ivy Bridge EP, 2.1 GHz, AVX).
XEON_E5_2620V2_CORE = CpuCoreSpec(
    name="Intel Xeon E5-2620 v2 (1 core)",
    clock_ghz=2.1,
    flops_per_cycle=8.0,
    mem_bandwidth_gbs=10.0,
    gemm_efficiency=0.85,
    layer_overhead_us=2.0,
)


@dataclass(frozen=True)
class PlatformSpec:
    """Table 2: the GPU server the paper measures on."""

    gpus: int = 8
    gpu: GpuSpec = K40
    cpu_core: CpuCoreSpec = XEON_E5_2620V2_CORE
    sockets: int = 2
    cores_per_socket: int = 6
    dram_gb: int = 256
    #: Aggregate host<->device bandwidth budget shared by all GPUs.  Each
    #: K40 sits on a PCIe 3.0 x16 slot (15.75 GB/s), but the dual-socket
    #: host exposes two root complexes, so the shared budget is ~2 x 15.75.
    #: This shared ceiling is what flattens NLP scaling at ~4 GPUs (Fig 11).
    host_link_gbs: float = 31.5
    pcie_per_gpu_gbs: float = 15.75
    pcie_latency_us: float = 10.0
    #: Host-side per-request cost (socket receive, worker dispatch, CUDA
    #: synchronization) during which the GPU is idle for that service
    #: instance.  This idle time is part of what concurrent MPS services
    #: overlap (paper §5.2).
    service_overhead_us: float = 100.0

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket


PLATFORM = PlatformSpec()
