"""Batch-size selection (paper §5.1).

The paper sweeps batch sizes per application (Figure 7) and picks, by
inspection, "the batch size for each application to achieve the high
throughput while limiting query latency impact" (Table 3's final column).
This module turns that inspection into an algorithm so the choice is
reproducible: pick the *smallest* batch whose throughput reaches a fraction
of the plateau, subject to a query-latency budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from .appmodel import AppModel
from .device import PLATFORM, PlatformSpec

__all__ = ["BatchChoice", "select_batch", "batch_sweep"]

#: Candidate batch sizes, as in the paper's sweep.
DEFAULT_CANDIDATES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class BatchChoice:
    """The selected batch and the sweep evidence behind it."""

    app: str
    batch: int
    qps: float
    latency_s: float
    plateau_qps: float          # best throughput seen anywhere in the sweep
    throughput_fraction: float  # qps / plateau_qps at the chosen batch


def batch_sweep(
    model: AppModel,
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    platform: PlatformSpec = PLATFORM,
):
    """(batch, qps, latency) for each candidate batch size (Figure 7 data)."""
    return [
        (b, model.gpu_qps(b, platform), model.gpu_query_time(b, platform))
        for b in candidates
    ]


def select_batch(
    model: AppModel,
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    platform: PlatformSpec = PLATFORM,
    throughput_target: float = 0.85,
    latency_budget_s: float = None,
) -> BatchChoice:
    """Choose a batch size the way the paper's Table 3 column was chosen.

    Parameters
    ----------
    throughput_target:
        Required fraction of the sweep's plateau throughput.
    latency_budget_s:
        Hard cap on the batched query latency.  Defaults to the
        application's single-query CPU service time — the paper notes the
        GPU configurations it selects stay below the CPU's latency, which
        makes that a natural budget.
    """
    if not candidates:
        raise ValueError("no candidate batch sizes")
    if not 0.0 < throughput_target <= 1.0:
        raise ValueError(f"throughput_target must be in (0, 1], got {throughput_target}")
    if latency_budget_s is None:
        latency_budget_s = model.cpu_query_time(platform.cpu_core)

    sweep = batch_sweep(model, candidates, platform)
    plateau = max(qps for _, qps, _ in sweep)

    feasible = [(b, qps, lat) for b, qps, lat in sweep if lat <= latency_budget_s]
    if not feasible:  # nothing meets the budget: fall back to batch 1
        feasible = sweep[:1]
    best_feasible_qps = max(qps for _, qps, _ in feasible)
    target = throughput_target * min(plateau, best_feasible_qps)
    for batch, qps, latency in feasible:
        if qps >= target:
            return BatchChoice(
                app=model.app,
                batch=batch,
                qps=qps,
                latency_s=latency,
                plateau_qps=plateau,
                throughput_fraction=qps / plateau,
            )
    batch, qps, latency = feasible[-1]  # pragma: no cover - defensive
    return BatchChoice(model.app, batch, qps, latency, plateau, qps / plateau)
