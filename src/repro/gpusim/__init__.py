"""``repro.gpusim`` — the K40-class GPU performance model.

The reproduction's substitute for the paper's measured hardware: a roofline
kernel cost model over the exact GEMM lowering the numpy framework executes,
an occupancy calculator, an MPS-vs-time-sharing concurrency simulator, and a
multi-GPU host model with a shared interconnect budget.  Together these
regenerate the paper's Figures 4 through 13.
"""

from .appmodel import AppModel, all_app_models, app_model
from .cost import (
    GpuForwardProfile,
    KernelTiming,
    cpu_forward_time,
    gpu_forward_time,
    gpu_kernel_timing,
)
from .device import K40, PLATFORM, XEON_E5_2620V2_CORE, CpuCoreSpec, GpuSpec, PlatformSpec
from .kernels import Kernel, lower, occupancy, tile_utilization
from .mps import ConcurrencyResult, Segment, mps_sweep, service_segments, simulate_concurrent
from .multigpu import MPS_INSTANCES, GpuServerModel, ScalingPoint
from .pcie import (
    ETH_10G,
    ETH_40G,
    ETH_400G,
    PCIE_V3_X16,
    PCIE_V4_X16,
    QPI_12_GPU_HOST,
    QPI_LINK,
    Link,
)
from .energy import K40_POWER, XEON_CORE_POWER, PowerDraw, QueryEnergy, query_energy
from .hostsim import HostSimResult, simulate_server
from .profiler import CounterProfile, profile_app
from .tuning import BatchChoice, batch_sweep, select_batch

__all__ = [
    "AppModel",
    "all_app_models",
    "app_model",
    "GpuForwardProfile",
    "KernelTiming",
    "cpu_forward_time",
    "gpu_forward_time",
    "gpu_kernel_timing",
    "K40",
    "PLATFORM",
    "XEON_E5_2620V2_CORE",
    "CpuCoreSpec",
    "GpuSpec",
    "PlatformSpec",
    "Kernel",
    "lower",
    "occupancy",
    "tile_utilization",
    "ConcurrencyResult",
    "Segment",
    "mps_sweep",
    "service_segments",
    "simulate_concurrent",
    "MPS_INSTANCES",
    "GpuServerModel",
    "ScalingPoint",
    "Link",
    "PCIE_V3_X16",
    "PCIE_V4_X16",
    "QPI_LINK",
    "QPI_12_GPU_HOST",
    "ETH_10G",
    "ETH_40G",
    "ETH_400G",
    "CounterProfile",
    "profile_app",
    "BatchChoice",
    "batch_sweep",
    "select_batch",
    "PowerDraw",
    "QueryEnergy",
    "query_energy",
    "K40_POWER",
    "XEON_CORE_POWER",
    "HostSimResult",
    "simulate_server",
]
