"""Per-application service models (Table 3 + Figure 4's cost structure).

An :class:`AppModel` connects a Tonic application to the performance model:
how many DNN input rows one query carries, the batch size chosen in Table 3,
the bytes a query moves over the interconnect, and how much CPU-side pre/
post-processing surrounds the DNN.

The pre/post ratios are *modeled estimates of the paper's software stacks*
(Kaldi's feature extraction + lattice search; SENNA's tokenization + tag
search), chosen to match Figure 4's published cycle breakdown: image tasks
are effectively all DNN, ASR's DNN is about half its cycles, and the NLP
tasks' DNNs are about two thirds.  Our own Python pipeline has different
constant factors; ``benchmarks/bench_fig4_breakdown.py`` reports both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from ..models.registry import APPLICATIONS, build_net
from ..nn.network import Net
from ..nn.tensor import FLOAT_BYTES
from ..nn.workspace import analyze
from .cost import GpuForwardProfile, cpu_forward_time, gpu_forward_time
from .device import PLATFORM, CpuCoreSpec, GpuSpec, PlatformSpec

__all__ = ["AppModel", "app_model", "all_app_models"]

_US = 1e-6

#: (inputs/query, Table 3 batch, Table 3 input KB, pre+post/DNN CPU ratio,
#:  raw floats shipped per input or None for the net's input shape,
#:  chained app whose request rides along, or None)
_APP_TABLE: Dict[str, Tuple[int, int, float, float, int, str]] = {
    "imc": (1, 16, 604.0, 0.02, None, None),
    # DIG ships 28x28 digits; the service pads to LeNet-5's 32x32 retina
    "dig": (100, 16, 307.0, 0.02, 28 * 28, None),
    "face": (1, 2, 271.0, 0.02, None, None),
    "asr": (548, 2, 4594.0, 1.10, None, None),
    "pos": (28, 64, 38.0, 0.50, None, None),
    # CHK first issues a POS request for the same sentence (paper §3.2.3)
    "chk": (28, 64, 75.0, 0.50, None, "pos"),
    "ner": (28, 64, 43.0, 0.50, None, None),
}


@dataclass(frozen=True)
class AppModel:
    """Service-level model of one Tonic application."""

    app: str
    inputs_per_query: int   # DNN rows one query carries (Table 3 col 2)
    best_batch: int         # queries per batched request (Table 3 col 5)
    paper_input_kb: float   # Table 3 col 3 (for comparison in benches)
    prepost_ratio: float    # (pre+post)/DNN single-core CPU time
    raw_floats_per_input: int = None  # wire floats per input, if not the net shape
    chained_app: str = None           # app whose request a query also triggers

    # ------------------------------------------------------------ structure
    @property
    def net(self) -> Net:
        return _shape_net(self.app)

    def rows(self, batch_queries: int) -> int:
        """DNN input rows for a batch of queries."""
        return batch_queries * self.inputs_per_query

    @property
    def input_bytes_per_query(self) -> int:
        size = self.raw_floats_per_input or math.prod(self.net.input_shape)
        return self.inputs_per_query * size * FLOAT_BYTES

    @property
    def output_bytes_per_query(self) -> int:
        size = math.prod(self.net.output_shape)
        return self.inputs_per_query * size * FLOAT_BYTES

    @property
    def wire_bytes_per_query(self) -> int:
        return self.input_bytes_per_query + self.output_bytes_per_query

    @property
    def request_bytes_per_query(self) -> int:
        """Wire bytes including any chained request (CHK rides on POS)."""
        total = self.wire_bytes_per_query
        if self.chained_app:
            total += app_model(self.chained_app).wire_bytes_per_query
        return total

    # ------------------------------------------------------------ GPU model
    def gpu_profile(self, batch_queries: int, gpu: GpuSpec = PLATFORM.gpu) -> GpuForwardProfile:
        return _gpu_profile(self.app, batch_queries, gpu)

    def transfer_time(self, batch_queries: int, platform: PlatformSpec = PLATFORM) -> float:
        bytes_moved = batch_queries * self.wire_bytes_per_query
        return platform.pcie_latency_us * _US + bytes_moved / (platform.pcie_per_gpu_gbs * 1e9)

    def gpu_query_time(
        self,
        batch_queries: int = None,
        platform: PlatformSpec = PLATFORM,
        include_transfer: bool = True,
    ) -> float:
        """Service time of one batched request on one dedicated GPU."""
        batch_queries = batch_queries or self.best_batch
        time_s = self.gpu_profile(batch_queries, platform.gpu).time_s
        if include_transfer:
            time_s += self.transfer_time(batch_queries, platform)
        return time_s

    def gpu_qps(self, batch_queries: int = None, platform: PlatformSpec = PLATFORM,
                include_transfer: bool = True) -> float:
        """Queries per second of one GPU running back-to-back batches."""
        batch_queries = batch_queries or self.best_batch
        return batch_queries / self.gpu_query_time(batch_queries, platform, include_transfer)

    # ------------------------------------------------------------ CPU model
    def cpu_dnn_time(self, cpu: CpuCoreSpec = PLATFORM.cpu_core) -> float:
        """Single-core time for one query's DNN portion (batch of 1 query)."""
        return _cpu_dnn_time(self.app, self.inputs_per_query, cpu)

    def cpu_prepost_time(self, cpu: CpuCoreSpec = PLATFORM.cpu_core) -> float:
        """Modeled single-core pre+post-processing time for one query."""
        return self.prepost_ratio * self.cpu_dnn_time(cpu)

    def cpu_query_time(self, cpu: CpuCoreSpec = PLATFORM.cpu_core) -> float:
        return self.cpu_dnn_time(cpu) + self.cpu_prepost_time(cpu)

    def cpu_qps(self, cpu: CpuCoreSpec = PLATFORM.cpu_core) -> float:
        """End-to-end queries/second of one CPU core."""
        return 1.0 / self.cpu_query_time(cpu)

    def dnn_cycle_fraction(self) -> float:
        """Figure 4's modeled DNN share of single-core cycles."""
        return 1.0 / (1.0 + self.prepost_ratio)

    # ------------------------------------------------------------ headline
    def gpu_speedup(self, batch_queries: int = 1, platform: PlatformSpec = PLATFORM) -> float:
        """GPU vs one CPU core, DNN portion only (the paper's Figs 5/10)."""
        gpu_qps = self.gpu_qps(batch_queries, platform)
        cpu_qps = 1.0 / self.cpu_dnn_time(platform.cpu_core)
        return gpu_qps / cpu_qps


@lru_cache(maxsize=None)
def _shape_net(app: str) -> Net:
    return build_net(app, materialize=False)


@lru_cache(maxsize=None)
def _gpu_profile(app: str, batch_queries: int, gpu: GpuSpec) -> GpuForwardProfile:
    model = app_model(app)
    cost = analyze(_shape_net(app), batch=model.rows(batch_queries))
    return gpu_forward_time(cost, gpu)


@lru_cache(maxsize=None)
def _cpu_dnn_time(app: str, inputs_per_query: int, cpu: CpuCoreSpec) -> float:
    cost = analyze(_shape_net(app), batch=inputs_per_query)
    return cpu_forward_time(cost, cpu)


@lru_cache(maxsize=None)
def app_model(app: str) -> AppModel:
    """The :class:`AppModel` for a Tonic application key."""
    try:
        inputs, batch, kb, ratio, raw, chained = _APP_TABLE[app]
    except KeyError:
        raise ValueError(f"unknown application {app!r}; known: {sorted(_APP_TABLE)}") from None
    return AppModel(
        app=app,
        inputs_per_query=inputs,
        best_batch=batch,
        paper_input_kb=kb,
        prepost_ratio=ratio,
        raw_floats_per_input=raw,
        chained_app=chained,
    )


def all_app_models() -> Tuple[AppModel, ...]:
    """Models for all seven applications, in the paper's order."""
    return tuple(app_model(app) for app in APPLICATIONS)
