"""Lowering network layers to GPU kernel descriptors.

The cost model consumes the same per-layer GEMM shapes the numpy framework
executes (:func:`repro.nn.workspace.analyze`), turned into kernel launches
the way Caffe+cuBLAS/cuDNN of the paper's era launched them:

* inner products: one SGEMM
* convolutions: one im2col-GEMM per group
* locally-connected layers: one fused kernel whose blocks cover every
  output position's private small GEMM
* pooling / LRN / activations / softmax: one element-wise kernel
* dropout / flatten: free at inference (no kernel)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..nn.workspace import LayerCost, NetCost
from .device import GpuSpec

__all__ = ["Kernel", "lower", "tile_utilization", "occupancy"]

#: layer types that execute no kernel during inference
_FREE_TYPES = {"Dropout", "Flatten"}
#: layer types lowered to GEMM kernels
_GEMM_KINDS = {"gemm", "lc_gemm"}


@dataclass(frozen=True)
class Kernel:
    """One kind of kernel launch, possibly repeated ``launches`` times.

    ``flops``, ``param_bytes`` and ``activation_bytes`` are totals across
    all launches.
    """

    name: str
    kind: str                 # "gemm" | "lc_gemm" | "elementwise"
    flops: float
    param_bytes: float
    activation_bytes: float
    blocks: int               # thread blocks per launch
    tile_util: float          # useful fraction of each tile (1.0 elementwise)
    reduction: int = 0        # GEMM K dimension (0 for elementwise kernels)
    launches: int = 1

    def __post_init__(self):
        if self.launches < 1 or self.blocks < 1:
            raise ValueError(f"kernel {self.name!r}: bad launches/blocks")
        if not 0.0 < self.tile_util <= 1.0:
            raise ValueError(f"kernel {self.name!r}: tile_util {self.tile_util} out of range")


def tile_utilization(m: int, n: int, gpu: GpuSpec) -> float:
    """Fraction of a (tile_m x tile_n) tile grid doing useful math."""
    tm = math.ceil(m / gpu.tile_m) * gpu.tile_m
    tn = math.ceil(n / gpu.tile_n) * gpu.tile_n
    return (m / tm) * (n / tn)


def _tiles(m: int, n: int, gpu: GpuSpec) -> int:
    return math.ceil(m / gpu.tile_m) * math.ceil(n / gpu.tile_n)


def occupancy(kernel: Kernel, gpu: GpuSpec) -> float:
    """Achieved occupancy: active threads over the device's capacity."""
    threads = kernel.blocks * gpu.threads_per_block
    return min(gpu.occupancy_cap, threads / gpu.max_threads)


def _gemm_kernel(layer: LayerCost, gpu: GpuSpec) -> Kernel:
    shapes = layer.gemms
    m, n, k = shapes[0]
    if layer.type == "LocallyConnected":
        # one fused launch covering every position's private GEMM
        return Kernel(
            name=layer.name,
            kind="lc_gemm",
            flops=layer.flops,
            param_bytes=layer.param_bytes,
            activation_bytes=layer.activation_bytes,
            blocks=len(shapes) * _tiles(m, n, gpu),
            tile_util=tile_utilization(m, n, gpu),
            reduction=k,
            launches=1,
        )
    # convolution groups (or a single inner product): identical launches
    return Kernel(
        name=layer.name,
        kind="gemm",
        flops=layer.flops,
        param_bytes=layer.param_bytes,
        activation_bytes=layer.activation_bytes,
        blocks=_tiles(m, n, gpu),
        tile_util=tile_utilization(m, n, gpu),
        reduction=k,
        launches=len(shapes),
    )


def _elementwise_kernel(layer: LayerCost, gpu: GpuSpec) -> Kernel:
    elements = max(1, int(layer.activation_bytes // 8))  # in+out float32 pairs
    return Kernel(
        name=layer.name,
        kind="elementwise",
        flops=layer.flops,
        param_bytes=0.0,
        activation_bytes=layer.activation_bytes,
        blocks=max(1, math.ceil(elements / gpu.threads_per_block)),
        tile_util=1.0,
    )


def lower(cost: NetCost, gpu: GpuSpec) -> List[Kernel]:
    """Kernel launch list for one forward pass of ``cost.net_name``."""
    kernels: List[Kernel] = []
    for layer in cost.layers:
        if layer.type in _FREE_TYPES:
            continue
        if layer.is_gemm:
            kernels.append(_gemm_kernel(layer, gpu))
        else:
            kernels.append(_elementwise_kernel(layer, gpu))
    return kernels
