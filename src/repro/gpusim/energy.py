"""Per-query energy model (the paper's power measurements, §6.3, were fed
into TCO as watts; this module exposes the underlying per-query view).

Power draw is modeled as idle + (peak - idle) x active-fraction; a query's
energy is the integral over its service time.  The headline the paper's
TCO result rests on — a GPU does ~100x the work for ~18x the power —
becomes explicit as energy-per-query ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from .appmodel import AppModel
from .device import PLATFORM, PlatformSpec

__all__ = ["PowerDraw", "K40_POWER", "XEON_CORE_POWER", "QueryEnergy", "query_energy"]


@dataclass(frozen=True)
class PowerDraw:
    """Idle and peak power of one device."""

    name: str
    idle_w: float
    peak_w: float

    def watts(self, active_fraction: float) -> float:
        if not 0.0 <= active_fraction <= 1.0:
            raise ValueError(f"active_fraction must be in [0, 1], got {active_fraction}")
        return self.idle_w + (self.peak_w - self.idle_w) * active_fraction


#: NVIDIA K40: 235 W board TDP, ~25 W idle.
K40_POWER = PowerDraw("K40", idle_w=25.0, peak_w=235.0)
#: One Xeon E5-2620 v2 core's share of the 80 W socket, plus uncore share.
XEON_CORE_POWER = PowerDraw("Xeon core", idle_w=4.0, peak_w=17.0)


@dataclass(frozen=True)
class QueryEnergy:
    """Energy cost of one query on the two devices."""

    app: str
    gpu_j: float            # at the Table 3 batch, device fully loaded
    cpu_j: float            # one core, one query at a time
    gpu_qps: float
    cpu_qps: float

    @property
    def energy_ratio(self) -> float:
        """CPU joules per query over GPU joules per query."""
        return self.cpu_j / self.gpu_j

    @property
    def perf_per_watt_ratio(self) -> float:
        """GPU queries/joule over CPU queries/joule (same number)."""
        return self.energy_ratio


def query_energy(model: AppModel, platform: PlatformSpec = PLATFORM,
                 gpu_power: PowerDraw = K40_POWER,
                 cpu_power: PowerDraw = XEON_CORE_POWER) -> QueryEnergy:
    """Energy per query for a fully loaded GPU vs a fully loaded CPU core.

    The GPU runs back-to-back Table 3 batches; its active fraction is the
    kernel-busy share of the service time (transfers and gaps idle the
    compute complex).  The CPU core is fully active for the query's DNN
    time.
    """
    batch = model.best_batch
    profile = model.gpu_profile(batch, platform.gpu)
    service = model.gpu_query_time(batch, platform)
    active_fraction = min(1.0, profile.busy_s / service)
    gpu_qps = batch / service
    gpu_j = gpu_power.watts(active_fraction) / gpu_qps

    cpu_time = model.cpu_dnn_time(platform.cpu_core)
    cpu_j = cpu_power.watts(1.0) * cpu_time

    return QueryEnergy(
        app=model.app,
        gpu_j=gpu_j,
        cpu_j=cpu_j,
        gpu_qps=gpu_qps,
        cpu_qps=1.0 / cpu_time,
    )
