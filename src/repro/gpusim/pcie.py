"""Interconnect and network link models (paper §6.4, Table 6).

Ethernet links carry the paper's assumed 20% protocol overhead; PCIe/QPI
rates are the raw published figures the paper quotes (PCIe v3 x16 =
15.75 GB/s, PCIe v4 x16 = 31.75 GB/s, QPI = 25.6 GB/s per link).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Link",
    "PCIE_V3_X16",
    "PCIE_V4_X16",
    "QPI_LINK",
    "QPI_12_GPU_HOST",
    "ETH_10G",
    "ETH_40G",
    "ETH_400G",
    "ethernet_effective_gbs",
]

#: Assumed ethernet protocol overhead (paper Table 6 note).
ETHERNET_OVERHEAD = 0.20


@dataclass(frozen=True)
class Link:
    """A point-to-point interconnect with an effective data rate."""

    name: str
    raw_gbs: float
    protocol_overhead: float = 0.0
    latency_us: float = 10.0

    @property
    def effective_gbs(self) -> float:
        return self.raw_gbs * (1.0 - self.protocol_overhead)

    def transfer_s(self, payload_bytes: float) -> float:
        """Time to move a payload across the link."""
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        return self.latency_us * 1e-6 + payload_bytes / (self.effective_gbs * 1e9)


def ethernet_effective_gbs(raw_gbs: float) -> float:
    return raw_gbs * (1.0 - ETHERNET_OVERHEAD)


PCIE_V3_X16 = Link("PCIe v3 x16", 15.75, latency_us=10.0)
PCIE_V4_X16 = Link("PCIe v4 x16", 31.75, latency_us=10.0)
QPI_LINK = Link("QPI link", 25.6, latency_us=1.0)
#: 12 GPUs over 6 point-to-point QPI links per socket x 2 sockets (§6.4).
QPI_12_GPU_HOST = Link("QPI x12 host", 307.2, latency_us=1.0)

ETH_10G = Link("10GbE", 1.25, protocol_overhead=ETHERNET_OVERHEAD, latency_us=50.0)
ETH_40G = Link("40GbE", 5.0, protocol_overhead=ETHERNET_OVERHEAD, latency_us=30.0)
ETH_400G = Link("400GbE", 50.0, protocol_overhead=ETHERNET_OVERHEAD, latency_us=20.0)
