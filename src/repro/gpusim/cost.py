"""Roofline kernel timing for the modeled GPU and CPU core.

Every kernel's time is the maximum of three terms — compute at the
occupancy-scaled FLOP rate, memory traffic at the effective DRAM rate, and a
pipeline floor — plus the launch overhead.  This is deliberately first-order:
the paper's phenomena (Figures 5-13) are consequences of which term wins for
which network at which batch size, not of cycle-level detail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..nn.workspace import LayerCost, NetCost
from .device import CpuCoreSpec, GpuSpec
from .kernels import Kernel, lower, occupancy

__all__ = ["KernelTiming", "gpu_kernel_timing", "gpu_forward_time", "cpu_forward_time", "GpuForwardProfile"]

_US = 1e-6


@dataclass(frozen=True)
class KernelTiming:
    """One kernel's modeled execution on the GPU."""

    kernel: Kernel
    occupancy: float
    time_s: float            # total across launches, including launch overhead
    busy_s: float            # device-busy portion (excludes launch gaps)
    compute_bound: bool
    #: fraction of the device's limiting resource the kernel holds while
    #: running — compute lanes for GEMMs, DRAM bandwidth for streaming
    #: kernels.  Drives the MPS concurrency model.
    resource_demand: float
    achieved_gflops: float
    achieved_gbs: float


def _gemm_rate_gflops(kernel: Kernel, occ: float, gpu: GpuSpec) -> float:
    """Occupancy- and tile-scaled GEMM FLOP rate."""
    return gpu.peak_gflops * gpu.gemm_efficiency * kernel.tile_util * occ


def gpu_kernel_timing(kernel: Kernel, gpu: GpuSpec) -> KernelTiming:
    """Time one kernel (all its launches) on the GPU model."""
    occ = occupancy(kernel, gpu)
    flops_per_launch = kernel.flops / kernel.launches
    mem_bytes = kernel.param_bytes + kernel.activation_bytes
    if kernel.kind == "lc_gemm":
        mem_bytes = kernel.param_bytes * gpu.lc_mem_penalty + kernel.activation_bytes
    mem_per_launch = mem_bytes / kernel.launches

    if kernel.kind in ("gemm", "lc_gemm"):
        rate = _gemm_rate_gflops(kernel, occ, gpu)
        compute_s = flops_per_launch / (rate * 1e9)
    else:
        # elementwise kernels retire ~1 simple op/cycle/core at best
        compute_s = flops_per_launch / (gpu.peak_gflops * 0.5 * occ * 1e9)
    mem_s = mem_per_launch / (gpu.effective_mem_gbs * 1e9)
    busy_per_launch = max(compute_s, mem_s, gpu.min_kernel_us * _US)
    per_launch = busy_per_launch + gpu.kernel_launch_us * _US
    compute_bound = compute_s >= mem_s

    if kernel.kind in ("gemm", "lc_gemm"):
        # Short-K GEMMs stall their FLOP lanes waiting on operand streams;
        # those bubbles are exactly what MPS co-scheduling can fill.
        k_pipeline = kernel.reduction / (kernel.reduction + 64.0)
        compute_demand = occ * kernel.tile_util * k_pipeline
    else:
        compute_demand = 0.1 * occ
    bw_demand = (mem_per_launch / busy_per_launch) / (gpu.effective_mem_gbs * 1e9)
    demand = min(1.0, max(compute_demand, bw_demand))

    return KernelTiming(
        kernel=kernel,
        occupancy=occ,
        time_s=per_launch * kernel.launches,
        busy_s=busy_per_launch * kernel.launches,
        compute_bound=compute_bound,
        resource_demand=demand,
        achieved_gflops=kernel.flops / (per_launch * kernel.launches) / 1e9,
        achieved_gbs=mem_bytes / (per_launch * kernel.launches) / 1e9,
    )


@dataclass(frozen=True)
class GpuForwardProfile:
    """Modeled GPU execution of one forward pass."""

    net_name: str
    batch: int
    timings: tuple
    time_s: float

    @property
    def busy_s(self) -> float:
        return sum(t.busy_s for t in self.timings)

    @property
    def weighted_occupancy(self) -> float:
        """Time-weighted occupancy across GEMM kernels (paper Fig 6/7b)."""
        gemm = [t for t in self.timings if t.kernel.kind in ("gemm", "lc_gemm")]
        total = sum(t.time_s for t in gemm)
        if total == 0:
            return 0.0
        return sum(t.occupancy * t.time_s for t in gemm) / total


def gpu_forward_time(cost: NetCost, gpu: GpuSpec) -> GpuForwardProfile:
    """Model one forward pass of ``cost`` (device-resident inputs)."""
    timings = tuple(gpu_kernel_timing(k, gpu) for k in lower(cost, gpu))
    return GpuForwardProfile(
        net_name=cost.net_name,
        batch=cost.batch,
        timings=timings,
        time_s=sum(t.time_s for t in timings),
    )


def _cpu_gemm_efficiency(m: int, n: int, k: int, cpu: CpuCoreSpec) -> float:
    """ATLAS efficiency falls off for skinny matrices (blocking overheads).

    The shrink is floored at 0.3 of the large-GEMM efficiency: even GEMV-
    shaped calls stream weights at a substantial fraction of peak once the
    reduction dimension is long (the memory roofline in the caller catches
    truly bandwidth-bound cases).
    """
    shrink = (m / (m + 8.0)) * (n / (n + 8.0)) * (k / (k + 32.0))
    return cpu.gemm_efficiency * max(0.3, shrink)


def _cpu_layer_time(layer: LayerCost, cpu: CpuCoreSpec) -> float:
    if layer.type in ("Dropout", "Flatten"):
        return 0.0
    mem_bytes = layer.param_bytes + layer.activation_bytes
    mem_s = mem_bytes / (cpu.mem_bandwidth_gbs * 1e9)
    if layer.is_gemm:
        m, n, k = layer.gemms[0]
        eff = _cpu_gemm_efficiency(m, n, k, cpu)
        compute_s = layer.flops / (cpu.peak_gflops * eff * 1e9)
        overhead = len(layer.gemms) * cpu.layer_overhead_us * _US
    else:
        compute_s = layer.flops / (cpu.peak_gflops * 0.25 * 1e9)
        overhead = cpu.layer_overhead_us * _US
    return max(compute_s, mem_s) + overhead


def cpu_forward_time(cost: NetCost, cpu: CpuCoreSpec) -> float:
    """Model one forward pass on a single CPU core (seconds)."""
    return sum(_cpu_layer_time(layer, cpu) for layer in cost.layers)
