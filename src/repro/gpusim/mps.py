"""Concurrent DNN services on one GPU: MPS vs. time-sharing (paper §5.2).

Without MPS, CUDA processes time-share the GPU: one process's kernel runs at
a time and switching owners costs a context switch.  With MPS, kernels from
different processes execute concurrently out of a shared resource pool.

This module simulates ``k`` identical service instances in closed loop with
a fluid model: each query is a fixed sequence of segments — host-side *idle*
time (PCIe transfers, kernel-launch gaps) and *GPU* work.  Under MPS,
concurrently active GPU segments progress at full speed while the sum of
their resource demands fits on the device, and are proportionally slowed
beyond that; under time-sharing, GPU segments serialize FIFO with a context
switch whenever ownership changes.

The emergent behaviour matches the paper's Figures 8 and 9: throughput
climbs with concurrency until the GPU's limiting resource saturates (up to
~6x for low-demand services), and MPS holds query latency well below the
time-shared configuration (up to ~3x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .appmodel import AppModel
from .cost import gpu_kernel_timing
from .device import PLATFORM, PlatformSpec

__all__ = ["Segment", "ConcurrencyResult", "service_segments", "simulate_concurrent", "mps_sweep"]

_US = 1e-6
#: GPU context-switch cost between processes without MPS (time-slicing).
CTX_SWITCH_US = 25.0


@dataclass(frozen=True)
class Segment:
    """One phase of a query: host-side idle time or GPU work."""

    kind: str        # "idle" | "gpu"
    duration_s: float
    demand: float = 0.0  # fraction of the GPU's limiting resource (gpu kind)

    def __post_init__(self):
        if self.kind not in ("idle", "gpu"):
            raise ValueError(f"bad segment kind {self.kind!r}")
        if self.duration_s < 0:
            raise ValueError("segment duration must be non-negative")


@dataclass(frozen=True)
class ConcurrencyResult:
    """Steady-state behaviour of k concurrent service instances."""

    instances: int
    mode: str              # "mps" | "exclusive"
    qps: float             # total batched-request completions per second
    mean_latency_s: float


def service_segments(model: AppModel, platform: PlatformSpec = PLATFORM,
                     batch_queries: int = None) -> List[Segment]:
    """The per-request segment timeline for one service instance."""
    batch_queries = batch_queries or model.best_batch
    profile = model.gpu_profile(batch_queries, platform.gpu)
    wire = batch_queries * model.wire_bytes_per_query
    in_frac = model.input_bytes_per_query / model.wire_bytes_per_query
    transfer = platform.pcie_latency_us * _US + wire / (platform.pcie_per_gpu_gbs * 1e9)
    segments = [Segment("idle", platform.service_overhead_us * _US + transfer * in_frac)]
    for timing in profile.timings:
        gap = timing.kernel.launches * platform.gpu.kernel_launch_us * _US
        segments.append(Segment("idle", gap))
        segments.append(Segment("gpu", timing.busy_s, timing.resource_demand))
    segments.append(Segment("idle", transfer * (1.0 - in_frac)))
    return segments


def simulate_concurrent(
    segments: Sequence[Segment],
    instances: int,
    mode: str = "mps",
    queries_per_instance: int = 40,
    warmup: int = 8,
) -> ConcurrencyResult:
    """Closed-loop simulation of ``instances`` identical services."""
    if mode not in ("mps", "exclusive"):
        raise ValueError(f"mode must be 'mps' or 'exclusive', got {mode!r}")
    if instances < 1:
        raise ValueError("need at least one instance")
    segments = list(segments)
    total_queries = queries_per_instance + warmup
    cycle = sum(s.duration_s for s in segments)

    # Per-process state
    seg_idx = [0] * instances
    remaining = [segments[0].duration_s] * instances
    # stagger starts so processes do not run in lockstep
    for i in range(instances):
        remaining[i] += (i / instances) * cycle * 0.25
    completed = [0] * instances
    query_start = [0.0] * instances
    warm_time = [0.0] * instances   # when each process finished its warmup
    finish_time = [0.0] * instances
    latencies: List[float] = []
    done = [False] * instances
    # exclusive-mode device state: FIFO of processes waiting at GPU segments
    wait_queue: List[int] = [i for i in range(instances) if segments[0].kind == "gpu"]
    gpu_owner = -1
    last_owner = -1
    switch_left = 0.0
    now = 0.0

    def seg(i: int) -> Segment:
        return segments[seg_idx[i]]

    def advance_segment(i: int) -> None:
        """Move process i to its next segment, recording query completions."""
        nonlocal gpu_owner
        if mode == "exclusive" and gpu_owner == i:
            gpu_owner = -1
        seg_idx[i] += 1
        if seg_idx[i] == len(segments):
            completed[i] += 1
            if completed[i] == warmup:
                warm_time[i] = now
            if completed[i] > warmup:
                latencies.append(now - query_start[i])
            if completed[i] >= total_queries:
                done[i] = True
                finish_time[i] = now
                return
            seg_idx[i] = 0
            query_start[i] = now
        remaining[i] = segments[seg_idx[i]].duration_s
        if mode == "exclusive" and seg(i).kind == "gpu":
            wait_queue.append(i)

    while not all(done):
        # determine per-process progress rates
        rates = [0.0] * instances
        if mode == "mps":
            active = [i for i in range(instances)
                      if not done[i] and seg(i).kind == "gpu"]
            total_demand = sum(seg(i).demand for i in active)
            share = 1.0 if total_demand <= 1.0 else 1.0 / total_demand
            for i in range(instances):
                if done[i]:
                    continue
                rates[i] = share if seg(i).kind == "gpu" else 1.0
        else:
            if gpu_owner == -1 and switch_left <= 0.0 and wait_queue:
                gpu_owner = wait_queue.pop(0)  # FIFO hand-off
                if last_owner != -1 and gpu_owner != last_owner:
                    switch_left = CTX_SWITCH_US * _US
                last_owner = gpu_owner
            for i in range(instances):
                if done[i]:
                    continue
                if seg(i).kind == "idle":
                    rates[i] = 1.0
                elif i == gpu_owner and switch_left <= 0.0:
                    rates[i] = 1.0

        # time to next completion (or end of context switch)
        dt = float("inf")
        if mode == "exclusive" and switch_left > 0.0:
            dt = switch_left
        for i in range(instances):
            if done[i] or rates[i] <= 0.0:
                continue
            dt = min(dt, remaining[i] / rates[i])
        if dt == float("inf"):  # pragma: no cover - defensive against stalls
            raise RuntimeError("simulation stalled: no process can progress")

        now += dt
        if mode == "exclusive" and switch_left > 0.0:
            switch_left = max(0.0, switch_left - dt)
        for i in range(instances):
            if done[i]:
                continue
            remaining[i] -= rates[i] * dt
            if remaining[i] <= 1e-15 and rates[i] > 0.0:
                advance_segment(i)

    # per-process steady-state rate over its post-warmup window
    qps = 0.0
    for i in range(instances):
        window = finish_time[i] - warm_time[i]
        if window > 0:
            qps += queries_per_instance / window
    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
    return ConcurrencyResult(instances=instances, mode=mode, qps=qps,
                             mean_latency_s=mean_latency)


def mps_sweep(
    model: AppModel,
    instance_counts: Sequence[int] = (1, 2, 4, 8, 16),
    platform: PlatformSpec = PLATFORM,
) -> Tuple[List[ConcurrencyResult], List[ConcurrencyResult]]:
    """(MPS results, time-shared results) across instance counts (Figs 8/9)."""
    segments = service_segments(model, platform)
    mps = [simulate_concurrent(segments, k, "mps") for k in instance_counts]
    exclusive = [simulate_concurrent(segments, k, "exclusive") for k in instance_counts]
    return mps, exclusive
