"""Modeled hardware-counter profile (paper Figure 6).

The paper profiles each service's kernels with nvprof and reports, weighted
by kernel execution time: IPC relative to peak IPC, occupancy, and L1/
shared-memory and L2 bandwidth utilization.  This module produces the same
four metrics from the kernel cost model:

* *occupancy* — the occupancy calculator's value per kernel;
* *IPC / peak IPC* — issue-slot utilization, proxied by
  ``occupancy x tile utilization`` for GEMMs (low-occupancy kernels cannot
  hide latency, idle tiles issue no math);
* *L1 & shared / L2 utilization* — each kernel's achieved DRAM-side byte
  rate against the cache levels' peak rates (Kepler's L2 sustains roughly
  2.5x DRAM bandwidth; L1/shared roughly 5x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .appmodel import AppModel
from .cost import KernelTiming
from .device import PLATFORM, GpuSpec

__all__ = ["CounterProfile", "profile_app"]

#: Peak cache bandwidths relative to DRAM (Kepler ballpark, documented proxy).
L2_PEAK_FACTOR = 2.5
L1_PEAK_FACTOR = 5.0


@dataclass(frozen=True)
class CounterProfile:
    """Time-weighted counter averages for one application (one Fig 6 group)."""

    app: str
    ipc_ratio: float
    occupancy: float
    l1_shared_utilization: float
    l2_utilization: float


def _kernel_ipc_ratio(timing: KernelTiming) -> float:
    if timing.kernel.kind in ("gemm", "lc_gemm"):
        return timing.occupancy * timing.kernel.tile_util
    return 0.08 * timing.occupancy  # elementwise kernels barely issue math


def profile_app(model: AppModel, batch_queries: int = 1, gpu: GpuSpec = PLATFORM.gpu) -> CounterProfile:
    """Weighted counters for one app at ``batch_queries`` (Fig 6 uses 1)."""
    profile = model.gpu_profile(batch_queries, gpu)
    total = sum(t.time_s for t in profile.timings)
    if total <= 0:
        raise ValueError(f"{model.app}: empty kernel profile")

    def weighted(values: Tuple[float, ...]) -> float:
        return sum(v * t.time_s for v, t in zip(values, profile.timings)) / total

    ipc = weighted(tuple(_kernel_ipc_ratio(t) for t in profile.timings))
    occ = weighted(tuple(t.occupancy for t in profile.timings))
    dram_gbs = tuple(t.achieved_gbs for t in profile.timings)
    l2 = weighted(tuple(g / (gpu.mem_bandwidth_gbs * L2_PEAK_FACTOR) for g in dram_gbs))
    l1 = weighted(tuple(g * 2.0 / (gpu.mem_bandwidth_gbs * L1_PEAK_FACTOR) for g in dram_gbs))
    return CounterProfile(
        app=model.app,
        ipc_ratio=ipc,
        occupancy=occ,
        l1_shared_utilization=l1,
        l2_utilization=l2,
    )
