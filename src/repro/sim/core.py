"""A small discrete-event simulation kernel.

Generator-based processes over an event heap, in the style of SimPy but a
few hundred lines and dependency-free.  Processes are Python generators that
yield commands:

* ``Timeout(delay)``    — sleep for ``delay`` simulated seconds
* ``Acquire(resource)`` — wait for one unit of a resource (FIFO)
* ``Release(resource)`` — return a unit
* another process       — wait for that process to finish

The queueing layer (:mod:`repro.sim.queueing`) and the service-cluster load
generator (:mod:`repro.sim.loadgen`) build on this to measure the latency
behaviour the paper's Figures 7c and 9 report.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, List, Optional

__all__ = ["Environment", "Process", "Resource", "Timeout", "Acquire", "Release", "SimError"]


class SimError(RuntimeError):
    """Misuse of the simulation kernel (e.g. releasing an idle resource)."""


class Timeout:
    """Yield to sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.delay = delay


class Resource:
    """A counted FIFO resource (``capacity`` concurrent holders)."""

    def __init__(self, env: "Environment", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name or f"resource@{id(self):x}"
        self.in_use = 0
        self.queue: deque = deque()
        #: total simulated time integral of in_use (for utilization reports)
        self._busy_integral = 0.0
        self._last_change = 0.0

    def _account(self) -> None:
        now = self.env.now
        self._busy_integral += self.in_use * (now - self._last_change)
        self._last_change = now

    def utilization(self) -> float:
        """Average fraction of capacity held since t=0."""
        self._account()
        if self.env.now <= 0:
            return 0.0
        return self._busy_integral / (self.env.now * self.capacity)


class Acquire:
    __slots__ = ("resource",)

    def __init__(self, resource: Resource):
        self.resource = resource


class Release:
    __slots__ = ("resource",)

    def __init__(self, resource: Resource):
        self.resource = resource


class Process:
    """A running generator; yielding on it waits for completion."""

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        self.env = env
        self.generator = generator
        self.name = name
        self.finished = False
        self.value: Any = None
        self._waiters: List["Process"] = []


class Environment:
    """The event loop: schedules processes on a time-ordered heap."""

    def __init__(self):
        self.now = 0.0
        self._heap: List = []
        self._counter = itertools.count()
        self._active = 0

    # ------------------------------------------------------------ scheduling
    def schedule(self, process: Process, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._counter), process))

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register and start a new process."""
        proc = Process(self, generator, name)
        self._active += 1
        self.schedule(proc)
        return proc

    def timeout(self, delay: float) -> Timeout:
        return Timeout(delay)

    # -------------------------------------------------------------- running
    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or simulated time reaches ``until``."""
        while self._heap:
            at, _seq, proc = self._heap[0]
            if until is not None and at > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = at
            self._step(proc)
        return self.now

    def _step(self, proc: Process) -> None:
        try:
            command = next(proc.generator)
        except StopIteration as stop:
            self._finish(proc, getattr(stop, "value", None))
            return
        if isinstance(command, Timeout):
            self.schedule(proc, command.delay)
        elif isinstance(command, Acquire):
            self._acquire(proc, command.resource)
        elif isinstance(command, Release):
            self._release(command.resource)
            self.schedule(proc)
        elif isinstance(command, Process):
            if command.finished:
                self.schedule(proc)
            else:
                command._waiters.append(proc)
        else:
            raise SimError(f"process {proc.name!r} yielded unknown command {command!r}")

    def _finish(self, proc: Process, value: Any) -> None:
        proc.finished = True
        proc.value = value
        self._active -= 1
        for waiter in proc._waiters:
            self.schedule(waiter)
        proc._waiters.clear()

    # ------------------------------------------------------------ resources
    def _acquire(self, proc: Process, resource: Resource) -> None:
        resource._account()
        if resource.in_use < resource.capacity:
            resource.in_use += 1
            self.schedule(proc)
        else:
            resource.queue.append(proc)

    def _release(self, resource: Resource) -> None:
        resource._account()
        if resource.in_use <= 0:
            raise SimError(f"release of idle resource {resource.name!r}")
        if resource.queue:
            nxt = resource.queue.popleft()
            self.schedule(nxt)  # hand the unit straight to the next waiter
        else:
            resource.in_use -= 1
