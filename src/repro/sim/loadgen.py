"""Load generators: open-loop Poisson arrivals and closed-loop clients.

The paper's throughput experiments drive DjiNN closed-loop (clients issue
the next query as soon as the previous returns); its latency-vs-load
behaviour is the open-loop view.  Both are provided.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .core import Environment, Timeout
from .queueing import Station

__all__ = ["poisson_arrivals", "closed_loop_clients", "run_open_loop", "run_closed_loop"]


def poisson_arrivals(
    env: Environment,
    station: Station,
    rate_qps: float,
    count: int,
    seed: int = 0,
    payload: Callable[[int], object] = lambda i: i,
):
    """Submit ``count`` requests with exponential inter-arrival times."""
    if rate_qps <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate_qps}")
    rng = np.random.default_rng(seed)

    def generator():
        for i in range(count):
            yield Timeout(float(rng.exponential(1.0 / rate_qps)))
            station.submit(payload(i))

    return env.process(generator(), name="poisson-arrivals")


def closed_loop_clients(
    env: Environment,
    station: Station,
    clients: int,
    queries_per_client: int,
    think_time_s: float = 0.0,
    payload: Callable[[int], object] = lambda i: i,
):
    """``clients`` independent clients, each issuing queries back-to-back."""
    if clients < 1:
        raise ValueError("need at least one client")

    def client(cid: int):
        for i in range(queries_per_client):
            request = station.submit(payload(cid * queries_per_client + i))
            yield request
            if think_time_s:
                yield Timeout(think_time_s)

    return [env.process(client(c), name=f"client-{c}") for c in range(clients)]


def run_open_loop(station: Station, rate_qps: float, count: int = 2000, seed: int = 0):
    """Drive a station open-loop; returns (achieved_qps, stats)."""
    env = station.env
    poisson_arrivals(env, station, rate_qps, count, seed=seed)
    env.run()
    qps = station.stats.count / env.now if env.now > 0 else 0.0
    return qps, station.stats


def run_closed_loop(station: Station, clients: int, queries_per_client: int = 100,
                    think_time_s: float = 0.0):
    """Drive a station closed-loop; returns (achieved_qps, stats)."""
    env = station.env
    closed_loop_clients(env, station, clients, queries_per_client, think_time_s)
    env.run()
    qps = station.stats.count / env.now if env.now > 0 else 0.0
    return qps, station.stats
