"""``repro.sim`` — a dependency-free discrete-event simulation substrate.

Generator-based processes, FIFO resources, queueing stations with latency
statistics, and open/closed-loop load generators.  Used to study the
service's queueing behaviour (latency under load, saturation knees) on top
of the GPU model's service times.
"""

from .cluster import DjinnEndpointSim, LoadPoint
from .wscflow import DesignLatency, compare_designs, simulate_design_flow
from .core import Acquire, Environment, Process, Release, Resource, SimError, Timeout
from .loadgen import closed_loop_clients, poisson_arrivals, run_closed_loop, run_open_loop
from .queueing import LatencyStats, Station

__all__ = [
    "DjinnEndpointSim",
    "LoadPoint",
    "DesignLatency",
    "compare_designs",
    "simulate_design_flow",
    "Acquire",
    "Environment",
    "Process",
    "Release",
    "Resource",
    "SimError",
    "Timeout",
    "LatencyStats",
    "Station",
    "closed_loop_clients",
    "poisson_arrivals",
    "run_closed_loop",
    "run_open_loop",
]
