"""Queueing building blocks on the DES kernel: latency accounting and a
single-queue multi-server station (the shape of a DjiNN GPU endpoint).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

from .core import Acquire, Environment, Release, Resource, Timeout

__all__ = ["LatencyStats", "Station"]


@dataclass
class LatencyStats:
    """Collected per-request latencies with summary accessors."""

    samples: List[float] = field(default_factory=list)

    def record(self, latency_s: float) -> None:
        self.samples.append(latency_s)

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        return float(np.mean(self.samples)) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.samples, q)) if self.samples else 0.0


class Station:
    """A FIFO service station with ``servers`` parallel units.

    ``service_time`` maps a request payload to its service duration — for a
    DjiNN GPU endpoint that's the batched forward-pass time from the GPU
    model.
    """

    def __init__(
        self,
        env: Environment,
        servers: int,
        service_time: Callable[[object], float],
        name: str = "station",
    ):
        self.env = env
        self.resource = Resource(env, capacity=servers, name=name)
        self.service_time = service_time
        self.stats = LatencyStats()
        self.name = name

    def submit(self, payload: object):
        """A generator process serving one request; yield it to wait."""

        def request():
            arrived = self.env.now
            yield Acquire(self.resource)
            yield Timeout(self.service_time(payload))
            yield Release(self.resource)
            self.stats.record(self.env.now - arrived)

        return self.env.process(request(), name=f"{self.name}-req")

    def utilization(self) -> float:
        return self.resource.utilization()
