"""Service-level queueing simulation of a DjiNN deployment.

Connects the GPU performance model to the DES substrate: an endpoint of
``gpus`` devices serves one application at a fixed batch size; queries
arrive open-loop (Poisson) and are coalesced into batches.  This is the
queueing story behind the paper's latency figures — "as the throughput
plateaus ... the queuing delay starts to dominate the latency" (§5.1) —
made quantitative: latency-vs-load curves with tail percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..gpusim.appmodel import AppModel
from ..gpusim.device import PLATFORM, PlatformSpec
from .core import Environment, Timeout
from .queueing import Station

__all__ = ["LoadPoint", "DjinnEndpointSim"]


@dataclass(frozen=True)
class LoadPoint:
    """Latency behaviour of the endpoint at one offered load."""

    offered_qps: float
    achieved_qps: float
    mean_latency_s: float
    p99_latency_s: float
    utilization: float


class DjinnEndpointSim:
    """An N-GPU DjiNN endpoint for one application.

    Queries arrive Poisson at ``offered_qps`` and are coalesced into
    batches of the application's batch size (a batch departs when full —
    the paper's saturated-load regime); each batch occupies one GPU for
    the modeled batched forward-pass time.
    """

    def __init__(
        self,
        model: AppModel,
        gpus: int = 1,
        batch: Optional[int] = None,
        platform: PlatformSpec = PLATFORM,
    ):
        if gpus < 1:
            raise ValueError("need at least one GPU")
        self.model = model
        self.gpus = gpus
        self.batch = batch or model.best_batch
        self.platform = platform
        self.batch_service_s = model.gpu_query_time(self.batch, platform)

    @property
    def capacity_qps(self) -> float:
        """Saturation throughput of the endpoint (queries/second)."""
        return self.gpus * self.batch / self.batch_service_s

    def run(self, offered_qps: float, queries: int = 5000, seed: int = 0) -> LoadPoint:
        """Simulate ``queries`` arrivals at ``offered_qps``."""
        if offered_qps <= 0:
            raise ValueError("offered_qps must be positive")
        env = Environment()
        station = Station(env, servers=self.gpus,
                          service_time=lambda n: self.batch_service_s,
                          name=f"{self.model.app}-endpoint")
        rng = np.random.default_rng(seed)
        #: per-query arrival times, for end-to-end (arrival -> batch done) latency
        waiting: List[float] = []
        query_latency: List[float] = []

        def arrivals():
            for _ in range(queries):
                yield Timeout(float(rng.exponential(1.0 / offered_qps)))
                waiting.append(env.now)
                if len(waiting) >= self.batch:
                    batch_arrivals = waiting[:]
                    waiting.clear()
                    proc = station.submit(len(batch_arrivals))

                    def record(p=proc, arrived=batch_arrivals):
                        yield p
                        for t in arrived:
                            query_latency.append(env.now - t)

                    env.process(record())

        env.process(arrivals())
        env.run()
        lat = np.asarray(query_latency) if query_latency else np.zeros(1)
        return LoadPoint(
            offered_qps=offered_qps,
            achieved_qps=len(query_latency) / env.now if env.now > 0 else 0.0,
            mean_latency_s=float(lat.mean()),
            p99_latency_s=float(np.percentile(lat, 99)),
            utilization=station.utilization(),
        )

    def load_sweep(self, fractions=(0.2, 0.4, 0.6, 0.8, 0.9, 0.95),
                   queries: int = 5000, seed: int = 0) -> List[LoadPoint]:
        """Latency across offered loads, as fractions of capacity."""
        return [self.run(f * self.capacity_qps, queries, seed) for f in fractions]
