"""Query-flow latency through the three WSC designs (Figure 14, simulated).

The paper compares the CPU-only, integrated-GPU and disaggregated-GPU
designs on *cost* at matched throughput; this simulation asks the adjacent
question its Figure 14 arrows raise: what does each design do to a query's
*latency*?  Each design is a pipeline of DES stations:

* CPU-only        — one pool of cores runs the whole query.
* Integrated GPU  — pre/post on the host's cores, a PCIe hop, a GPU pool.
* Disaggregated   — pre/post on a beefy server, a *network* hop (teamed
                    10GbE: lower bandwidth, higher latency than PCIe), then
                    the remote GPU pool.

GPU service uses the Table 3 batch's amortized per-query time; queries
arrive open-loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..gpusim.appmodel import AppModel
from ..gpusim.device import PLATFORM, PlatformSpec
from ..gpusim.pcie import Link, PCIE_V3_X16
from .core import Acquire, Environment, Release, Resource, Timeout
from .queueing import LatencyStats

__all__ = ["DesignLatency", "NETWORK_HOP", "simulate_design_flow", "compare_designs"]

#: The disaggregated design's CPU->GPU-host hop: 16 teamed 10GbE (16 GB/s
#: effective) with switch-traversal latency.
NETWORK_HOP = Link("16x10GbE fabric", 20.0, protocol_overhead=0.2, latency_us=150.0)

DESIGNS = ("cpu_only", "integrated", "disaggregated")


@dataclass(frozen=True)
class DesignLatency:
    """One design's simulated latency behaviour for one application."""

    design: str
    mean_latency_s: float
    p99_latency_s: float
    achieved_qps: float


def simulate_design_flow(
    model: AppModel,
    design: str,
    offered_qps: float,
    gpus: int = 2,
    cpu_cores: int = 12,
    queries: int = 2000,
    platform: PlatformSpec = PLATFORM,
    seed: int = 0,
) -> DesignLatency:
    """Open-loop simulation of one application through one design."""
    if design not in DESIGNS:
        raise ValueError(f"unknown design {design!r}; choose from {DESIGNS}")
    if offered_qps <= 0:
        raise ValueError("offered_qps must be positive")

    prepost_s = model.cpu_prepost_time(platform.cpu_core)
    cpu_full_s = model.cpu_query_time(platform.cpu_core)
    # amortized per-query GPU time at the Table 3 batch (transfers excluded:
    # the hop is modeled explicitly per design)
    batch = model.best_batch
    gpu_s = model.gpu_profile(batch, platform.gpu).time_s / batch
    bytes_per_query = model.wire_bytes_per_query
    hop = PCIE_V3_X16 if design == "integrated" else NETWORK_HOP

    env = Environment()
    cores = Resource(env, capacity=cpu_cores, name="cpu-cores")
    gpu_pool = Resource(env, capacity=gpus, name="gpus")
    link = Resource(env, capacity=1, name="hop")
    stats = LatencyStats()
    rng = np.random.default_rng(seed)

    def query():
        arrived = env.now
        if design == "cpu_only":
            yield Acquire(cores)
            yield Timeout(cpu_full_s)
            yield Release(cores)
        else:
            if prepost_s > 0:
                yield Acquire(cores)
                yield Timeout(prepost_s)
                yield Release(cores)
            yield Acquire(link)
            yield Timeout(hop.transfer_s(bytes_per_query))
            yield Release(link)
            yield Acquire(gpu_pool)
            yield Timeout(gpu_s)
            yield Release(gpu_pool)
        stats.record(env.now - arrived)

    def arrivals():
        for _ in range(queries):
            yield Timeout(float(rng.exponential(1.0 / offered_qps)))
            env.process(query())

    env.process(arrivals())
    env.run()
    return DesignLatency(
        design=design,
        mean_latency_s=stats.mean(),
        p99_latency_s=stats.percentile(99),
        achieved_qps=stats.count / env.now if env.now > 0 else 0.0,
    )


def compare_designs(
    model: AppModel,
    offered_qps: float,
    gpus: int = 2,
    cpu_cores: int = 12,
    queries: int = 2000,
) -> Dict[str, DesignLatency]:
    """All three designs at the same offered load."""
    return {
        design: simulate_design_flow(model, design, offered_qps, gpus, cpu_cores, queries)
        for design in DESIGNS
    }
