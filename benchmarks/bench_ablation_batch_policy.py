"""Ablation: server-side dynamic-batching policy (max batch x timeout).

The paper picks per-application batch sizes offline (Table 3); the DjiNN
server here also supports *dynamic* batching, whose policy trades latency
for coalescing.  This ablation sweeps the policy against the GPU model's
service times using the DES queueing substrate: requests arrive Poisson,
are coalesced up to ``max_batch`` within ``timeout``, and are served at the
modeled batched-GPU rate.
"""

import numpy as np

from repro.gpusim import app_model
from repro.sim import Environment, Station, poisson_arrivals

from _common import report, series_row

POLICIES = (1, 4, 16, 64)
APP = "pos"


def simulate_policy(max_batch: int, offered_qps: float, count: int = 3000):
    """Open-loop arrivals coalesced into fixed-size batches (upper-bound
    model of the timeout policy: a batch departs when full)."""
    model = app_model(APP)
    env = Environment()
    station = Station(
        env, servers=1,
        service_time=lambda batch: model.gpu_query_time(batch),
        name=f"gpu-batch{max_batch}",
    )
    rng = np.random.default_rng(7)
    pending = []

    def arrivals():
        from repro.sim import Timeout
        for _ in range(count):
            yield Timeout(float(rng.exponential(1.0 / offered_qps)))
            pending.append(env.now)
            if len(pending) >= max_batch:
                station.submit(len(pending))
                pending.clear()

    env.process(arrivals())
    env.run()
    qps = station.stats.count * max_batch / env.now if env.now else 0.0
    return qps, station.stats.mean() * 1e3, station.utilization()


def sweep():
    model = app_model(APP)
    offered = 0.5 * model.gpu_qps(64)  # half the best-batch capacity
    return {b: simulate_policy(b, offered) for b in POLICIES}


def test_ablation_batch_policy(benchmark):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"offered load: half of {APP}'s batch-64 capacity",
             f"{'max_batch':>9s} {'batch svc lat (ms)':>18s} {'gpu utilization':>16s}"]
    for batch, (qps, lat, util) in data.items():
        lines.append(f"{batch:>9d} {lat:>18.3f} {util:>16.2f}")
    lines.append("(bigger batches slash GPU utilization per query at a small")
    lines.append(" latency cost — the Figure 7 trade-off, served dynamically)")
    report("ablation_batch_policy", "Ablation: dynamic batching policy", lines)

    utils = [data[b][2] for b in POLICIES]
    assert utils[0] > 0.9          # batch-1 service saturates the GPU
    assert utils[-1] < utils[0]    # coalescing frees capacity
