"""Ablation: energy per query, GPU vs CPU core (the perf/W arithmetic
underneath the paper's 4-20x TCO result).
"""

from repro.gpusim import all_app_models
from repro.gpusim.energy import K40_POWER, XEON_CORE_POWER, query_energy

from _common import report


def compute():
    return {m.app: query_energy(m) for m in all_app_models()}


def test_ablation_energy_per_query(benchmark):
    energies = benchmark(compute)
    lines = [
        f"power model: GPU {K40_POWER.idle_w:.0f}-{K40_POWER.peak_w:.0f} W, "
        f"CPU core {XEON_CORE_POWER.idle_w:.0f}-{XEON_CORE_POWER.peak_w:.0f} W",
        f"{'app':5s} {'GPU mJ/query':>12s} {'CPU mJ/query':>12s} {'energy win':>10s} {'speedup':>8s}",
    ]
    for app, e in energies.items():
        lines.append(
            f"{app:5s} {e.gpu_j * 1e3:>12.2f} {e.cpu_j * 1e3:>12.2f} "
            f"{e.energy_ratio:>9.1f}x {e.gpu_qps / e.cpu_qps:>7.0f}x"
        )
    lines.append("(the GPU's energy win is the speedup divided by its ~14x power")
    lines.append(" draw — still multiples everywhere, which is why the GPU designs")
    lines.append(" win TCO even with electricity and facility watts priced in)")
    report("ablation_energy", "Ablation: energy per query, GPU vs CPU", lines)

    assert all(e.energy_ratio > 1.0 for e in energies.values())
