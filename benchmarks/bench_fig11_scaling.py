"""Figure 11: system throughput as GPUs are added to the server (PCIe
transfers included), per application.
"""

from repro.gpusim import GpuServerModel, app_model
from repro.models import APPLICATIONS

from _common import report, series_row

GPU_COUNTS = (1, 2, 4, 8)


def sweep():
    out = {}
    for app in APPLICATIONS:
        srv = GpuServerModel(app_model(app))
        pts = srv.sweep(GPU_COUNTS)
        out[app] = (pts, srv.speedup_vs_cpu_core(8))
    return out


def test_fig11_gpu_scaling(benchmark):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = "gpus     " + " ".join(f"{g:>10d}" for g in GPU_COUNTS)
    lines = ["relative throughput (vs 1 GPU)", header]
    for app in APPLICATIONS:
        pts, _ = data[app]
        lines.append(series_row(app, [p.qps / pts[0].qps for p in pts]))
    lines.append("")
    lines.append(f"{'app':5s} {'speedup@8GPUs vs 1 CPU core':>28s}  link-limited@8?")
    for app in APPLICATIONS:
        pts, total = data[app]
        lines.append(f"{app:5s} {total:>27,.0f}x  {pts[-1].link_limited}")
    lines.append("(paper: image+ASR near-linear; NLP plateaus at ~4 GPUs;")
    lines.append(" ~1000x total for 3 of 7 applications)")
    report("fig11", "Figure 11: throughput vs number of GPUs (with PCIe)", lines)

    for app in ("pos", "chk", "ner"):
        pts, _ = data[app]
        assert pts[-1].qps / pts[0].qps < 7.0
        assert pts[-1].link_limited
    for app in ("imc", "face", "asr"):
        pts, _ = data[app]
        assert pts[-1].qps / pts[0].qps > 7.5
