"""Figure 13: interconnect bandwidth each application needs to sustain its
unconstrained (pinned-input) scaling, against PCIe v3 and 10GbE reference
lines.
"""

from repro.gpusim import GpuServerModel, app_model
from repro.gpusim.device import PLATFORM
from repro.gpusim.pcie import ETH_10G, PCIE_V3_X16
from repro.models import APPLICATIONS

from _common import report, series_row

GPU_COUNTS = (1, 2, 4, 8)


def sweep():
    return {
        app: [GpuServerModel(app_model(app)).bandwidth_required_gbs(n) for n in GPU_COUNTS]
        for app in APPLICATIONS
    }


def test_fig13_bandwidth_requirements(benchmark):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = "gpus     " + " ".join(f"{g:>10d}" for g in GPU_COUNTS)
    lines = ["required bandwidth (GB/s) for unconstrained scaling", header]
    for app in APPLICATIONS:
        lines.append(series_row(app, data[app]))
    lines.append("")
    lines.append(f"reference: PCIe v3 x16 = {PCIE_V3_X16.effective_gbs:.2f} GB/s/GPU, "
                 f"host aggregate = {PLATFORM.host_link_gbs:.1f} GB/s, "
                 f"10GbE = {ETH_10G.effective_gbs:.2f} GB/s")
    lines.append("(paper: compute-heavy tasks satisfied by >=4 GB/s; NLP far above PCIe v3;")
    lines.append(" 10GbE below everything)")
    report("fig13", "Figure 13: bandwidth requirement vs number of GPUs", lines)

    for app in ("pos", "chk", "ner"):
        assert data[app][-1] > PLATFORM.host_link_gbs
    assert max(data[a][-1] for a in ("imc", "face", "asr")) > 4.0
    # a single 10GbE link is below every demand curve except FACE's (whose
    # per-query compute is so heavy its 8-GPU data rate stays under 1 GB/s)
    for app in ("imc", "dig", "asr", "pos", "chk", "ner"):
        assert data[app][-1] > ETH_10G.effective_gbs
