"""Ablation: query latency through the three WSC designs (Figure 14's
arrows, simulated).

The paper compares the designs on TCO at matched throughput; this ablation
adds the latency dimension: GPU designs collapse heavy-app latency by an
order of magnitude, and disaggregation pays a visible (but small) network
hop relative to the integrated design.
"""

from repro.gpusim import app_model
from repro.sim.wscflow import compare_designs

from _common import report

#: (app, offered QPS chosen inside every design's capacity for 12 cores/2 GPUs)
LOADS = (("imc", 50.0), ("pos", 5000.0), ("asr", 1.5))


def sweep():
    return {app: compare_designs(app_model(app), qps) for app, qps in LOADS}


def test_ablation_design_latency(benchmark):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'app':5s} {'design':14s} {'mean ms':>10s} {'p99 ms':>10s}"]
    for app, results in data.items():
        for design, r in results.items():
            lines.append(f"{app:5s} {design:14s} {r.mean_latency_s * 1e3:>10.2f} "
                         f"{r.p99_latency_s * 1e3:>10.2f}")
        lines.append("")
    lines.append("(GPU designs cut heavy-app latency ~40x; the disaggregated")
    lines.append(" design's fabric hop costs fractions of a millisecond —")
    lines.append(" the latency price of its TCO flexibility)")
    report("ablation_design_latency", "Ablation: query latency per WSC design", lines)

    for app, results in data.items():
        assert results["integrated"].mean_latency_s <= results["cpu_only"].mean_latency_s
        assert (results["disaggregated"].mean_latency_s
                >= results["integrated"].mean_latency_s * 0.99)
