"""Figure 10: final single-GPU throughput improvement over a CPU core with
both optimizations applied — Table 3 batch sizes plus 4 MPS instances.
"""

from repro.gpusim import app_model
from repro.gpusim.mps import service_segments, simulate_concurrent
from repro.gpusim.multigpu import MPS_INSTANCES
from repro.models import APPLICATIONS

from _common import bar, report


def compute():
    speedups = {}
    for app in APPLICATIONS:
        model = app_model(app)
        result = simulate_concurrent(service_segments(model), MPS_INSTANCES, "mps")
        qps = result.qps * model.best_batch
        speedups[app] = (model.best_batch, qps * model.cpu_dnn_time())
    return speedups


def test_fig10_optimized_speedups(benchmark):
    speedups = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [f"{'app':5s} {'batch':>5s} {'speedup':>8s}"]
    for app, (batch, s) in speedups.items():
        lines.append(f"{app:5s} {batch:>5d} {s:>8.1f}x  {bar(s, 200)}")
    lines.append("(paper: >100x for all but FACE; FACE ~40x; NLP lifted from ~7x to >120x)")
    report("fig10", "Figure 10: optimized single-GPU speedup (batching + MPS)", lines)

    for app, (_, s) in speedups.items():
        if app == "face":
            assert 25 < s < 80
        else:
            assert s > 100, (app, s)
