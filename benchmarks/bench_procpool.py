"""Proc-pool vs threaded serving throughput under concurrent load.

The threaded :class:`repro.core.BatchingExecutor` runs every forward in the
parent process: python layer glue serializes on the GIL, so concurrent
batches cannot use more than ~1 core outside BLAS.  The
:class:`repro.core.ProcPoolExecutor` runs the same arena-backed plans in N
forked workers over shared-memory weights — true core-level parallelism
from one resident copy of the model.

This bench drives both executors identically: C client threads in a closed
loop, each submitting ``--batch``-row requests for ``--seconds``, and
reports inputs/s.  Before timing, it asserts the two executors produce
bit-identical outputs for the same input, and that the pool's shm
footprint is one copy of the weights (plus per-blob alignment slack).

``--check`` gates ``pool/threaded >= 2.0`` for ``imc`` at batch 8 — the
paper-shaped claim that process workers at least double a GIL-bound
replica.  The gate only *enforces* on hosts with >= 4 cores (the speedup
is physically impossible on fewer); the JSON always records the honest
measured numbers plus ``gate_enforced`` so a 1-core CI run is visible as
such rather than silently green.

Usage::

    python benchmarks/bench_procpool.py                  # sweep + JSON
    python benchmarks/bench_procpool.py --check          # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import BatchingExecutor, BatchPolicy, ModelRegistry  # noqa: E402
from repro.core import ProcPoolExecutor  # noqa: E402
from repro.core import shm as shmseg  # noqa: E402
from repro.models import build_spec  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: pool must at least double threaded throughput (enforced on >=4 cores)
SPEEDUP_GATE = 2.0
GATE_MIN_CORES = 4


def _closed_loop(submit, x, clients: int, seconds: float) -> float:
    """Inputs/s from C client threads hammering ``submit`` for ``seconds``."""
    stop = time.monotonic() + seconds
    counts = [0] * clients
    errors: list = []

    def loop(i: int) -> None:
        try:
            while time.monotonic() < stop:
                submit(x)
                counts[i] += 1
        except Exception as exc:  # noqa: BLE001 - a failed client fails the bench
            errors.append(f"client {i}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=loop, args=(i,)) for i in range(clients)]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - start
    if errors:
        raise RuntimeError("; ".join(errors))
    return sum(counts) * x.shape[0] / elapsed


def bench_app(app: str, batch: int, clients: int, workers: int,
              seconds: float) -> dict:
    registry = ModelRegistry()
    net = registry.register_spec(app, build_spec(app), seed=0)
    x = np.random.default_rng(0).standard_normal(
        (batch,) + tuple(net.input_shape)).astype(np.float32)

    threaded = BatchingExecutor(registry,
                                BatchPolicy(max_batch=batch, timeout_ms=0.5))
    pool = ProcPoolExecutor(registry, workers=workers, max_batch=batch,
                            slots=max(clients + 2, workers + 2))
    try:
        # correctness first: same input, bit-identical outputs both ways
        reference = threaded.submit(app, x)
        assert pool.submit(app, x).tobytes() == reference.tobytes(), (
            f"{app}: pool output diverges from threaded executor")
        # one copy of the weights per host, MMU-enforced read-only
        param_bytes = registry.total_param_bytes()
        blob_count = len(shmseg.net_blobs(net))
        shm_bytes = pool.shm_bytes()
        assert param_bytes <= shm_bytes <= param_bytes + 64 * blob_count, (
            f"{app}: shm holds {shm_bytes} bytes for {param_bytes} "
            f"bytes of parameters — not a single copy")

        threaded_ips = _closed_loop(lambda v: threaded.submit(app, v),
                                    x, clients, seconds)
        pool_ips = _closed_loop(lambda v: pool.submit(app, v),
                                x, clients, seconds)
    finally:
        pool.close()
        threaded.close()
        registry.close_shm()

    speedup = pool_ips / threaded_ips
    print(f"{app:5s} batch {batch:3d} x {clients} clients: "
          f"threaded {threaded_ips:9.1f} inputs/s  "
          f"proc:{workers} {pool_ips:9.1f} inputs/s  "
          f"speedup {speedup:5.2f}x")
    return {
        "app": app,
        "batch": batch,
        "clients": clients,
        "workers": workers,
        "seconds": seconds,
        "threaded_ips": threaded_ips,
        "pool_ips": pool_ips,
        "speedup": speedup,
        "weight_bytes": param_bytes,
        "shm_bytes": shm_bytes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--apps", default="imc",
                        help="comma-separated zoo apps to sweep")
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent closed-loop client threads")
    parser.add_argument("--workers", type=int, default=4,
                        help="proc-pool worker processes")
    parser.add_argument("--seconds", type=float, default=5.0,
                        help="measurement window per executor")
    parser.add_argument("--out", default=os.path.join(RESULTS_DIR,
                                                      "BENCH_procpool.json"))
    parser.add_argument("--check", action="store_true",
                        help="CI gate: pool >= 2x threaded for imc@batch-8 "
                             "(enforced only on >= 4-core hosts)")
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    gate_enforced = cores >= GATE_MIN_CORES
    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    results = {
        "cpu_count": cores,
        "speedup_gate": SPEEDUP_GATE,
        "gate_enforced": gate_enforced,
        "batch": args.batch,
        "clients": args.clients,
        "workers": args.workers,
        "apps": [bench_app(app, args.batch, args.clients, args.workers,
                           args.seconds)
                 for app in apps],
    }

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        if not gate_enforced:
            print(f"speedup gate SKIPPED: {cores} core(s) < {GATE_MIN_CORES} "
                  f"(a {SPEEDUP_GATE}x multi-core speedup is not physically "
                  f"available); numbers recorded with gate_enforced=false")
            return 0
        failures = [
            f"{entry['app']}: pool is {entry['speedup']:.2f}x threaded "
            f"(< {SPEEDUP_GATE}x)"
            for entry in results["apps"]
            if entry["speedup"] < SPEEDUP_GATE
        ]
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(f"procpool check passed: >= {SPEEDUP_GATE}x threaded "
              f"on {cores} cores")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
