"""Proc-pool vs threaded serving throughput under concurrent load.

The threaded :class:`repro.core.BatchingExecutor` runs every forward in the
parent process: python layer glue serializes on the GIL, so concurrent
batches cannot use more than ~1 core outside BLAS.  The
:class:`repro.core.ProcPoolExecutor` runs the same arena-backed plans in N
forked workers over shared-memory weights — true core-level parallelism
from one resident copy of the model.

This bench drives both executors identically: C client threads in a closed
loop, each submitting ``--batch``-row requests for ``--seconds``, and
reports inputs/s.  Before timing, it asserts the two executors produce
bit-identical outputs for the same input, and that the pool's shm
footprint is one copy of the weights (plus per-blob alignment slack).

``--check`` gates ``pool/threaded >= 2.0`` for ``imc`` at batch 8 — the
paper-shaped claim that process workers at least double a GIL-bound
replica — and ``batch-1 pool-armed >= 1.0x threaded``: a serving executor
with the pool attached must not *lose* at depth 1, because the batch-1
fast path runs the lone request in-parent instead of paying the queue and
slot-ring handoff.  The gates only *enforce* on hosts with >= 4 cores
(the multi-core speedup is physically impossible on fewer); the JSON
always records the honest measured numbers plus ``gate_enforced`` so a
1-core CI run is visible as such rather than silently green.

Usage::

    python benchmarks/bench_procpool.py                  # sweep + JSON
    python benchmarks/bench_procpool.py --check          # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

sys.path.insert(0, os.path.dirname(__file__))

from repro.core import BatchingExecutor, BatchPolicy, ModelRegistry  # noqa: E402
from repro.core import ProcPoolExecutor  # noqa: E402
from repro.core import shm as shmseg  # noqa: E402
from repro.models import build_spec  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402

from _common import GATE_MIN_CORES, gate_fields  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: pool must at least double threaded throughput (enforced on >=4 cores)
SPEEDUP_GATE = 2.0
#: pool-armed serving must not lose to threaded at batch 1 — the fast path
#: runs depth-1 requests in-parent, skipping the queue and slot-ring handoff
BATCH1_GATE = 1.0


def _closed_loop(submit, x, clients: int, seconds: float) -> float:
    """Inputs/s from C client threads hammering ``submit`` for ``seconds``."""
    stop = time.monotonic() + seconds
    counts = [0] * clients
    errors: list = []

    def loop(i: int) -> None:
        try:
            while time.monotonic() < stop:
                submit(x)
                counts[i] += 1
        except Exception as exc:  # noqa: BLE001 - a failed client fails the bench
            errors.append(f"client {i}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=loop, args=(i,)) for i in range(clients)]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - start
    if errors:
        raise RuntimeError("; ".join(errors))
    return sum(counts) * x.shape[0] / elapsed


def bench_app(app: str, batch: int, clients: int, workers: int,
              seconds: float) -> dict:
    registry = ModelRegistry()
    net = registry.register_spec(app, build_spec(app), seed=0)
    x = np.random.default_rng(0).standard_normal(
        (batch,) + tuple(net.input_shape)).astype(np.float32)

    threaded = BatchingExecutor(registry,
                                BatchPolicy(max_batch=batch, timeout_ms=0.5))
    pool = ProcPoolExecutor(registry, workers=workers, max_batch=batch,
                            slots=max(clients + 2, workers + 2))
    try:
        # correctness first: same input, bit-identical outputs both ways
        reference = threaded.submit(app, x)
        assert pool.submit(app, x).tobytes() == reference.tobytes(), (
            f"{app}: pool output diverges from threaded executor")
        # one copy of the weights per host, MMU-enforced read-only
        param_bytes = registry.total_param_bytes()
        blob_count = len(shmseg.net_blobs(net))
        shm_bytes = pool.shm_bytes()
        assert param_bytes <= shm_bytes <= param_bytes + 64 * blob_count, (
            f"{app}: shm holds {shm_bytes} bytes for {param_bytes} "
            f"bytes of parameters — not a single copy")

        threaded_ips = _closed_loop(lambda v: threaded.submit(app, v),
                                    x, clients, seconds)
        pool_ips = _closed_loop(lambda v: pool.submit(app, v),
                                x, clients, seconds)

        # batch-1 depth-1: a pool-*armed* serving executor must not lose to
        # the plain threaded one — the fast path runs the lone request
        # in-parent instead of paying the queue + slot-ring handoff.  Both
        # sides get their own metrics registry so the per-request metric
        # cost is symmetric and only the pool arm differs.
        threaded1 = BatchingExecutor(
            registry, BatchPolicy(max_batch=batch, timeout_ms=0.5),
            metrics=MetricsRegistry())
        combined = BatchingExecutor(
            registry, BatchPolicy(max_batch=batch, timeout_ms=0.5),
            pool=pool, metrics=MetricsRegistry())
        x1 = x[:1]
        try:
            threaded1_ips = _closed_loop(
                lambda v: threaded1.submit(app, v), x1, 1, seconds)
            pool1_ips = _closed_loop(
                lambda v: combined.submit(app, v), x1, 1, seconds)
            fast_hits = combined._fast_hits.labels(model=app).value
        finally:
            combined.close()
            threaded1.close()
        assert fast_hits > 0, (
            f"{app}: batch-1 requests never took the fast path")
        batch1_speedup = pool1_ips / threaded1_ips
    finally:
        pool.close()
        threaded.close()
        registry.close_shm()

    speedup = pool_ips / threaded_ips
    print(f"{app:5s} batch {batch:3d} x {clients} clients: "
          f"threaded {threaded_ips:9.1f} inputs/s  "
          f"proc:{workers} {pool_ips:9.1f} inputs/s  "
          f"speedup {speedup:5.2f}x")
    print(f"{app:5s} batch   1 x 1 client:  "
          f"threaded {threaded1_ips:9.1f} inputs/s  "
          f"pool-armed {pool1_ips:9.1f} inputs/s  "
          f"speedup {batch1_speedup:5.2f}x "
          f"({fast_hits:.0f} fast-path hits)")
    return {
        "app": app,
        "batch": batch,
        "clients": clients,
        "workers": workers,
        "seconds": seconds,
        "threaded_ips": threaded_ips,
        "pool_ips": pool_ips,
        "speedup": speedup,
        "batch1": {
            "threaded_ips": threaded1_ips,
            "pool_ips": pool1_ips,
            "speedup": batch1_speedup,
            "fast_hits": fast_hits,
        },
        "weight_bytes": param_bytes,
        "shm_bytes": shm_bytes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--apps", default="imc",
                        help="comma-separated zoo apps to sweep")
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent closed-loop client threads")
    parser.add_argument("--workers", type=int, default=4,
                        help="proc-pool worker processes")
    parser.add_argument("--seconds", type=float, default=5.0,
                        help="measurement window per executor")
    parser.add_argument("--out", default=os.path.join(RESULTS_DIR,
                                                      "BENCH_procpool.json"))
    parser.add_argument("--check", action="store_true",
                        help="CI gate: pool >= 2x threaded for imc@batch-8 "
                             "(enforced only on >= 4-core hosts)")
    args = parser.parse_args(argv)

    gate = gate_fields()
    cores = gate["host_cores"]
    gate_enforced = gate["gate_enforced"]
    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    results = {
        **gate,
        "speedup_gate": SPEEDUP_GATE,
        "batch1_gate": BATCH1_GATE,
        "batch": args.batch,
        "clients": args.clients,
        "workers": args.workers,
        "apps": [bench_app(app, args.batch, args.clients, args.workers,
                           args.seconds)
                 for app in apps],
    }

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        if not gate_enforced:
            print(f"speedup gate SKIPPED: {cores} core(s) < {GATE_MIN_CORES} "
                  f"(a {SPEEDUP_GATE}x multi-core speedup is not physically "
                  f"available); numbers recorded with gate_enforced=false")
            return 0
        failures = [
            f"{entry['app']}: pool is {entry['speedup']:.2f}x threaded "
            f"(< {SPEEDUP_GATE}x)"
            for entry in results["apps"]
            if entry["speedup"] < SPEEDUP_GATE
        ]
        failures += [
            f"{entry['app']}: batch-1 pool-armed serving is "
            f"{entry['batch1']['speedup']:.2f}x threaded "
            f"(< {BATCH1_GATE}x — fast path did not erase the "
            f"slot-ring handoff)"
            for entry in results["apps"]
            if entry["batch1"]["speedup"] < BATCH1_GATE
        ]
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(f"procpool check passed: >= {SPEEDUP_GATE}x threaded at "
              f"batch {args.batch}, >= {BATCH1_GATE}x at batch 1, "
              f"on {cores} cores")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
