"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs
the relevant model/simulation under ``pytest-benchmark`` timing, prints the
rows/series the paper reports, and appends them to
``benchmarks/results/<name>.txt`` so the full set of reproduced artifacts
can be reviewed after a run.
"""

from __future__ import annotations

import os
from typing import Iterable, List

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, title: str, lines: Iterable[str]) -> str:
    """Print a reproduced table/figure and persist it under results/."""
    body = "\n".join([f"=== {title} ==="] + list(lines))
    print("\n" + body)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(body + "\n")
    return body


def series_row(label: str, values: List[float], fmt: str = "{:>10.2f}") -> str:
    return f"{label:8s} " + " ".join(fmt.format(v) for v in values)


def bar(value: float, scale: float, width: int = 40) -> str:
    """A log-free text bar for quick visual comparison."""
    filled = int(min(1.0, value / scale) * width)
    return "#" * filled
