"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs
the relevant model/simulation under ``pytest-benchmark`` timing, prints the
rows/series the paper reports, and appends them to
``benchmarks/results/<name>.txt`` so the full set of reproduced artifacts
can be reviewed after a run.
"""

from __future__ import annotations

import os
from typing import Iterable, List

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: multi-core perf gates only *enforce* on hosts with at least this many
#: usable cores — below it the gated speedups are physically unavailable
GATE_MIN_CORES = 4


def host_cores() -> int:
    """Usable core count, detected once per run, affinity-aware.

    ``os.cpu_count()`` reports the machine, not the process: a CI runner
    pinned to one core of a 64-core host would read as 64 and enforce a
    gate it cannot pass (or, inverted, a bench could claim
    ``gate_enforced=false`` on a big host by checking the wrong number).
    ``sched_getaffinity`` sees the actual cpuset.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # non-Linux fallback
        return os.cpu_count() or 1


def gate_fields(min_cores: int = GATE_MIN_CORES) -> dict:
    """The uniform host/gate stanza every bench JSON records.

    ``gate_enforced`` is derived here, once, from the same core count that
    is written to the JSON — a bench cannot record one and enforce on the
    other.
    """
    cores = host_cores()
    return {
        "host_cores": cores,
        "gate_min_cores": min_cores,
        "gate_enforced": cores >= min_cores,
    }


def report(name: str, title: str, lines: Iterable[str]) -> str:
    """Print a reproduced table/figure and persist it under results/."""
    body = "\n".join([f"=== {title} ==="] + list(lines))
    print("\n" + body)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(body + "\n")
    return body


def series_row(label: str, values: List[float], fmt: str = "{:>10.2f}") -> str:
    return f"{label:8s} " + " ".join(fmt.format(v) for v in values)


def bar(value: float, scale: float, width: int = 40) -> str:
    """A log-free text bar for quick visual comparison."""
    filled = int(min(1.0, value / scale) * width)
    return "#" * filled
