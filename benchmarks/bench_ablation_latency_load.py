"""Ablation: latency vs offered load for a DjiNN GPU endpoint.

Quantifies §5.1's latency narrative with the queueing simulation: at low
load, full-batch coalescing makes queries wait for the batch to fill; near
capacity, queueing delay takes over; past capacity it diverges.  Two batch
sizes show the trade Table 3's choices navigate.
"""

from repro.gpusim import app_model
from repro.sim.cluster import DjinnEndpointSim

from _common import report, series_row

FRACTIONS = (0.1, 0.3, 0.5, 0.7, 0.9, 1.4)
APP = "pos"


def sweep():
    out = {}
    for batch in (8, 64):
        endpoint = DjinnEndpointSim(app_model(APP), gpus=2, batch=batch)
        out[batch] = (endpoint, endpoint.load_sweep(FRACTIONS, queries=6000))
    return out


def test_ablation_latency_vs_load(benchmark):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = "load     " + " ".join(f"{f:>10.2f}" for f in FRACTIONS)
    lines = [f"{APP} endpoint, 2 GPUs; load as fraction of batch-64 capacity", ""]
    for batch, (endpoint, points) in data.items():
        lines.append(f"batch={batch} (capacity {endpoint.capacity_qps:,.0f} QPS)")
        lines.append(header)
        lines.append(series_row("mean ms", [p.mean_latency_s * 1e3 for p in points]))
        lines.append(series_row("p99 ms", [p.p99_latency_s * 1e3 for p in points]))
        lines.append(series_row("util", [p.utilization for p in points]))
        lines.append("")
    lines.append("(low load: batch-fill wait dominates -> smaller batches win;")
    lines.append(" past capacity: queueing delay diverges, §5.1's saturation knee)")
    report("ablation_latency_load", "Ablation: endpoint latency vs offered load", lines)

    _, points64 = data[64]
    assert points64[-1].mean_latency_s > 2.5 * points64[-2].mean_latency_s  # knee
    _, points8 = data[8]
    assert points8[0].mean_latency_s < points64[0].mean_latency_s  # small batch at low load
