"""Figure 5: baseline (batch = 1) GPU throughput improvement over a single
Xeon core, per application.
"""

from repro.gpusim import all_app_models

from _common import bar, report


def compute():
    return {m.app: m.gpu_speedup(1) for m in all_app_models()}


def test_fig5_gpu_vs_cpu_throughput(benchmark):
    speedups = benchmark(compute)
    lines = [f"{'app':5s} {'speedup':>8s}"]
    for app, s in speedups.items():
        lines.append(f"{app:5s} {s:>8.1f}x  {bar(s, 130)}")
    lines.append("(paper: ASR ~120x; NLP ~7x; >30M-param nets >20x)")
    report("fig5", "Figure 5: GPU over single-core CPU throughput, batch=1", lines)

    assert 90 < speedups["asr"] < 150
    assert all(4 < speedups[a] < 10 for a in ("pos", "chk", "ner"))
    assert speedups["imc"] > 20
