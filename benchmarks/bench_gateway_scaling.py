"""Fig. 11-shaped experiment on the real gateway: throughput vs replicas.

The paper scales DjiNN throughput by adding GPUs, one service instance per
GPU (§5.2, Fig. 11).  Here the fleet is N in-process ``DjinnServer``
backends behind the real ``GatewayServer`` on localhost TCP, driven
closed-loop by the standard load generator — every byte crosses real
sockets through the real routing/retry path.

This host exposes a single CPU core, so replica scaling cannot come from
host parallelism; instead each backend is *device-paced* (``service_floor_s``
imposes a serial per-batch service time, slept with the GIL released),
modeling the paper's regime where per-request latency is dominated by the
attached GPU.  Replicas then genuinely overlap device time, and aggregate
throughput grows until the host CPU (the paper's PCIe/host analogue,
Fig. 12) becomes the bottleneck.
"""

import numpy as np

from repro.core import BatchPolicy, ModelRegistry, run_closed_loop_load
from repro.gateway import ClusterLauncher, GatewayServer

from _common import bar, report

#: modeled device service time per batch (order of a K40 forward pass for a
#: mid-size Tonic batch, Fig. 5)
SERVICE_FLOOR_S = 0.02
FLEET_SIZES = (1, 2, 3, 4)
CLIENTS = 8
REQUESTS_PER_CLIENT = 20


def make_registry():
    from repro.models import senna

    reg = ModelRegistry()
    reg.register_spec("pos", senna("pos"), seed=1)
    return reg


def measure():
    registry = make_registry()
    qps = {}
    for n in FLEET_SIZES:
        with ClusterLauncher(
            registry, backends=n,
            batching=BatchPolicy(max_batch=1, timeout_ms=0.0),
            service_floor_s=SERVICE_FLOOR_S,
        ) as cluster:
            gateway = GatewayServer(cluster.addresses, policy="least_outstanding",
                                    health_interval_s=1.0)
            with gateway:
                host, port = gateway.address
                result = run_closed_loop_load(
                    host, port, "pos",
                    lambda i: np.zeros((1, 300), np.float32),
                    clients=CLIENTS, requests_per_client=REQUESTS_PER_CLIENT,
                )
                assert result.errors == 0, f"load run had {result.errors} errors"
                qps[n] = result.qps
    return qps


def test_gateway_scaling(benchmark):
    qps = benchmark.pedantic(measure, rounds=1, iterations=1)
    ideal = qps[1]
    lines = [f"{n} backend(s) {qps[n]:>8.1f} qps  "
             f"{qps[n] / ideal:>4.2f}x  {bar(qps[n], qps[max(FLEET_SIZES)])}"
             for n in FLEET_SIZES]
    lines.append(f"(real GatewayServer + {CLIENTS} closed-loop TCP clients; "
                 f"backends device-paced at {SERVICE_FLOOR_S * 1e3:.0f} ms/batch "
                 f"on a {1}-core host)")
    report("gateway_scaling", "Gateway throughput vs replicas (Fig 11 shape)", lines)

    # the paper's claim in miniature: aggregate throughput grows with every
    # added replica, and the fleet of 4 is well beyond 1-instance throughput
    for small, big in zip(FLEET_SIZES, FLEET_SIZES[1:]):
        assert qps[big] > qps[small], (
            f"throughput must rise {small}->{big} backends: {qps}")
    assert qps[4] > 2.5 * qps[1], f"4 replicas should near-linearly beat 1: {qps}"
