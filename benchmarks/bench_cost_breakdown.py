"""Per-request cost attribution: where a DjiNN request's time actually goes.

The paper's Fig-4 shows a static per-layer breakdown measured offline; the
serving stack's span tracer lets us reproduce that breakdown *per request,
in production form*: every traced request is folded into a cost ledger over
a fixed stage taxonomy (client.serialize, queueing, batch assembly, the
forward pass, respond) with an explicit *unattributed* residual — time the
instrumentation cannot explain is reported, never silently absorbed.

This bench sweeps serving configurations (model x max-batch x execution
mode) against a live server, aggregates the ledgers of every traced
request (wall-time weighted), and records the stage shares.  It also
exercises the tail-exemplar path end to end: the latency histogram's
slowest-request exemplars are resolved back through the tracer into a full
cost ledger — the same lookup ``djinn slow`` performs.

It also sweeps the v5 APP path against the classic preprocessed-tensor
path for the same queries: the raw uint8 payload is a fraction of the
preprocessed float tensor's wire bytes, and the preprocess milliseconds —
invisible client-side work before this protocol — show up *server-side*
in the ledger's ``preprocess``/``postprocess`` stages.  Finally it
A/Bs the batch-1 fast path against the slot-ring path at depth 1 on a
pool-armed executor.

``--check`` gates (CI):

* stage shares (incl. the residual) sum to 100% in every configuration;
* the unattributed residual stays under ``--residual-limit`` (default 5%)
  in every gated configuration — attribution must explain the request;
* the metrics exposition survives a render -> parse round trip;
* at least one tail exemplar resolves to a full cost ledger;
* the APP path attributes a non-zero ``preprocess`` share server-side and
  ships fewer wire bytes than the preprocessed tensor;
* the batch-1 fast path is no slower than the slot-ring path at depth 1
  (enforced only on >= 4-core hosts; honest numbers always recorded).

Usage::

    python benchmarks/bench_cost_breakdown.py            # sweep + JSON
    python benchmarks/bench_cost_breakdown.py --check    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import (BatchingExecutor, BatchPolicy, DjinnClient,  # noqa: E402
                        DjinnServer, ModelRegistry, ProcPoolExecutor)
from repro.models import build_spec  # noqa: E402
from repro.obs import (aggregate_shares, build_ledger, build_ledgers,  # noqa: E402
                       get_tracer, parse_exposition, render_exposition)
from repro.obs.metrics import MetricsRegistry  # noqa: E402

sys.path.insert(0, os.path.dirname(__file__))

from _common import gate_fields  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

MODELS = ("dig", "imc")
BATCHES = (1, 8, 32)
MODES = ("threaded", "proc:2")


def _tail_exemplars(dump: dict) -> list:
    """``(latency_s, trace_id_hex)`` from the request-latency histogram."""
    entry = dump.get("metrics", {}).get("djinn_request_latency_seconds", {})
    found = []
    for sample in entry.get("samples", ()):
        for value, label in sample.get("exemplars", ()):
            found.append((float(value), str(label)))
    found.sort(key=lambda e: (-e[0], e[1]))
    return found


def run_config(model: str, batch: int, mode: str, requests: int,
               warmup: int) -> dict:
    """Serve ``requests`` traced queries and fold them into stage shares."""
    tracer = get_tracer()
    registry = ModelRegistry()
    registry.register_spec(model, build_spec(model), seed=0)
    server = DjinnServer(
        registry, port=0,
        batching=BatchPolicy(max_batch=batch, timeout_ms=2.0),
        workers=(None if mode == "threaded" else mode),
        profile_layers=True)
    server.start()
    tracer.clear()
    tracer.enable()
    try:
        host, port = server.address
        rng = np.random.default_rng(0)
        x = rng.standard_normal(
            (batch,) + tuple(registry.get(model).input_shape)).astype(np.float32)
        with DjinnClient(host, port) as client:
            for _ in range(warmup):
                client.infer(model, x)
            # let the server finish the last warmup request's bookkeeping
            # before clearing, or its tail spans leak into the measurement
            time.sleep(0.05)
            tracer.clear()  # ledgers cover only the measured requests
            for _ in range(requests):
                client.infer(model, x)
            dump = client.metrics()
    finally:
        tracer.disable()
        server.stop()

    # keep only complete traces (a client.infer root): a request straddling
    # the post-warmup clear leaves a rootless span fragment behind
    by_trace = {}
    for span in tracer.spans():
        by_trace.setdefault(span.trace_id, []).append(span)
    complete = [span for spans in by_trace.values()
                if any(s.name == "client.infer" for s in spans)
                for span in spans]
    ledgers = build_ledgers(complete)
    shares = aggregate_shares(ledgers)
    wall_s = sum(ledger.wall_s for ledger in ledgers)

    # the djinn-slow path: histogram exemplar -> tracer -> cost ledger
    exemplar_entry = None
    for latency_s, trace_hex in _tail_exemplars(dump):
        spans = tracer.spans(int(trace_hex, 16))
        if spans:
            ledger = build_ledger(spans)
            exemplar_entry = {"latency_s": latency_s, "trace_id": trace_hex,
                              "ledger": ledger.to_dict()}
            break

    tracer.clear()
    return {
        "model": model,
        "batch": batch,
        "mode": mode,
        "requests": len(ledgers),
        "wall_s": wall_s,
        "shares": shares,
        "residual_share": shares.get("unattributed", 0.0),
        "tail_exemplar": exemplar_entry,
        "exposition": render_exposition(dump),
    }


def run_raw_vs_tensor(requests: int, warmup: int) -> dict:
    """APP path (raw payload, server-side pre/post) vs preprocessed INFER.

    Same queries both ways against one batched server: the v5 frame ships
    the raw uint8 image and the server runs the Tonic pipeline; the
    classic frame ships the preprocessed float tensor the client computed.
    Records wire payload bytes and the aggregated stage shares of each
    path — the APP path's ``preprocess``/``postprocess`` shares are the
    milliseconds that used to hide client-side.
    """
    from repro.tonic import DigApp

    tracer = get_tracer()
    registry = ModelRegistry()
    registry.register_spec("dig", build_spec("dig"), seed=0)
    server = DjinnServer(registry, port=0,
                         batching=BatchPolicy(max_batch=8, timeout_ms=2.0))
    server.start()
    rng = np.random.default_rng(0)
    raw = (rng.random((1, 28, 28)) * 255).astype(np.uint8)
    tensor = DigApp(backend=None).preprocess(
        raw.astype(np.float32) / np.float32(255.0))

    def measure(submit) -> dict:
        tracer.clear()
        tracer.enable()
        try:
            for _ in range(warmup):
                submit()
            time.sleep(0.05)
            tracer.clear()
            for _ in range(requests):
                submit()
            time.sleep(0.05)
        finally:
            tracer.disable()
        ledgers = build_ledgers(tracer.spans())
        tracer.clear()
        return aggregate_shares(ledgers)

    try:
        host, port = server.address
        with DjinnClient(host, port) as client:
            app_shares = measure(lambda: client.infer_app("dig", raw))
            tensor_shares = measure(lambda: client.infer("dig", tensor))
    finally:
        server.stop()

    return {
        "model": "dig",
        "requests": requests,
        "raw_wire_bytes": int(raw.nbytes),
        "tensor_wire_bytes": int(tensor.nbytes),
        "wire_ratio": tensor.nbytes / raw.nbytes,
        "app_shares": app_shares,
        "tensor_shares": tensor_shares,
        "app_preprocess_share": app_shares.get("preprocess", 0.0),
        "app_postprocess_share": app_shares.get("postprocess", 0.0),
    }


def run_fastpath_depth1(requests: int, warmup: int) -> dict:
    """A/B the batch-1 fast path against the slot ring at depth 1.

    One pool-armed executor, serial single-row submits (queue always
    empty): first with the fast path live — the request runs in-parent —
    then with the executor's per-model kill switch thrown so every
    request pays the queue handoff and shm slot-ring roundtrip.
    """
    registry = ModelRegistry()
    registry.register_spec("dig", build_spec("dig"), seed=0)
    pool = ProcPoolExecutor(registry, workers=2, max_batch=8)
    executor = BatchingExecutor(
        registry, BatchPolicy(max_batch=8, timeout_ms=0.5),
        pool=pool, metrics=MetricsRegistry())
    x1 = np.random.default_rng(0).standard_normal(
        (1,) + tuple(registry.get("dig").input_shape)).astype(np.float32)

    def mean_latency_s() -> float:
        for _ in range(warmup):
            executor.submit("dig", x1)
        start = time.perf_counter()
        for _ in range(requests):
            executor.submit("dig", x1)
        return (time.perf_counter() - start) / requests

    try:
        fast_s = mean_latency_s()
        fast_hits = executor._fast_hits.labels(model="dig").value
        assert fast_hits >= requests, (
            f"fast path took only {fast_hits:.0f}/{requests} requests")
        executor._fast_off.add("dig")  # kill switch: force the slot ring
        ring_s = mean_latency_s()
    finally:
        executor.close()
        pool.close()
        registry.close_shm()

    return {
        "model": "dig",
        "requests": requests,
        "fast_ms": fast_s * 1e3,
        "slot_ring_ms": ring_s * 1e3,
        "speedup": ring_s / fast_s,
        "fast_hits": fast_hits,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--requests", type=int, default=12,
                        help="measured traced requests per configuration")
    parser.add_argument("--warmup", type=int, default=3,
                        help="untimed requests before measuring (JIT, caches)")
    parser.add_argument("--residual-limit", type=float, default=0.05,
                        help="max unattributed share tolerated by --check")
    parser.add_argument("--out", default=os.path.join(RESULTS_DIR,
                                                      "BENCH_cost.json"))
    parser.add_argument("--check", action="store_true",
                        help="CI gate: shares sum to 100%%, residual under "
                             "the limit, exposition round-trips, a tail "
                             "exemplar resolves to a ledger")
    args = parser.parse_args(argv)

    configs = []
    for model in MODELS:
        for mode in MODES:
            for batch in BATCHES:
                entry = run_config(model, batch, mode,
                                   args.requests, args.warmup)
                configs.append(entry)
                ordered = sorted(
                    ((stage, share) for stage, share in entry["shares"].items()
                     if share > 0.005), key=lambda e: -e[1])
                breakdown = "  ".join(f"{stage} {share:.1%}"
                                      for stage, share in ordered)
                print(f"{model:4s} batch={batch:<3d} {mode:9s} "
                      f"residual {entry['residual_share']:5.1%}  {breakdown}")

    raw_vs_tensor = run_raw_vs_tensor(args.requests, args.warmup)
    print(f"raw APP path: {raw_vs_tensor['raw_wire_bytes']} wire bytes vs "
          f"{raw_vs_tensor['tensor_wire_bytes']} preprocessed "
          f"({raw_vs_tensor['wire_ratio']:.1f}x), server-side preprocess "
          f"share {raw_vs_tensor['app_preprocess_share']:.1%}")

    fastpath = run_fastpath_depth1(max(args.requests * 4, 40), args.warmup)
    print(f"depth-1 batch-1: fast path {fastpath['fast_ms']:.3f} ms vs "
          f"slot ring {fastpath['slot_ring_ms']:.3f} ms "
          f"({fastpath['speedup']:.2f}x)")

    gate = gate_fields()
    results = {
        **gate,
        "requests_per_config": args.requests,
        "residual_limit": args.residual_limit,
        "configs": [{k: v for k, v in entry.items() if k != "exposition"}
                    for entry in configs],
        "raw_vs_tensor": raw_vs_tensor,
        "fastpath_depth1": fastpath,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        failures = []
        for entry in configs:
            tag = f"{entry['model']}/batch={entry['batch']}/{entry['mode']}"
            total = sum(entry["shares"].values())
            if entry["shares"] and abs(total - 1.0) > 1e-6:
                failures.append(f"{tag}: stage shares sum to {total:.4f}, "
                                f"not 1.0")
            if not entry["requests"]:
                failures.append(f"{tag}: no ledgers built")
            if entry["residual_share"] > args.residual_limit:
                failures.append(
                    f"{tag}: unattributed residual "
                    f"{entry['residual_share']:.1%} > "
                    f"{args.residual_limit:.0%}")
            try:
                samples = parse_exposition(entry["exposition"])
            except ValueError as exc:
                failures.append(f"{tag}: exposition does not parse: {exc}")
            else:
                for metric in ("djinn_requests_total",
                               "djinn_stage_seconds_total",
                               "djinn_request_latency_seconds_bucket"):
                    if metric not in samples:
                        failures.append(f"{tag}: exposition lacks {metric}")
        if not any(entry["tail_exemplar"] for entry in configs):
            failures.append("no tail exemplar resolved to a cost ledger")
        if raw_vs_tensor["app_preprocess_share"] <= 0.0:
            failures.append("APP path attributed no server-side preprocess "
                            "time — the v5 pipeline is not being measured")
        if raw_vs_tensor["raw_wire_bytes"] >= raw_vs_tensor["tensor_wire_bytes"]:
            failures.append("raw payload is not smaller than the "
                            "preprocessed tensor on the wire")
        if gate["gate_enforced"] and fastpath["speedup"] < 1.0:
            failures.append(
                f"batch-1 fast path is slower than the slot ring at depth 1 "
                f"({fastpath['fast_ms']:.3f} ms vs "
                f"{fastpath['slot_ring_ms']:.3f} ms)")
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        worst = max(entry["residual_share"] for entry in configs)
        print(f"cost check passed: {len(configs)} configs, worst residual "
              f"{worst:.1%} <= {args.residual_limit:.0%}, exposition "
              f"round-trips, tail exemplar ledger present, APP preprocess "
              f"attributed server-side, fast path "
              f"{fastpath['speedup']:.2f}x the slot ring at depth 1")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
