"""Table 1 + Table 2: the Tonic network architectures and the platform.

Regenerates the paper's Table 1 (application, network, type, layers,
parameters) from the model zoo, and prints the modeled platform (Table 2).
"""

from repro.gpusim import PLATFORM
from repro.models import (
    APPLICATIONS,
    DEEPFACE_ORIGINAL_IDENTITIES,
    build_net,
    build_spec,
    deepface,
    model_info,
    weighted_layer_count,
)
from repro.nn import Net

from _common import report


def build_table1():
    rows = []
    for app in APPLICATIONS:
        info = model_info(app)
        net = build_net(app)
        rows.append((info, net, weighted_layer_count(build_spec(app))))
    return rows


def test_table1_network_architectures(benchmark):
    rows = benchmark(build_table1)
    lines = [
        f"{'app':5s} {'network':9s} {'type':4s} {'stages':>6s} {'weighted':>8s} "
        f"{'params':>13s} {'paper layers':>12s} {'paper params':>13s}"
    ]
    for info, net, weighted in rows:
        lines.append(
            f"{info.app:5s} {info.network:9s} {info.network_type:4s} "
            f"{net.spec.depth:>6d} {weighted:>8d} {net.param_count():>13,d} "
            f"{info.paper_layers:>12d} {info.paper_params:>13,d}"
        )
    face_full = Net(deepface(DEEPFACE_ORIGINAL_IDENTITIES)).param_count()
    lines.append(f"(FACE at the original {DEEPFACE_ORIGINAL_IDENTITIES}-way "
                 f"classifier: {face_full:,d} params — Table 1's '120M')")
    report("table1", "Table 1: Tonic Suite neural network architectures", lines)

    params = {info.app: net.param_count() for info, net, _ in rows}
    assert 0.8 * 60e6 < params["imc"] < 1.2 * 60e6
    assert 0.8 * 30e6 < params["asr"] < 1.2 * 30e6


def test_table2_platform(benchmark):
    platform = benchmark(lambda: PLATFORM)
    gpu, cpu = platform.gpu, platform.cpu_core
    lines = [
        f"GPUs: {platform.gpus} x {gpu.name} "
        f"({gpu.num_sms} SMX, {gpu.peak_gflops/1000:.2f} TFLOP/s SP, "
        f"{gpu.mem_bandwidth_gbs:.0f} GB/s, {gpu.mem_bytes/2**30:.0f} GB)",
        f"CPU: {platform.sockets} x {cpu.name.split(' (')[0]} "
        f"({platform.cores_per_socket}C, {cpu.clock_ghz} GHz)",
        f"Host link: {platform.host_link_gbs} GB/s aggregate "
        f"({platform.pcie_per_gpu_gbs} GB/s PCIe v3 x16 per GPU)",
    ]
    report("table2", "Table 2: Platform specifications (modeled)", lines)
    assert platform.gpus == 8
