"""Figure 7: throughput (a), GPU occupancy (b), and latency (c) as the
input batch size grows, per application.
"""

from repro.gpusim import all_app_models
from repro.models import APPLICATIONS

from _common import report, series_row

BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)


def sweep():
    data = {}
    for m in all_app_models():
        qps = [m.gpu_qps(b) for b in BATCHES]
        occ = [m.gpu_profile(b).weighted_occupancy for b in BATCHES]
        lat = [m.gpu_query_time(b) * 1e3 for b in BATCHES]
        data[m.app] = (qps, occ, lat)
    return data


def test_fig7_batching_sweep(benchmark):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = "batch    " + " ".join(f"{b:>10d}" for b in BATCHES)

    lines = ["(a) throughput relative to batch=1", header]
    for app in APPLICATIONS:
        qps = data[app][0]
        lines.append(series_row(app, [q / qps[0] for q in qps]))
    lines += ["", "(b) weighted GPU occupancy", header]
    for app in APPLICATIONS:
        lines.append(series_row(app, data[app][1]))
    lines += ["", "(c) query latency (ms)", header]
    for app in APPLICATIONS:
        lines.append(series_row(app, data[app][2]))
    lines.append("")
    lines.append("(paper: throughput rises then plateaus; NLP gains ~15x and >80%")
    lines.append(" occupancy by batch 64; latency rises sharply past the plateau)")
    report("fig7", "Figure 7: throughput / occupancy / latency vs batch size", lines)

    pos_qps = data["pos"][0]
    assert pos_qps[6] / pos_qps[0] > 10           # ~15x NLP gain by batch 64
    imc_qps = data["imc"][0]
    assert 3 < imc_qps[4] / imc_qps[0] < 8        # ~5x IMC gain by batch 16
    for app in APPLICATIONS:
        lat = data[app][2]
        assert all(b >= a for a, b in zip(lat, lat[1:]))  # latency monotone
