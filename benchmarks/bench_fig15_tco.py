"""Figure 15 (plus Tables 4 and 5): TCO of the three WSC designs across
workload compositions, normalized to the CPU-only design.

Both methodology readings are reported: the default retains each query's
CPU-side pre/post-processing in the GPU designs (Figure 14's red arrows);
the alternate provisions pure inference.  EXPERIMENTS.md discusses how the
paper's 4-20x range relates to the two.
"""

from repro.wsc import CostFactors, IMAGE, MIXED, NLP, WscDesigner, tco_sweep

from _common import report, series_row

FRACTIONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.72, 0.8, 0.9, 1.0)


def sweep_all():
    default = WscDesigner()
    pure = WscDesigner(include_prepost=False)
    out = {}
    for workload in (MIXED, IMAGE, NLP):
        out[workload.name] = (
            tco_sweep(workload, FRACTIONS, default),
            tco_sweep(workload, FRACTIONS, pure),
        )
    return out


def test_fig15_tco_sweeps(benchmark):
    factors = CostFactors()
    data = benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    lines = ["Table 4 parameters: "
             f"server ${factors.gpu_server_cost:.0f}/300W, GPU ${factors.gpu_cost:.0f}/240W, "
             f"wimpy ${factors.wimpy_server_cost:.0f}/75W, NIC ${factors.nic_cost:.0f}, "
             f"${factors.capex_per_watt:.0f}/W capex, ${factors.opex_per_watt_month}/W/mo, "
             f"PUE {factors.pue}, ${factors.electricity_per_kwh}/kWh, "
             f"{factors.interest_rate_yearly:.0%} APR, {factors.lifetime_months} months",
             "Table 5 workloads: MIXED (all 7), IMAGE (imc,dig,face), NLP (pos,chk,ner)",
             ""]
    header = "f        " + " ".join(f"{f:>10.2f}" for f in FRACTIONS)
    for name, (retained, pure) in data.items():
        lines.append(f"--- {name} (normalized TCO; lower is better) ---")
        lines.append(header)
        lines.append(series_row("integ", [p.integrated for p in retained], "{:>10.3f}"))
        lines.append(series_row("disagg", [p.disaggregated for p in retained], "{:>10.3f}"))
        lines.append(series_row("dis(no", [p.disaggregated for p in pure], "{:>10.3f}")
                     + "   <- pure-inference reading")
        lines.append("")
    lines.append("(paper: GPU designs up to 20x cheaper for MIXED, 4x for NLP,")
    lines.append(" IMAGE crossover near 72% where integrated overtakes disaggregated)")
    report("fig15", "Figure 15: WSC TCO vs DNN share of the workload", lines)

    mixed = data["MIXED"][0]
    nlp = data["NLP"][0]
    image = data["IMAGE"][0]
    assert 1.0 / mixed[-1].disaggregated > 2.5
    assert 1.5 < 1.0 / nlp[-1].disaggregated < 5.0     # paper: max 4x
    assert image[-1].integrated < image[-1].disaggregated  # crossover happened
    assert image[0].disaggregated <= image[0].integrated * 1.01
