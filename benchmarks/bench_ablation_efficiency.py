"""Ablation: sensitivity of the headline results to the two calibrated GPU
efficiency constants (``gemm_efficiency``, ``mem_efficiency``).

The paper's qualitative structure — ASR >> NLP at batch 1, the ~15x NLP
batching gain, FACE's memory-bound gap — must not hinge on the particular
calibration values.  This sweep perturbs each constant +/-30% and reports
the headline quantities.
"""

from dataclasses import replace

from repro.gpusim.appmodel import AppModel, _APP_TABLE
from repro.gpusim.cost import cpu_forward_time, gpu_forward_time
from repro.gpusim.device import K40, PLATFORM, PlatformSpec
from repro.nn import analyze
from repro.models import build_net

from _common import report


def headline(gpu):
    """(asr@1, pos@1, pos batching gain, face@2) under a perturbed GPU."""
    platform = replace(PLATFORM, gpu=gpu)
    out = {}
    for app in ("asr", "pos", "face"):
        inputs = _APP_TABLE[app][0]
        net = build_net(app)
        cpu_t = cpu_forward_time(analyze(net, inputs), platform.cpu_core)

        def speedup(batch):
            t = gpu_forward_time(analyze(net, inputs * batch), gpu).time_s
            return batch * cpu_t / t

        out[f"{app}@1"] = speedup(1)
        if app == "pos":
            out["pos@64/pos@1"] = speedup(64) / speedup(1)
        if app == "face":
            out["face@2"] = speedup(2)
    return out


def sweep():
    variants = {"calibrated": K40}
    for factor in (0.7, 1.3):
        variants[f"gemm_eff x{factor}"] = replace(
            K40, gemm_efficiency=K40.gemm_efficiency * factor
        )
        variants[f"mem_eff x{factor}"] = replace(
            K40, mem_efficiency=K40.mem_efficiency * factor
        )
    return {name: headline(gpu) for name, gpu in variants.items()}


def test_ablation_efficiency_constants(benchmark):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    keys = ("asr@1", "pos@1", "pos@64/pos@1", "face@2")
    lines = [f"{'variant':16s}" + "".join(f"{k:>14s}" for k in keys)]
    for name, values in data.items():
        lines.append(f"{name:16s}" + "".join(f"{values[k]:>13.1f}x" for k in keys))
    lines.append("(orderings and gains persist across +/-30% calibration error)")
    report("ablation_efficiency", "Ablation: GPU calibration-constant sensitivity", lines)

    for name, values in data.items():
        assert values["asr@1"] > 5 * values["pos@1"], name    # ASR >> NLP always
        assert values["pos@64/pos@1"] > 8, name               # batching gain robust
        assert values["face@2"] < values["asr@1"], name       # FACE stays the laggard
