"""Figure 8: throughput as the number of concurrent DNN service instances
per GPU grows, MPS vs non-MPS time-sharing.
"""

from repro.gpusim import app_model, mps_sweep
from repro.models import APPLICATIONS

from _common import report, series_row

INSTANCES = (1, 2, 4, 8, 16)


def sweep():
    return {app: mps_sweep(app_model(app), INSTANCES) for app in APPLICATIONS}


def test_fig8_concurrent_services_throughput(benchmark):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = "instances " + " ".join(f"{k:>10d}" for k in INSTANCES)
    lines = ["relative throughput, MPS (vs 1 instance)", header]
    for app in APPLICATIONS:
        mps, _ = data[app]
        base = mps[0].qps
        lines.append(series_row(app, [r.qps / base for r in mps]))
    lines += ["", "relative throughput, non-MPS time-sharing", header]
    for app in APPLICATIONS:
        mps, excl = data[app]
        base = mps[0].qps
        lines.append(series_row(app, [r.qps / base for r in excl]))
    lines.append("")
    lines.append("(paper: MPS keeps improving past batching alone, plateaus by ~4-8;")
    lines.append(" non-MPS stays near flat — kernels serialize across processes)")
    report("fig8", "Figure 8: throughput vs concurrent DNN service instances", lines)

    for app in APPLICATIONS:
        mps, excl = data[app]
        assert mps[2].qps >= excl[2].qps            # MPS wins at 4 instances
        qps = [r.qps for r in mps]
        assert all(b >= 0.98 * a for a, b in zip(qps, qps[1:]))
    gains = {app: data[app][0][4].qps / data[app][0][0].qps for app in APPLICATIONS}
    assert max(gains.values()) > 2.0                # "up to 6x" in the paper
