"""Figure 16 (plus Table 6): what future interconnects and networks buy —
per-design TCO component breakdowns at the performance each network
generation unlocks, for the MIXED and NLP workloads.
"""

from repro.wsc import CONFIGS, MIXED, NLP, future_network_study

from _common import report

COMPONENTS = ("servers", "gpus", "network", "facility", "power", "opex")


def run_study():
    return {wl.name: future_network_study(wl) for wl in (MIXED, NLP)}


def test_fig16_future_networks(benchmark):
    data = benchmark.pedantic(run_study, rounds=1, iterations=1)

    lines = ["Table 6 interconnect configurations:"]
    for config in CONFIGS:
        lines.append(
            f"  {config.name:18s} host link {config.host_link_gbs:>6.1f} GB/s, "
            f"{config.nics_per_gpu_host} NICs/host ({config.network_gbs_per_host:.1f} GB/s eff), "
            f"NIC cost x{config.nic_cost_factor}, +${config.interconnect_upgrade_per_server:.0f}/server"
        )
    lines.append("")

    for name, points in data.items():
        base = points[0].breakdowns
        lines.append(f"--- {name} workload (TCO in $M; x = perf vs PCIe v3 design) ---")
        header = f"{'config':18s} {'perf':>6s}" + "".join(f"{c:>10s}" for c in COMPONENTS) + f"{'total':>10s}"
        for design in ("cpu_only", "integrated", "disaggregated"):
            lines.append(f"[{design}]")
            lines.append(header)
            for point in points:
                b = point.breakdowns[design]
                parts = b.as_dict()
                row = f"{point.config.name:18s} {point.performance:>5.2f}x"
                row += "".join(f"{parts[c] / 1e6:>10.2f}" for c in COMPONENTS)
                row += f"{b.total / 1e6:>10.2f}"
                lines.append(row)
        lines.append("")
    lines.append("(paper: network bandwidth unlocks up to ~4.5x NLP performance;")
    lines.append(" disaggregated TCO growth is network-dominated; CPU-only must")
    lines.append(" scale servers in proportion to the performance target)")
    report("fig16", "Figure 16: TCO under future interconnects and networks", lines)

    nlp = data["NLP"]
    assert 3.0 < nlp[-1].performance < 6.0
    for points in data.values():
        base = points[0].breakdowns["disaggregated"]
        qpi = points[-1].breakdowns["disaggregated"]
        assert qpi.network / base.network > qpi.servers / base.servers
        for p in points:
            assert p.breakdowns["disaggregated"].total < p.breakdowns["cpu_only"].total
