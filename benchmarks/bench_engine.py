"""Planned-vs-legacy execution sweep: batch size x {legacy, planned}.

For each app this times the two serve-path executions of the same network:

* **legacy** — the allocating ``net.forward`` loop (fresh activation and
  im2col buffers every call), and
* **planned** — gather into the :class:`repro.nn.engine.ExecutionPlan`
  input slab + ``execute`` over the arena, exactly what a
  :class:`repro.core.BatchingExecutor` worker runs per batch.

Both run the same ``forward_into`` kernels, so outputs are byte-identical
(asserted here); the delta is pure buffer management.  Results go to
``benchmarks/results/BENCH_engine.json``.

``--check`` turns the run into a CI gate:

* the planned path must be allocation-free in steady state (tracemalloc
  peak under a threshold that cleanly separates interpreter noise from a
  single leaked per-call buffer), and
* planned throughput at batch 1 must not regress below legacy (guard
  band, since at batch 1 there is the least allocation to save).

Usage::

    python benchmarks/bench_engine.py                     # full sweep
    python benchmarks/bench_engine.py --apps dig --check  # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.models import build_net  # noqa: E402
from repro.nn import ExecutionPlan, measure_steady_state_alloc  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: tracemalloc peak allowed per steady-state sweep: interpreter noise is
#: tens of KB, one leaked activation buffer is hundreds of KB to MBs
ALLOC_LIMIT_BYTES = 64 * 1024

#: planned batch-1 throughput must be at least this fraction of legacy
BATCH1_GUARD = 0.90

#: target wall-clock per timed measurement
TARGET_S = 0.4


def _timed(fn, target_s: float = TARGET_S) -> float:
    """Seconds per call, measured over enough iterations to fill target_s."""
    fn()  # warm
    t0 = time.perf_counter()
    fn()
    once = max(time.perf_counter() - t0, 1e-6)
    iters = max(3, int(target_s / once))
    t0 = time.perf_counter()
    for _ in range(iters):
        fn()
    return (time.perf_counter() - t0) / iters


def bench_app(app: str, batches, alloc_check: bool) -> dict:
    net = build_net(app, materialize=True)
    max_batch = max(batches)
    plan = ExecutionPlan(net, max_batch)
    gen = np.random.default_rng(0)
    rows = []
    for batch in batches:
        x = gen.standard_normal((batch,) + tuple(net.input_shape)).astype(np.float32)
        np.testing.assert_array_equal(net.forward(x), plan.run(x))

        legacy_s = _timed(lambda: net.forward(x))
        slab = plan.input_view(batch)

        def planned_once():
            with plan.lock:
                np.copyto(slab, x)
                plan.execute(batch)

        planned_s = _timed(planned_once)
        rows.append({
            "batch": batch,
            "legacy_s": legacy_s,
            "planned_s": planned_s,
            "legacy_ips": batch / legacy_s,
            "planned_ips": batch / planned_s,
            "speedup": legacy_s / planned_s,
        })
        print(f"{app:5s} batch {batch:3d}: legacy {batch / legacy_s:9.1f} inputs/s  "
              f"planned {batch / planned_s:9.1f} inputs/s  "
              f"speedup {legacy_s / planned_s:5.2f}x")
    steady_alloc = (measure_steady_state_alloc(plan, batches=list(batches))
                    if alloc_check else None)
    if steady_alloc is not None:
        print(f"{app:5s} steady-state allocation peak: {steady_alloc} bytes")
    return {
        "app": app,
        "max_batch": max_batch,
        "arena_bytes": plan.arena_bytes,
        "scratch_bytes": plan.scratch_bytes,
        "steady_alloc_bytes": steady_alloc,
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--apps", default="dig,imc,asr,pos",
                        help="comma-separated zoo apps to sweep")
    parser.add_argument("--batches", default="1,4,16,32",
                        help="comma-separated batch sizes")
    parser.add_argument("--out", default=os.path.join(RESULTS_DIR,
                                                      "BENCH_engine.json"))
    parser.add_argument("--check", action="store_true",
                        help="CI gate: assert zero steady-state allocation "
                             "and no batch-1 regression")
    args = parser.parse_args(argv)

    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    batches = sorted({int(b) for b in args.batches.split(",")})
    results = {"batches": batches,
               "alloc_limit_bytes": ALLOC_LIMIT_BYTES,
               "batch1_guard": BATCH1_GUARD,
               "apps": [bench_app(app, batches, alloc_check=args.check or True)
                        for app in apps]}

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {args.out}")

    if args.check:
        failures = []
        for entry in results["apps"]:
            alloc = entry["steady_alloc_bytes"]
            if alloc is None or alloc >= ALLOC_LIMIT_BYTES:
                failures.append(
                    f"{entry['app']}: steady-state allocation {alloc} bytes "
                    f">= {ALLOC_LIMIT_BYTES}")
            for row in entry["rows"]:
                if row["batch"] == 1 and row["speedup"] < BATCH1_GUARD:
                    failures.append(
                        f"{entry['app']}: planned batch-1 is "
                        f"{row['speedup']:.2f}x legacy (< {BATCH1_GUARD})")
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("engine checks passed: allocation-free steady state, "
              "no batch-1 regression")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
