"""Figure 4: cycle breakdown between the DNN and pre/post-processing.

Two views are reported:

* the *modeled* breakdown — the per-app pre/post cost estimates for the
  paper's software stacks (Kaldi, SENNA) that drive the TCO analysis; and
* a *measured* breakdown of this repository's own Python pipelines (small
  trained stand-in models), which has different constant factors — our
  numpy GEMMs and pure-Python decoders are not Caffe and Kaldi.
"""

import numpy as np

from repro.gpusim import all_app_models
from repro.models import APPLICATIONS, build_net
from repro.nn import LayerSpec, Net, NetSpec
from repro.tonic import (
    AsrApp,
    DigApp,
    LocalBackend,
    PosApp,
    Vocabulary,
    WindowFeaturizer,
    digit_dataset,
    generate_corpus,
    synthesize_words,
)

from _common import report


def modeled_breakdown():
    return {m.app: m.dnn_cycle_fraction() for m in all_app_models()}


def measured_breakdown():
    """DNN time fraction measured on this repo's functional pipelines."""
    results = {}
    dig = DigApp(LocalBackend(build_net("dig", materialize=True)))
    images, _ = digit_dataset(100, seed=1)
    _, timing = dig.run_timed(images)
    results["dig"] = timing.dnn_fraction

    corpus = generate_corpus(5, seed=2)
    vocab = Vocabulary(w for s in corpus for w in s.words)
    pos = PosApp(LocalBackend(build_net("pos", materialize=True)), WindowFeaturizer(vocab))
    _, timing = pos.run_timed(list(corpus[0].words))
    results["pos"] = timing.dnn_fraction

    am_spec = NetSpec("am", (440,), (
        LayerSpec("InnerProduct", "h", {"num_output": 64}),
        LayerSpec("Sigmoid", "s"),
        LayerSpec("InnerProduct", "o", {"num_output": 48}),
        LayerSpec("Softmax", "p"),
    ))
    asr = AsrApp(LocalBackend(Net(am_spec).materialize(0)))
    audio, _ = synthesize_words(["go", "left"], seed=3)
    _, timing = asr.run_timed(audio)
    results["asr"] = timing.dnn_fraction
    return results


def test_fig4_cycle_breakdown(benchmark):
    modeled = benchmark(modeled_breakdown)
    measured = measured_breakdown()
    lines = [f"{'app':5s} {'modeled DNN %':>13s} {'pre/post %':>10s} {'measured DNN % (our pipeline)':>30s}"]
    for app in APPLICATIONS:
        dnn = modeled[app] * 100
        meas = f"{measured[app] * 100:.0f}" if app in measured else "-"
        lines.append(f"{app:5s} {dnn:>13.0f} {100 - dnn:>10.0f} {meas:>30s}")
    report("fig4", "Figure 4: cycle breakdown (DNN vs pre/post-processing)", lines)

    assert all(modeled[a] > 0.95 for a in ("imc", "dig", "face"))
    assert 0.4 < modeled["asr"] < 0.6
    assert all(0.6 < modeled[a] < 0.75 for a in ("pos", "chk", "ner"))
