"""Real-system benchmark: wall-clock throughput of the Python DjiNN service
over localhost TCP (the functional artifact itself, not the K40 model).

This is the measured counterpart of the paper's served-QPS numbers: absolute
values reflect numpy-on-CPU, but the service-level effects — server-side
batching helping small-model throughput, concurrent clients raising
utilization — are real measurements.
"""

import threading

import numpy as np

from repro.core import BatchPolicy, DjinnClient, DjinnServer, ModelRegistry
from repro.models import lenet5, senna

from _common import report


def _drive(server, model, shape, clients, requests):
    host, port = server.address
    done = [0] * clients

    def worker(i):
        rng = np.random.default_rng(i)
        with DjinnClient(host, port) as cli:
            for _ in range(requests):
                cli.infer(model, rng.normal(size=shape).astype(np.float32))
                done[i] += 1

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
    import time
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - start
    return sum(done) * shape[0] / elapsed  # inputs per second


def make_registry():
    reg = ModelRegistry()
    reg.register_spec("dig", lenet5(), seed=0)
    reg.register_spec("pos", senna("pos"), seed=1)
    return reg


def measure():
    registry = make_registry()
    results = {}
    with DjinnServer(registry) as server:
        results["pos, 1 client"] = _drive(server, "pos", (28, 300), 1, 30)
        results["pos, 4 clients"] = _drive(server, "pos", (28, 300), 4, 30)
        results["dig, 4 clients"] = _drive(server, "dig", (10, 1, 32, 32), 4, 10)
    with DjinnServer(registry, batching=BatchPolicy(max_batch=64, timeout_ms=2.0)) as server:
        results["pos, 4 clients, batched"] = _drive(server, "pos", (28, 300), 4, 30)
    return results


def test_service_real_throughput(benchmark):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{name:26s} {qps:>12,.0f} inputs/s" for name, qps in results.items()]
    lines.append("(real localhost TCP service; numpy inference on this machine's CPU)")
    report("service_real", "Real DjiNN service throughput (measured)", lines)

    # concurrency must not collapse throughput (whether it *gains* depends on
    # how much GIL-releasing BLAS time each request carries on this machine)
    assert results["pos, 4 clients"] > results["pos, 1 client"] * 0.6
    assert results["pos, 4 clients, batched"] > results["pos, 4 clients"] * 0.6
    assert all(qps > 0 for qps in results.values())
