"""Figure 9: service latency as the number of concurrent DNN service
instances per GPU grows, MPS vs non-MPS time-sharing.
"""

from repro.gpusim import app_model, mps_sweep
from repro.models import APPLICATIONS

from _common import report, series_row

INSTANCES = (1, 2, 4, 8, 16)


def sweep():
    return {app: mps_sweep(app_model(app), INSTANCES) for app in APPLICATIONS}


def test_fig9_concurrent_services_latency(benchmark):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = "instances " + " ".join(f"{k:>10d}" for k in INSTANCES)
    lines = ["query latency (ms), MPS", header]
    for app in APPLICATIONS:
        mps, _ = data[app]
        lines.append(series_row(app, [r.mean_latency_s * 1e3 for r in mps]))
    lines += ["", "query latency (ms), non-MPS time-sharing", header]
    for app in APPLICATIONS:
        _, excl = data[app]
        lines.append(series_row(app, [r.mean_latency_s * 1e3 for r in excl]))
    lines.append("")
    lines.append("(paper: latency small below 4 instances, grows sharply after;")
    lines.append(" MPS reduces latency up to ~3x vs time-sharing)")
    report("fig9", "Figure 9: service latency vs concurrent DNN service instances", lines)

    ratios = []
    for app in APPLICATIONS:
        mps, excl = data[app]
        assert mps[2].mean_latency_s < 4 * mps[0].mean_latency_s   # modest at k=4
        ratios.append(excl[4].mean_latency_s / mps[4].mean_latency_s)
        # latency at 4 MPS instances below the CPU's single-query time
        cpu = app_model(app).cpu_query_time()
        if app not in ("pos", "chk", "ner"):  # NLP is borderline in our model
            assert mps[2].mean_latency_s < cpu, app
    assert max(ratios) > 2.0
