"""Table 3: per-application service inputs, outputs, and chosen batch sizes."""

from repro.gpusim import all_app_models, app_model

from _common import report


def collect():
    return [
        (
            m.app,
            m.inputs_per_query,
            m.input_bytes_per_query / 1024,
            m.output_bytes_per_query / 1024,
            (m.input_bytes_per_query + (app_model(m.chained_app).wire_bytes_per_query
                                        if m.chained_app else 0)) / 1024,
            m.paper_input_kb,
            m.best_batch,
        )
        for m in all_app_models()
    ]


def test_table3_service_inputs(benchmark):
    rows = benchmark(collect)
    lines = [
        f"{'app':5s} {'inputs/query':>12s} {'input KB':>9s} {'output KB':>9s} "
        f"{'request KB':>10s} {'paper KB':>9s} {'batch':>6s}"
    ]
    for app, inputs, in_kb, out_kb, req_kb, paper_kb, batch in rows:
        lines.append(
            f"{app:5s} {inputs:>12d} {in_kb:>9.1f} {out_kb:>9.1f} "
            f"{req_kb:>10.1f} {paper_kb:>9.0f} {batch:>6d}"
        )
    lines.append("(request KB includes CHK's chained POS round trip, §3.2.3;")
    lines.append(" ASR diverges from the paper's 4594KB — see EXPERIMENTS.md)")
    report("table3", "Table 3: DjiNN service applications", lines)

    table = {r[0]: r for r in rows}
    assert abs(table["imc"][2] - 604) < 10
    assert abs(table["dig"][2] - 307) < 5
    assert table["pos"][6] == 64
